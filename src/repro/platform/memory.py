"""Buffer memories with occupancy tracking.

Each SPI channel owns a receive-side buffer memory (the paper's
distributed-memory setting: the receiver's local RAM).  The memory
enforces its capacity — a bounded (BBS) buffer overflowing is a protocol
violation and raises — and records the high-water mark, which the VTS
soundness tests compare against the eq. 1/eq. 2 bounds.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["BufferMemory", "BufferOverflowError", "BufferUnderflowError"]


class BufferOverflowError(RuntimeError):
    """A bounded buffer was asked to hold more than its capacity."""


class BufferUnderflowError(RuntimeError):
    """More data was read from a buffer than it held."""


class BufferMemory:
    """A byte-accounted buffer, bounded or unbounded.

    ``capacity_bytes=None`` models the UBS case (logically unbounded —
    physically, the protocol's acknowledgments throttle the producer).
    """

    def __init__(self, name: str, capacity_bytes: Optional[int] = None) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0 or None")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.occupancy_bytes = 0
        self.high_water_bytes = 0
        self.total_written_bytes = 0

    @property
    def is_bounded(self) -> bool:
        return self.capacity_bytes is not None

    def free_bytes(self) -> Optional[int]:
        """Remaining space, or ``None`` for unbounded buffers."""
        if self.capacity_bytes is None:
            return None
        return self.capacity_bytes - self.occupancy_bytes

    def can_accept(self, nbytes: int) -> bool:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if self.capacity_bytes is None:
            return True
        return self.occupancy_bytes + nbytes <= self.capacity_bytes

    def write(self, nbytes: int) -> None:
        if not self.can_accept(nbytes):
            raise BufferOverflowError(
                f"buffer {self.name!r}: write of {nbytes}B exceeds capacity "
                f"{self.capacity_bytes}B (occupancy {self.occupancy_bytes}B)"
            )
        self.occupancy_bytes += nbytes
        self.total_written_bytes += nbytes
        if self.occupancy_bytes > self.high_water_bytes:
            self.high_water_bytes = self.occupancy_bytes

    def read(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if nbytes > self.occupancy_bytes:
            raise BufferUnderflowError(
                f"buffer {self.name!r}: read of {nbytes}B exceeds occupancy "
                f"{self.occupancy_bytes}B"
            )
        self.occupancy_bytes -= nbytes

    def reset(self) -> None:
        self.occupancy_bytes = 0
        self.high_water_bytes = 0
        self.total_written_bytes = 0

    def __repr__(self) -> str:
        cap = "inf" if self.capacity_bytes is None else str(self.capacity_bytes)
        return (
            f"BufferMemory({self.name!r}, {self.occupancy_bytes}/{cap}B, "
            f"high={self.high_water_bytes}B)"
        )
