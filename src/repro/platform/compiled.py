"""Compiled execution fast-lane: calendar queue + flat firing scripts.

Two optimizations for the dense-event regime, both strictly
semantics-preserving:

* :class:`CalendarQueue` — a bucketed event queue (Brown's calendar
  queue) that can replace the kernel's binary heap
  (``Simulator(queue="calendar")``).  Events land in a bucket by
  ``time // bucket_width`` modulo the bucket count; popping scans from
  the current "day" forward, so for the self-timed dense-event pattern
  (many events clustered around ``now``) both operations touch one
  short, sorted bucket.  The total order is identical to the heap's:
  ``(time, sequence number)``, so simultaneous events preserve their
  scheduling order exactly.

* :class:`CompiledFiring` — a drop-in replacement for
  :class:`repro.spi.actors.ComputationTask` built from a
  :meth:`repro.mapping.selftimed.SelfTimedSchedule.firing_script` entry.
  When rates are static the task's wait chain is pre-resolved at
  compile time into flat ``(fifo, rate)`` lists, and a static integer
  cycle model short-circuits the callable dispatch — the guard check
  that runs on every park/wake round becomes two tuple walks instead of
  repeated port-table construction.  Firing semantics (consumption
  order, kernel invocation, production order) are identical by
  construction; the conformance tier A/Bs the two task classes.
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["CalendarQueue", "CompiledStats", "CompiledFiring"]


class CalendarQueue:
    """Bucketed event queue with binary-heap ordering semantics.

    Entries are ``(time, seq, callback)`` tuples, exactly as the
    kernel's heap stores them; ``(time, seq)`` is globally unique so
    tuple comparison never reaches the callback.  Buckets are kept
    sorted (insertion via ``bisect``), and the bucket count doubles or
    halves with the population so bucket scans stay short.
    """

    __slots__ = ("_width", "_min_buckets", "_nb", "_buckets", "_size", "_floor")

    def __init__(self, bucket_width: int = 16, min_buckets: int = 16) -> None:
        if bucket_width < 1:
            raise ValueError("bucket_width must be >= 1")
        if min_buckets < 2:
            raise ValueError("min_buckets must be >= 2")
        self._width = bucket_width
        self._min_buckets = min_buckets
        self._nb = min_buckets
        self._buckets: List[List[Tuple[int, int, Callable[[], None]]]] = [
            [] for _ in range(min_buckets)
        ]
        self._size = 0
        #: monotone floor: no entry earlier than this is ever pushed
        #: (the simulator never schedules in the past)
        self._floor = 0

    def __len__(self) -> int:
        return self._size

    def push(self, time: int, seq: int, callback: Callable[[], None]) -> None:
        insort(
            self._buckets[(time // self._width) % self._nb],
            (time, seq, callback),
        )
        self._size += 1
        if self._size > 2 * self._nb:
            self._resize(2 * self._nb)

    def pop(self) -> Tuple[int, int, Callable[[], None]]:
        if not self._size:
            raise IndexError("pop from an empty CalendarQueue")
        day = self._floor // self._width
        # scan one full rotation starting at the current day's bucket;
        # a bucket's head is popped only if it falls inside the day
        # window that maps to that bucket on this rotation
        for offset in range(self._nb):
            bucket = self._buckets[(day + offset) % self._nb]
            if bucket and bucket[0][0] < (day + offset + 1) * self._width:
                entry = bucket.pop(0)
                self._finish_pop(entry)
                return entry
        # sparse region: every pending event lies beyond this rotation —
        # jump straight to the global minimum instead of spinning
        best_bucket: Optional[List] = None
        for bucket in self._buckets:
            if bucket and (
                best_bucket is None or bucket[0][:2] < best_bucket[0][:2]
            ):
                best_bucket = bucket
        assert best_bucket is not None
        entry = best_bucket.pop(0)
        self._finish_pop(entry)
        return entry

    def _finish_pop(self, entry: Tuple[int, int, Callable[[], None]]) -> None:
        self._size -= 1
        self._floor = entry[0]
        if self._nb > self._min_buckets and self._size < self._nb // 4:
            self._resize(self._nb // 2)

    def _resize(self, n_buckets: int) -> None:
        entries = [entry for bucket in self._buckets for entry in bucket]
        self._nb = max(self._min_buckets, n_buckets)
        self._buckets = [[] for _ in range(self._nb)]
        for entry in entries:
            insort(self._buckets[(entry[0] // self._width) % self._nb], entry)


class CompiledStats:
    """Shared counters of one run's compiled fast-lane."""

    __slots__ = ("compiled_firings", "script_tasks")

    def __init__(self) -> None:
        #: firings executed through CompiledFiring tasks
        self.compiled_firings = 0
        #: CompiledFiring tasks constructed for the run
        self.script_tasks = 0


class CompiledFiring:
    """One computation actor's firing, with a pre-resolved wait chain.

    Construction mirrors :class:`repro.spi.actors.ComputationTask`
    (same ``inputs``/``outputs`` fifo maps); the port tables are
    flattened once here instead of being rebuilt on every guard check.

    Under a batched (blocked) schedule (``batch_counts`` from a
    :class:`repro.spi.actors.BatchSchedule`) one task execution runs
    the macro-pass burst of firings atomically at the PE class's
    amortized dispatch cost — token streams stay identical to
    sequential execution.
    """

    __slots__ = (
        "actor",
        "name",
        "inputs",
        "outputs",
        "firing_index",
        "batch_counts",
        "pe_class",
        "_pe",
        "_pass",
        "occurrences",
        "_executions",
        "_needs",
        "_emits",
        "_static_cycles",
        "_staged",
        "_stats",
    )

    def __init__(
        self,
        actor,
        inputs: Dict[str, object],
        outputs: Dict[str, object],
        stats: Optional[CompiledStats] = None,
        batch_counts=None,
        pe_class=None,
        pe=None,
    ) -> None:
        from repro.platform.pe import GPP
        from repro.spi.actors import normalize_port_fifos

        self.actor = actor
        self.name = f"fire:{actor.name}"
        self.inputs = normalize_port_fifos(inputs)
        self.outputs = normalize_port_fifos(outputs)
        self.firing_index = 0
        self.batch_counts = list(batch_counts) if batch_counts else None
        self.pe_class = pe_class if pe_class is not None else GPP
        self._pe = pe
        self._pass = 0
        self.occurrences = 1  # entries per macro-pass; set by the runtime
        self._executions = 0
        #: (port name, ((fifo, rate), ...) branches, connection) per
        #: connected input, in port order; branches in branch_index order
        self._needs = tuple(
            (
                port.name,
                tuple(
                    (fifo, fifo.edge.cons_rate)
                    for fifo in self.inputs[port.name]
                ),
                self.inputs[port.name][0].edge.connection,
            )
            for port in actor.input_ports
            if port.name in self.inputs
        )
        #: (port name, ((fifo, span), ...)) per connected output, in port
        #: order; span is a scatter branch's (start, stop) slice or None
        self._emits = tuple(
            (
                port.name,
                tuple(
                    (fifo, self._branch_span(fifo.edge))
                    for fifo in self.outputs[port.name]
                ),
            )
            for port in actor.output_ports
            if port.name in self.outputs
        )
        cycles = actor.cycles
        self._static_cycles = (
            cycles if isinstance(cycles, int) and cycles >= 0 else None
        )
        self._staged: Optional[Dict[str, List]] = None
        self._stats = stats
        if stats is not None:
            stats.script_tasks += 1

    @staticmethod
    def _branch_span(edge) -> Optional[Tuple[int, int]]:
        connection = edge.connection
        if connection is not None and connection.kind == "scatter":
            return connection.branch_span(edge.branch_index)
        return None

    @property
    def burst(self) -> int:
        """Logical firings this execution runs atomically."""
        if self.batch_counts is None:
            return 1
        return self.batch_counts[min(self._pass, len(self.batch_counts) - 1)]

    def ready(self, now: int) -> bool:
        burst = 1 if self.batch_counts is None else self.burst
        for _, branches, _ in self._needs:
            for fifo, rate in branches:
                if len(fifo.tokens) < burst * rate:
                    return False
        return True

    def blocked_reason(self, now: int) -> Optional[str]:
        burst = self.burst
        starved = [
            f"{fifo.edge.name!r} "
            f"(has {len(fifo.tokens)}, needs {burst * rate})"
            for _, branches, _ in self._needs
            for fifo, rate in branches
            if len(fifo.tokens) < burst * rate
        ]
        if starved:
            return "starved on " + ", ".join(starved)
        return None

    def wait_on(self, now: int) -> List:
        burst = self.burst
        return [
            fifo.waitset
            for _, branches, _ in self._needs
            for fifo, rate in branches
            if len(fifo.tokens) < burst * rate
        ]

    def _pop_one(self) -> Dict[str, List]:
        consumed: Dict[str, List] = {}
        for port_name, branches, connection in self._needs:
            if len(branches) == 1 and (
                connection is None or connection.kind != "reduce"
            ):
                fifo, rate = branches[0]
                consumed[port_name] = fifo.pop(rate)
            else:
                consumed[port_name] = connection.assemble(
                    [fifo.pop(rate) for fifo, rate in branches]
                )
        return consumed

    def start(self, now: int) -> int:
        if self.batch_counts is None and not self.pe_class.is_accelerator:
            # classic fast path: one firing, native cost
            consumed = self._pop_one()
            self._staged = consumed
            if self._stats is not None:
                self._stats.compiled_firings += 1
            if self._static_cycles is not None:
                return self._static_cycles
            return self.actor.execution_cycles(self.firing_index, consumed)
        burst = self.burst
        staged: List[Dict[str, List]] = []
        native: List[int] = []
        for i in range(burst):
            consumed = self._pop_one()
            staged.append(consumed)
            if self._static_cycles is not None:
                native.append(self._static_cycles)
            else:
                native.append(
                    self.actor.execution_cycles(self.firing_index + i, consumed)
                )
        self._staged = staged
        if self._stats is not None:
            self._stats.compiled_firings += burst
        if burst > 1 and self._pe is not None:
            self._pe.record_batched_dispatch(
                burst, self.pe_class.dispatch_cycles_saved(burst)
            )
        return self.pe_class.batch_cycles(native)

    def _fire_one(self, consumed: Dict[str, List]) -> None:
        produced = self.actor.fire(self.firing_index, consumed)
        for port_name, branches in self._emits:
            values = produced[port_name]
            for fifo, span in branches:
                if span is None:
                    fifo.push(list(values))
                else:
                    fifo.push(list(values[span[0]:span[1]]))
        self.firing_index += 1

    def finish(self, now: int) -> None:
        assert self._staged is not None
        staged = self._staged
        self._staged = None
        if isinstance(staged, dict):
            self._fire_one(staged)
            return
        for consumed in staged:
            self._fire_one(consumed)
        # advance only after the last occurrence in the program pass
        # (actors with repetitions > 1 occupy several entries)
        self._executions += 1
        if self._executions >= self.occurrences:
            self._executions = 0
            self._pass += 1
