"""Interconnect model: point-to-point links between processing elements.

The SPI FPGA library connects PEs (and the I/O interface) with dedicated
streaming links (FSL-style FIFO channels in the System Generator
designs).  A link transfer costs

    setup_cycles + ceil(message_bytes / word_bytes) * cycles_per_word

and a link is *occupied* for the duration of a transfer, so transfers
sharing a link serialize — which is exactly what makes the I/O-interface
fan-out in the paper's figure 3 a serialization point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["LinkSpec", "Link", "Interconnect"]


@dataclass(frozen=True)
class LinkSpec:
    """Static parameters of one link.

    ``cycles_per_word=0`` (with ``setup_cycles=0``) models an ideal
    zero-latency link: transfers complete in the same cycle they start.
    The kernel micro-benchmarks use this to isolate simulation-kernel
    overhead from link timing, and the point-to-point transport delivers
    such transfers inline (no event-heap round trip) when the link is
    uncontended.
    """

    setup_cycles: int = 4
    word_bytes: int = 4
    cycles_per_word: int = 1

    def __post_init__(self) -> None:
        if self.setup_cycles < 0:
            raise ValueError("setup_cycles must be >= 0")
        if self.word_bytes < 1:
            raise ValueError("word_bytes must be >= 1")
        if self.cycles_per_word < 0:
            raise ValueError("cycles_per_word must be >= 0")

    def transfer_cycles(self, message_bytes: int) -> int:
        """Occupancy of the link for one message of ``message_bytes``."""
        if message_bytes < 0:
            raise ValueError("message_bytes must be >= 0")
        words = math.ceil(message_bytes / self.word_bytes) if message_bytes else 0
        return self.setup_cycles + words * self.cycles_per_word


class Link:
    """A point-to-point channel with serialized occupancy."""

    def __init__(self, src_pe: int, dst_pe: int, spec: LinkSpec) -> None:
        self.src_pe = src_pe
        self.dst_pe = dst_pe
        self.spec = spec
        self.busy_until = 0
        self.bytes_carried = 0
        self.messages_carried = 0

    def reserve(self, now: int, message_bytes: int) -> Tuple[int, int]:
        """Reserve the link for a message starting no earlier than ``now``.

        Returns ``(start, arrival)`` where ``start`` is when the link
        begins transmitting (after any in-flight transfer drains) and
        ``arrival`` when the last word lands at the destination.
        """
        start = max(now, self.busy_until)
        arrival = start + self.spec.transfer_cycles(message_bytes)
        self.busy_until = arrival
        self.bytes_carried += message_bytes
        self.messages_carried += 1
        return start, arrival

    def reset(self) -> None:
        self.busy_until = 0
        self.bytes_carried = 0
        self.messages_carried = 0


class Interconnect:
    """All links of a platform, created lazily per (src, dst) PE pair.

    ``default_spec`` applies to any pair without an explicit override.
    Links are unidirectional; the reverse direction is a distinct link.
    """

    def __init__(
        self,
        default_spec: Optional[LinkSpec] = None,
        overrides: Optional[Dict[Tuple[int, int], LinkSpec]] = None,
    ) -> None:
        self.default_spec = default_spec or LinkSpec()
        self._overrides = dict(overrides or {})
        self._links: Dict[Tuple[int, int], Link] = {}

    def link(self, src_pe: int, dst_pe: int) -> Link:
        if src_pe == dst_pe:
            raise ValueError("no link is needed for same-PE communication")
        key = (src_pe, dst_pe)
        if key not in self._links:
            spec = self._overrides.get(key, self.default_spec)
            self._links[key] = Link(src_pe, dst_pe, spec)
        return self._links[key]

    @property
    def links(self) -> List[Link]:
        return list(self._links.values())

    def total_bytes(self) -> int:
        return sum(link.bytes_carried for link in self._links.values())

    def total_messages(self) -> int:
        return sum(link.messages_carried for link in self._links.values())

    def reset(self) -> None:
        for link in self._links.values():
            link.reset()
