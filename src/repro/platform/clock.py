"""Clock domains: cycle <-> wall-clock conversion.

The paper reports execution times in microseconds on a Virtex-4 whose
board "could support a clock frequency of 500 MHz" but where "this
frequency could not be attained in most cases".  We default to the
100 MHz that System Generator designs of that era typically closed
timing at; the figure benchmarks expose the frequency as a parameter so
the absolute scale is explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ClockDomain", "DEFAULT_CLOCK"]


@dataclass(frozen=True)
class ClockDomain:
    """A clock with frequency in MHz."""

    frequency_mhz: float = 100.0

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise ValueError("clock frequency must be positive")

    @property
    def period_us(self) -> float:
        """Clock period in microseconds."""
        return 1.0 / self.frequency_mhz

    def cycles_to_us(self, cycles: float) -> float:
        """Convert a cycle count to microseconds."""
        return cycles / self.frequency_mhz

    def us_to_cycles(self, microseconds: float) -> int:
        """Convert microseconds to a (ceiling) cycle count."""
        cycles = microseconds * self.frequency_mhz
        whole = int(cycles)
        return whole if whole == cycles else whole + 1


DEFAULT_CLOCK = ClockDomain(100.0)
