"""Execution-trace recording and rendering.

A :class:`TraceRecorder` captures every task execution interval during a
simulation ``(pe, task, start, end, iteration)``; the result can be
queried (per-task statistics, concurrency profile) and rendered as an
ASCII Gantt chart or CSV — invaluable when diagnosing why a mapping does
not reach its MCM bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["PEExclusivityError", "TraceEvent", "TraceRecorder"]


class PEExclusivityError(RuntimeError):
    """Two task intervals overlapped on one PE — a simulator bug.

    A dedicated exception (not ``AssertionError``) so the check keeps
    firing under ``python -O`` and callers can catch it precisely.
    """


@dataclass(frozen=True)
class TraceEvent:
    """One task execution interval."""

    pe: int
    task: str
    start: int
    end: int
    iteration: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"event for {self.task!r} ends ({self.end}) before it "
                f"starts ({self.start})"
            )

    @property
    def duration(self) -> int:
        return self.end - self.start


class TraceRecorder:
    """Collects and analyses task execution intervals."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def record(
        self, pe: int, task: str, start: int, end: int, iteration: int
    ) -> None:
        self._events.append(TraceEvent(pe, task, start, end, iteration))

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    # -- queries ---------------------------------------------------------------

    def events_on(self, pe: int) -> List[TraceEvent]:
        return [e for e in self._events if e.pe == pe]

    def events_of(self, task: str) -> List[TraceEvent]:
        return [e for e in self._events if e.task == task]

    def makespan(self) -> int:
        return max((e.end for e in self._events), default=0)

    def pe_busy_cycles(self) -> Dict[int, int]:
        busy: Dict[int, int] = {}
        for event in self._events:
            busy[event.pe] = busy.get(event.pe, 0) + event.duration
        return busy

    def task_statistics(self) -> Dict[str, Dict[str, float]]:
        """Per-task execution count, total and mean duration."""
        stats: Dict[str, Dict[str, float]] = {}
        for event in self._events:
            entry = stats.setdefault(
                event.task, {"count": 0, "total": 0, "mean": 0.0}
            )
            entry["count"] += 1
            entry["total"] += event.duration
        for entry in stats.values():
            entry["mean"] = entry["total"] / entry["count"]
        return stats

    def validate_pe_exclusivity(self) -> None:
        """Raise :class:`PEExclusivityError` if two intervals overlap on
        one PE (a simulator bug)."""
        for pe in {e.pe for e in self._events}:
            intervals = sorted(
                ((e.start, e.end, e.task) for e in self.events_on(pe))
            )
            for (s1, e1, t1), (s2, e2, t2) in zip(intervals, intervals[1:]):
                if s2 < e1:
                    raise PEExclusivityError(
                        f"PE{pe}: {t1!r} [{s1},{e1}) overlaps {t2!r} "
                        f"[{s2},{e2})"
                    )

    # -- rendering ---------------------------------------------------------------

    def to_csv(self) -> str:
        lines = ["pe,task,iteration,start,end,duration"]
        for event in sorted(self._events, key=lambda e: (e.start, e.pe)):
            lines.append(
                f"{event.pe},{event.task},{event.iteration},"
                f"{event.start},{event.end},{event.duration}"
            )
        return "\n".join(lines)

    def gantt(self, width: int = 72, upto: Optional[int] = None) -> str:
        """ASCII Gantt chart: one row per PE, time left to right.

        Each task gets a letter (cycling a-z by first appearance); idle
        time renders as ``.``.  ``upto`` clips the horizon.
        """
        horizon = upto if upto is not None else self.makespan()
        if horizon <= 0:
            return "(empty trace)"
        scale = horizon / width
        letters: Dict[str, str] = {}

        def letter_for(task: str) -> str:
            if task not in letters:
                alphabet = "abcdefghijklmnopqrstuvwxyz"
                letters[task] = alphabet[len(letters) % len(alphabet)]
            return letters[task]

        pe_indices = sorted({e.pe for e in self._events})
        label_width = max(len(f"PE{pe}") for pe in pe_indices)
        rows = []
        for pe in pe_indices:
            cells = ["."] * width
            for event in self.events_on(pe):
                if event.start >= horizon:
                    continue
                first = min(int(event.start / scale), width - 1)
                last = max(first, int(min(event.end, horizon) / scale) - 1)
                for cell in range(first, min(last + 1, width)):
                    cells[cell] = letter_for(event.task)
            rows.append(f"{f'PE{pe}'.ljust(label_width)} |" + "".join(cells) + "|")
        legend = ", ".join(
            f"{symbol}={task}" for task, symbol in letters.items()
        )
        # Align the time axis with the bars: "0" under the first cell,
        # the horizon right-justified under the last (the old width math
        # broke when the horizon label was wider than the chart).
        end_label = f"{horizon} cycles"
        pad = max(1, width - 1 - len(end_label))
        header = " " * (label_width + 2) + "0" + " " * pad + end_label
        return "\n".join([header] + rows + [legend])
