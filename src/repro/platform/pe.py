"""Processing element model.

A PE in the paper's systems is either a customized hardware unit (the
per-PE error-generation datapaths of application 1, the particle-filter
replicas of application 2) or an I/O interface block.  For simulation a
PE is a sequencer that executes its self-timed task order; this module
holds its identity and statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["ProcessingElement"]


@dataclass
class ProcessingElement:
    """Identity and accounting for one PE."""

    index: int
    name: str = ""
    busy_cycles: int = 0
    firings: int = 0
    blocked_events: int = 0
    blocked_cycles: int = 0
    #: blocked cycles attributed to the task whose guard held the PE up
    blocked_by_task: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("PE index must be >= 0")
        if not self.name:
            self.name = f"PE{self.index}"

    def record_execution(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("execution cycles must be >= 0")
        self.busy_cycles += cycles
        self.firings += 1

    def record_block(self) -> None:
        self.blocked_events += 1

    def record_blocked_interval(self, task: str, cycles: int) -> None:
        """Attribute a finished blocked interval to the guarding task."""
        if cycles < 0:
            raise ValueError("blocked cycles must be >= 0")
        self.blocked_cycles += cycles
        self.blocked_by_task[task] = self.blocked_by_task.get(task, 0) + cycles

    def utilization(self, horizon_cycles: int) -> float:
        """Busy fraction over ``horizon_cycles`` (0..1)."""
        if horizon_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / horizon_cycles)

    def reset(self) -> None:
        self.busy_cycles = 0
        self.firings = 0
        self.blocked_events = 0
        self.blocked_cycles = 0
        self.blocked_by_task = {}
