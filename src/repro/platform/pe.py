"""Processing element model.

A PE in the paper's systems is either a customized hardware unit (the
per-PE error-generation datapaths of application 1, the particle-filter
replicas of application 2) or an I/O interface block.  For simulation a
PE is a sequencer that executes its self-timed task order; this module
holds its identity and statistics.

Heterogeneity: a :class:`PEClass` describes *how* a PE executes actor
firings.  A ``gpp`` (general-purpose processor) fires one invocation at
a time at the actor's native cost.  An ``accelerator`` (the
OpenCL-device model of Boutellier/Hautala's dynamic actor networks)
pays a fixed ``dispatch_cycles`` overhead per kernel launch but then
processes firings at ``cycles_per_element`` of the native cost — so a
*batched* dispatch over B queued firings amortizes the launch overhead
``(B - 1) * dispatch_cycles`` against the sequential schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Sequence

__all__ = ["PEClass", "GPP", "ProcessingElement"]

#: valid values of :attr:`PEClass.kind`
_PE_KINDS = ("gpp", "accelerator")


@dataclass(frozen=True)
class PEClass:
    """Execution-cost model of one PE class.

    ``dispatch_cycles`` is the fixed per-dispatch overhead (kernel
    launch, DMA setup); ``cycles_per_element`` scales the actor's
    native execution cycles.  A ``gpp`` is the identity model:
    zero dispatch overhead, native per-firing cost, and batching on it
    is defined as a no-op (one dispatch per firing) so that mapping an
    unbatched graph onto gpp PEs is bit-identical to the homogeneous
    platform.
    """

    kind: str = "gpp"
    dispatch_cycles: int = 0
    cycles_per_element: float = 1.0
    #: relative resource cost for the equal-budget partitioner ablation
    resource_cost: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _PE_KINDS:
            raise ValueError(
                f"unknown PE class kind {self.kind!r} "
                f"(expected one of {_PE_KINDS})"
            )
        if self.dispatch_cycles < 0:
            raise ValueError("dispatch_cycles must be >= 0")
        if self.cycles_per_element <= 0:
            raise ValueError("cycles_per_element must be > 0")
        if self.resource_cost <= 0:
            raise ValueError("resource_cost must be > 0")
        if self.kind == "gpp" and (
            self.dispatch_cycles or self.cycles_per_element != 1.0
        ):
            raise ValueError(
                "a gpp PE class has no dispatch overhead and native "
                "per-element cost; use kind='accelerator' to model one"
            )

    @property
    def is_accelerator(self) -> bool:
        return self.kind == "accelerator"

    def firing_cycles(self, native_cycles: int) -> int:
        """Cost of one firing *inside* an already-paid dispatch."""
        if native_cycles < 0:
            raise ValueError("native cycles must be >= 0")
        if not self.is_accelerator:
            return native_cycles
        return int(math.ceil(native_cycles * self.cycles_per_element))

    def batch_cycles(self, native_cycles_per_firing: Sequence[int]) -> int:
        """Cost of one dispatch covering the given firings.

        A gpp charges the native cost of every firing (batching is a
        grouping of the schedule, not an execution change); an
        accelerator pays ``dispatch_cycles`` once plus the scaled
        per-firing cost.
        """
        total = sum(
            self.firing_cycles(cycles) for cycles in native_cycles_per_firing
        )
        if self.is_accelerator and native_cycles_per_firing:
            total += self.dispatch_cycles
        return total

    def dispatch_cycles_saved(self, batch: int) -> int:
        """Launch overhead amortized by one dispatch of ``batch`` firings
        relative to ``batch`` sequential dispatches."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if not self.is_accelerator:
            return 0
        return (batch - 1) * self.dispatch_cycles


#: the default homogeneous PE class
GPP = PEClass()


@dataclass
class ProcessingElement:
    """Identity and accounting for one PE."""

    index: int
    name: str = ""
    pe_class: PEClass = GPP
    busy_cycles: int = 0
    firings: int = 0
    blocked_events: int = 0
    blocked_cycles: int = 0
    #: blocked cycles attributed to the task whose guard held the PE up
    blocked_by_task: Dict[str, int] = field(default_factory=dict)
    #: actor firings executed inside a batched (B > 1) dispatch
    batched_firings: int = 0
    #: batched dispatches issued (each covers > 1 firing)
    batch_dispatches: int = 0
    #: launch overhead amortized away by batched dispatches
    amortized_dispatch_cycles_saved: int = 0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("PE index must be >= 0")
        if not self.name:
            self.name = f"PE{self.index}"

    def record_execution(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("execution cycles must be >= 0")
        self.busy_cycles += cycles
        self.firings += 1

    def record_batched_dispatch(self, firings: int, cycles_saved: int) -> None:
        """Account one batched dispatch covering ``firings`` invocations."""
        if firings < 2:
            raise ValueError("a batched dispatch covers >= 2 firings")
        if cycles_saved < 0:
            raise ValueError("cycles_saved must be >= 0")
        self.batched_firings += firings
        self.batch_dispatches += 1
        self.amortized_dispatch_cycles_saved += cycles_saved
        # the sequencer records one firing per task *execution*; the
        # other firings of the burst are accounted here so ``firings``
        # stays the logical invocation count
        self.firings += firings - 1

    def record_block(self) -> None:
        self.blocked_events += 1

    def record_blocked_interval(self, task: str, cycles: int) -> None:
        """Attribute a finished blocked interval to the guarding task."""
        if cycles < 0:
            raise ValueError("blocked cycles must be >= 0")
        self.blocked_cycles += cycles
        self.blocked_by_task[task] = self.blocked_by_task.get(task, 0) + cycles

    def utilization(self, horizon_cycles: int) -> float:
        """Busy fraction over ``horizon_cycles`` (0..1)."""
        if horizon_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / horizon_cycles)

    def reset(self) -> None:
        self.busy_cycles = 0
        self.firings = 0
        self.blocked_events = 0
        self.blocked_cycles = 0
        self.blocked_by_task = {}
        self.batched_firings = 0
        self.batch_dispatches = 0
        self.amortized_dispatch_cycles_saved = 0
