"""Discrete-event simulation kernel with self-timed PE sequencers.

The kernel is deliberately small: a time-ordered event heap plus a
blocking/retry discipline for sequencers.

* A **task** is anything implementing the :class:`Task` protocol —
  computation firings, SPI sends/receives, MPI baseline operations.
* A **sequencer** executes one PE's cyclic task order: it runs tasks in
  order, starting each as soon as its ``ready()`` guard holds (this *is*
  the self-timed execution model of the paper: assignment and order are
  fixed at compile time, firing instants resolve at run time from data
  availability).
* When a task's guard fails the sequencer parks; any state change in the
  system (:meth:`Simulator.notify`) re-evaluates parked sequencers at
  the current simulation time.

Deadlock (all sequencers parked, no events pending) raises
:class:`SimulationDeadlock` with a description of every blocked task —
invaluable when a protocol is mis-wired.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Protocol, Sequence, Tuple

from repro.platform.pe import ProcessingElement

__all__ = ["Task", "Simulator", "PESequencer", "SimulationDeadlock"]


class SimulationDeadlock(RuntimeError):
    """All sequencers blocked with no pending events."""


class Task(Protocol):
    """One schedulable unit on a PE."""

    name: str

    def ready(self, now: int) -> bool:
        """May the task start at time ``now``?"""

    def start(self, now: int) -> Optional[int]:
        """Perform start-of-execution effects.

        Return the duration in cycles for fixed-latency tasks, or
        ``None`` for event-completed tasks (e.g. a blocking rendezvous
        send): the task must then invoke the ``complete_async`` callback
        installed on it by the sequencer when it is done.
        """

    def finish(self, now: int) -> None:
        """Perform end-of-execution effects (produce tokens, send, ...)."""


class Simulator:
    """Event heap + parked-sequencer bookkeeping."""

    def __init__(self) -> None:
        self.now = 0
        self._heap: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._parked: List["PESequencer"] = []
        self._retry_scheduled = False
        #: kernel counters (observability: exported into the metrics JSON)
        self.events_processed = 0
        self.parks = 0
        self.retry_rounds = 0

    # -- events ---------------------------------------------------------------

    def at(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past ({time} < now {self.now})"
            )
        heapq.heappush(self._heap, (time, next(self._seq), callback))

    def after(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError("delay must be >= 0")
        self.at(self.now + delay, callback)

    # -- parking / retry --------------------------------------------------------

    def park(self, sequencer: "PESequencer") -> None:
        if sequencer not in self._parked:
            self._parked.append(sequencer)
            self.parks += 1

    def notify(self) -> None:
        """State changed: re-evaluate parked sequencers at the current time."""
        if self._retry_scheduled or not self._parked:
            return
        self._retry_scheduled = True

        def retry() -> None:
            self._retry_scheduled = False
            self.retry_rounds += 1
            parked, self._parked = self._parked, []
            for sequencer in parked:
                sequencer.advance()

        self.at(self.now, retry)

    # -- main loop ---------------------------------------------------------------

    def run(self, max_cycles: Optional[int] = None) -> int:
        """Drain the event heap; returns the final simulation time.

        ``max_cycles`` guards against runaway simulations (raises
        ``RuntimeError`` when exceeded).
        """
        while self._heap:
            time, _, callback = heapq.heappop(self._heap)
            if max_cycles is not None and time > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded max_cycles={max_cycles} "
                    f"(next event at {time})"
                )
            self.now = time
            self.events_processed += 1
            callback()
        blocked = [s for s in self._parked if not s.done]
        if blocked:
            details = "; ".join(s.describe_block() for s in blocked)
            raise SimulationDeadlock(
                f"simulation deadlocked at t={self.now}: {details}"
            )
        return self.now


class PESequencer:
    """Executes one PE's cyclic task order, self-timed.

    ``program`` is the per-iteration task list; the sequencer runs it
    ``iterations`` times.  Each task may be executed with overlapping of
    *different PEs* but tasks of one PE strictly serialize (one datapath).
    """

    def __init__(
        self,
        sim: Simulator,
        pe: ProcessingElement,
        program: Sequence[Task],
        iterations: int,
        trace=None,
    ) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.sim = sim
        self.pe = pe
        self.program = list(program)
        self.iterations = iterations
        self.trace = trace
        self.iteration = 0
        self.position = 0
        self.done = not self.program
        self.finish_times: List[int] = []
        self._running = False
        #: when the current task first failed its guard (None = not blocked)
        self._blocked_since: Optional[int] = None

    def begin(self) -> None:
        """Arm the sequencer (schedule its first advance at t=0)."""
        if not self.done:
            self.sim.at(self.sim.now, self.advance)

    @property
    def current(self) -> Optional[Task]:
        if self.done:
            return None
        return self.program[self.position]

    def advance(self) -> None:
        """Try to start the current task; park on a failed guard."""
        if self.done or self._running:
            return
        task = self.program[self.position]
        now = self.sim.now
        if not task.ready(now):
            if self._blocked_since is None:
                self._blocked_since = now
            self.pe.record_block()
            self.sim.park(self)
            return
        if self._blocked_since is not None:
            # The blocked interval ends now: attribute it to the task
            # whose guard held the PE up (observability).
            self.pe.record_blocked_interval(
                task.name, now - self._blocked_since
            )
            self._blocked_since = None
        started_at = now
        duration = task.start(now)
        self._running = True

        def complete() -> None:
            self._running = False
            self.pe.record_execution(self.sim.now - started_at)
            if self.trace is not None:
                self.trace.record(
                    pe=self.pe.index,
                    task=task.name,
                    start=started_at,
                    end=self.sim.now,
                    iteration=self.iteration,
                )
            task.finish(self.sim.now)
            self._step()
            self.sim.notify()
            if not self.done:
                self.advance()

        if duration is None:
            # Event-completed task (e.g. a blocking rendezvous send):
            # the task signals completion through this callback.
            task.complete_async = lambda: self.sim.at(self.sim.now, complete)
        else:
            self.sim.after(duration, complete)

    def _step(self) -> None:
        self.position += 1
        if self.position >= len(self.program):
            self.position = 0
            self.iteration += 1
            self.finish_times.append(self.sim.now)
            if self.iteration >= self.iterations:
                self.done = True

    def describe_block(self) -> str:
        task = self.current
        name = task.name if task is not None else "<none>"
        base = (
            f"{self.pe.name} blocked on task {name!r} "
            f"(iteration {self.iteration}, position {self.position})"
        )
        # tasks that know *why* they cannot proceed (which channel or
        # fifo is starved/full) report it, making deadlocks diagnosable
        reason_fn = getattr(task, "blocked_reason", None)
        if reason_fn is not None:
            try:
                reason = reason_fn(self.sim.now)
            except Exception:
                reason = None
            if reason:
                base = f"{base}: {reason}"
        return base
