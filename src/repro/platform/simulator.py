"""Discrete-event simulation kernel with self-timed PE sequencers.

The kernel is deliberately small: a time-ordered event heap plus a
blocking/retry discipline for sequencers.

* A **task** is anything implementing the :class:`Task` protocol —
  computation firings, SPI sends/receives, MPI baseline operations.
* A **sequencer** executes one PE's cyclic task order: it runs tasks in
  order, starting each as soon as its ``ready()`` guard holds (this *is*
  the self-timed execution model of the paper: assignment and order are
  fixed at compile time, firing instants resolve at run time from data
  availability).
* When a task's guard fails the sequencer parks.  Tasks that implement
  the optional ``wait_on()`` hook name the :class:`Waitset` objects of
  the resources they are blocked on (a starved channel, an empty sync
  pool, an exhausted credit window); the sequencer then subscribes to
  those waitsets and is woken **only** when one of them signals — the
  *targeted* wakeup path.  Tasks without ``wait_on`` fall back to the
  broadcast discipline: any state change (:meth:`Simulator.notify`)
  re-evaluates every broadcast-parked sequencer at the current time.

The targeted path is what makes large simulations cheap: with the
broadcast discipline every event re-evaluates every parked guard
(O(parked x events)); with waitsets a state change touches exactly the
sequencers that can make progress.  The ordering contract is unchanged:
wakeups are delivered through the event heap at the current simulation
time, after the mutating event completes, in subscription order.

Deadlock (all sequencers parked, no events pending) raises
:class:`SimulationDeadlock` with a description of every blocked task —
invaluable when a protocol is mis-wired.  If a parked sequencer's guard
actually *holds* at deadlock time, the kernel raises
:class:`LostWakeupError` instead: some resource changed state without
waking its waitset, which is a kernel-integration bug, never an
application deadlock.  ``Simulator(check_lost_wakeups=True)`` (used by
the conformance oracles) additionally audits every wakeup round for
ready-but-unwoken sequencers instead of waiting for the deadlock.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Protocol, Sequence, Tuple

from repro.platform.pe import ProcessingElement

__all__ = [
    "Task",
    "Waitset",
    "Simulator",
    "PESequencer",
    "SimulationDeadlock",
    "LostWakeupError",
]


class SimulationDeadlock(RuntimeError):
    """All sequencers blocked with no pending events."""


class LostWakeupError(RuntimeError):
    """A resource changed state without waking its waitset.

    Raised when a sequencer parked on waitsets has a passing guard but
    was never woken — i.e. some resource mutation forgot to call
    :meth:`Waitset.wake`.  This is a kernel/task integration bug, and is
    kept distinct from :class:`SimulationDeadlock` (a property of the
    simulated application) so conformance campaigns can tell them apart.
    """


class Task(Protocol):
    """One schedulable unit on a PE."""

    name: str

    def ready(self, now: int) -> bool:
        """May the task start at time ``now``?"""

    def start(self, now: int) -> Optional[int]:
        """Perform start-of-execution effects.

        Return the duration in cycles for fixed-latency tasks, or
        ``None`` for event-completed tasks (e.g. a blocking rendezvous
        send): the task must then invoke the ``complete_async`` callback
        installed on it by the sequencer when it is done.
        """

    def finish(self, now: int) -> None:
        """Perform end-of-execution effects (produce tokens, send, ...)."""


class Waitset:
    """Sequencers parked on one resource, woken when it changes state.

    A resource (channel, sync pool, FIFO, transport) owns one waitset
    per unblocking condition — e.g. an SPI channel has a *data* waitset
    (a message arrived, the receiver may proceed) and a *space* waitset
    (an ack restored a credit, the sender may proceed).  Subscriptions
    are epoch-stamped: a sequencer that parks on several waitsets and is
    woken through one leaves stale entries in the others, which
    :meth:`wake` discards by comparing epochs.
    """

    __slots__ = ("name", "_waiters", "wakes")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: List[Tuple["PESequencer", int]] = []
        #: wake() calls that found at least one live waiter
        self.wakes = 0

    def __len__(self) -> int:
        return len(self._waiters)

    def subscribe(self, sequencer: "PESequencer") -> None:
        self._waiters.append((sequencer, sequencer.wait_epoch))

    def wake(self) -> None:
        """Schedule a targeted wakeup for every live subscriber."""
        if not self._waiters:
            return
        waiters, self._waiters = self._waiters, []
        woke = False
        for sequencer, epoch in waiters:
            if sequencer.wait_epoch == epoch:
                sequencer.sim._schedule_wake(sequencer)
                woke = True
        if woke:
            self.wakes += 1

    def __repr__(self) -> str:
        return f"Waitset({self.name!r}, waiters={len(self._waiters)})"


class Simulator:
    """Event heap + parked-sequencer bookkeeping.

    ``wakeups`` selects the parking discipline: ``"targeted"`` (the
    default) uses per-resource waitsets for tasks that declare them and
    broadcast for the rest; ``"broadcast"`` forces every park onto the
    broadcast retry path (the pre-waitset kernel — kept for A/B
    benchmarking and as the conformance reference).
    ``check_lost_wakeups`` audits every wakeup round for ready-but-
    unwoken targeted sequencers (see :class:`LostWakeupError`).
    """

    def __init__(
        self,
        wakeups: str = "targeted",
        check_lost_wakeups: bool = False,
        queue: str = "heap",
    ) -> None:
        if wakeups not in ("targeted", "broadcast"):
            raise ValueError(f"unknown wakeup discipline {wakeups!r}")
        if queue not in ("heap", "calendar"):
            raise ValueError(f"unknown event queue {queue!r}")
        self.now = 0
        self.wakeups = wakeups
        self.check_lost_wakeups = check_lost_wakeups
        self.queue_policy = queue
        self._heap: List[Tuple[int, int, Callable[[], None]]] = []
        if queue == "calendar":
            from repro.platform.compiled import CalendarQueue

            self._calendar: Optional[CalendarQueue] = CalendarQueue()
        else:
            self._calendar = None
        #: optional steady-state tracker (see
        #: :mod:`repro.platform.steady_state`): while armed, message
        #: deliveries routed through :meth:`schedule_delivery` are
        #: mirrored into its in-flight multiset for state hashing
        self.state_probe = None
        self._seq = itertools.count()
        self._parked: List["PESequencer"] = []
        self._targeted: List["PESequencer"] = []
        self._wake_queue: List["PESequencer"] = []
        self._retry_scheduled = False
        self._wake_scheduled = False
        #: kernel counters (observability: exported into the metrics JSON)
        self.events_processed = 0
        self.parks = 0
        self.retry_rounds = 0
        #: sequencer re-evaluations delivered through a waitset
        self.targeted_wakeups = 0
        #: sequencer re-evaluations delivered through the broadcast retry
        self.broadcast_wakeups = 0
        #: wakeups (either kind) whose guard still failed — the sequencer
        #: re-parked without progress
        self.spurious_wakeups = 0

    @property
    def total_wakeups(self) -> int:
        return self.targeted_wakeups + self.broadcast_wakeups

    # -- events ---------------------------------------------------------------

    def at(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past ({time} < now {self.now})"
            )
        if self._calendar is not None:
            self._calendar.push(time, next(self._seq), callback)
        else:
            heapq.heappush(self._heap, (time, next(self._seq), callback))

    def after(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError("delay must be >= 0")
        self.at(self.now + delay, callback)

    def schedule_delivery(
        self, arrival: int, deliver: Callable[[], None], key
    ) -> None:
        """Schedule a message delivery, visible to the steady-state probe.

        Identical to :meth:`at` when no tracker is armed (the common
        case — one conditional on the send path).  With an armed
        tracker the delivery is registered in its in-flight multiset
        under ``key`` (e.g. ``("data", channel)``, ``("ack", channel)``,
        ``("resync", pool)``) so state hashes account for every message
        still on the wire; the entry is removed when the event fires.
        """
        probe = self.state_probe
        if probe is None or not probe.armed:
            self.at(arrival, deliver)
            return
        probe.track(key, arrival)

        def tracked() -> None:
            probe.untrack(key, arrival)
            deliver()

        self.at(arrival, tracked)

    # -- parking / wakeups ------------------------------------------------------

    def park(
        self,
        sequencer: "PESequencer",
        waitsets: Optional[Sequence[Waitset]] = None,
    ) -> None:
        """Park ``sequencer`` until a wakeup.

        With ``waitsets`` (and the targeted discipline) the sequencer
        subscribes to exactly those resources; otherwise it joins the
        broadcast-parked list swept by :meth:`notify`.
        """
        if sequencer.parked:
            return
        sequencer.parked = True
        self.parks += 1
        if waitsets and self.wakeups == "targeted":
            sequencer.parked_targeted = True
            if not sequencer._tracked:
                sequencer._tracked = True
                self._targeted.append(sequencer)
            for waitset in waitsets:
                waitset.subscribe(sequencer)
        else:
            self._parked.append(sequencer)

    def _schedule_wake(self, sequencer: "PESequencer") -> None:
        """Queue a targeted wakeup; coalesces duplicates per round."""
        if sequencer.wake_pending or not sequencer.parked:
            return
        sequencer.wake_pending = True
        self._wake_queue.append(sequencer)
        if not self._wake_scheduled:
            self._wake_scheduled = True
            self.at(self.now, self._drain_wakes)

    def _drain_wakes(self) -> None:
        self._wake_scheduled = False
        queue, self._wake_queue = self._wake_queue, []
        for sequencer in queue:
            sequencer.wake_pending = False
            self.targeted_wakeups += 1
            sequencer._woken = True
            sequencer.advance()
        if self._targeted:
            # prune sequencers that were woken (or finished) this round
            kept = []
            for sequencer in self._targeted:
                if sequencer.parked_targeted:
                    kept.append(sequencer)
                else:
                    sequencer._tracked = False
            self._targeted = kept
        if self.check_lost_wakeups:
            self._audit_targeted()

    def _audit_targeted(self) -> None:
        """Assert no targeted-parked sequencer is ready but unwoken."""
        for sequencer in self._targeted:
            if sequencer.wake_pending or not sequencer.parked_targeted:
                continue
            task = sequencer.current
            if task is not None and task.ready(self.now):
                raise LostWakeupError(
                    f"{sequencer.pe.name}: task {task.name!r} became ready "
                    f"at t={self.now} but no waitset woke its sequencer "
                    f"(lost wakeup)"
                )

    def notify(self) -> None:
        """State changed: re-evaluate broadcast-parked sequencers.

        This is the fallback discipline for tasks without ``wait_on``;
        under the targeted discipline the list is usually empty and the
        call returns immediately.
        """
        if self._retry_scheduled or not self._parked:
            return
        self._retry_scheduled = True

        def retry() -> None:
            self._retry_scheduled = False
            self.retry_rounds += 1
            parked, self._parked = self._parked, []
            for sequencer in parked:
                self.broadcast_wakeups += 1
                sequencer._woken = True
                sequencer.advance()

        self.at(self.now, retry)

    # -- main loop ---------------------------------------------------------------

    def run(self, max_cycles: Optional[int] = None) -> int:
        """Drain the event heap; returns the final simulation time.

        ``max_cycles`` guards against runaway simulations (raises
        ``RuntimeError`` when exceeded).
        """
        if self._calendar is not None:
            calendar = self._calendar
            while calendar:
                time, _, callback = calendar.pop()
                if max_cycles is not None and time > max_cycles:
                    raise RuntimeError(
                        f"simulation exceeded max_cycles={max_cycles} "
                        f"(next event at {time})"
                    )
                self.now = time
                self.events_processed += 1
                callback()
        else:
            while self._heap:
                time, _, callback = heapq.heappop(self._heap)
                if max_cycles is not None and time > max_cycles:
                    raise RuntimeError(
                        f"simulation exceeded max_cycles={max_cycles} "
                        f"(next event at {time})"
                    )
                self.now = time
                self.events_processed += 1
                callback()
        blocked = [s for s in self._parked if s.parked and not s.done]
        blocked += [
            s for s in self._targeted if s.parked_targeted and not s.done
        ]
        if blocked:
            blocked.sort(key=lambda s: s.pe.index)
            for sequencer in blocked:
                task = sequencer.current
                if task is not None and task.ready(self.now):
                    raise LostWakeupError(
                        f"{sequencer.pe.name}: task {task.name!r} is ready "
                        f"at t={self.now} but its sequencer was never woken "
                        f"(lost wakeup)"
                    )
            details = "; ".join(s.describe_block() for s in blocked)
            raise SimulationDeadlock(
                f"simulation deadlocked at t={self.now}: {details}"
            )
        return self.now


class PESequencer:
    """Executes one PE's cyclic task order, self-timed.

    ``program`` is the per-iteration task list; the sequencer runs it
    ``iterations`` times.  Each task may be executed with overlapping of
    *different PEs* but tasks of one PE strictly serialize (one datapath).
    """

    def __init__(
        self,
        sim: Simulator,
        pe: ProcessingElement,
        program: Sequence[Task],
        iterations: int,
        trace=None,
    ) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.sim = sim
        self.pe = pe
        self.program = list(program)
        self.iterations = iterations
        self.trace = trace
        self.iteration = 0
        self.position = 0
        self.done = not self.program
        self.finish_times: List[int] = []
        #: optional hook invoked synchronously at each iteration wrap,
        #: *before* the done check — the steady-state tracker hashes the
        #: kernel state here and may reduce ``iterations`` (a warp)
        self.on_iteration: Optional[Callable[[], None]] = None
        self._running = False
        #: absolute completion time of the running task (state hashing)
        self._busy_until: Optional[int] = None
        #: when the current task first failed its guard (None = not blocked)
        self._blocked_since: Optional[int] = None
        #: parked in either discipline (O(1) membership, replaces the
        #: kernel's old linear ``sequencer not in parked`` scan)
        self.parked = False
        #: parked with waitset subscriptions (targeted discipline)
        self.parked_targeted = False
        #: queued in the kernel's current wake round
        self.wake_pending = False
        #: bumped every time the sequencer leaves the parked state —
        #: invalidates stale waitset subscriptions
        self.wait_epoch = 0
        #: membership flag for the kernel's targeted-parked list
        self._tracked = False
        #: the advance() call was delivered by a wakeup (spurious-wakeup
        #: accounting: set by the kernel, cleared on entry to advance)
        self._woken = False
        # One completion closure per sequencer, reused across every task
        # start (tasks of one PE strictly serialize, so a single slot is
        # enough) — avoids two closure allocations per firing.
        self._current_task: Optional[Task] = None
        self._started_at = 0
        self._complete_cb = self._complete
        self._async_hook = self._install_async_complete

    def begin(self) -> None:
        """Arm the sequencer (schedule its first advance at t=0)."""
        if not self.done:
            self.sim.at(self.sim.now, self.advance)

    @property
    def current(self) -> Optional[Task]:
        if self.done:
            return None
        return self.program[self.position]

    def _unpark(self) -> None:
        self.parked = False
        self.parked_targeted = False
        self.wait_epoch += 1

    def advance(self) -> None:
        """Try to start the current task; park on a failed guard."""
        woken, self._woken = self._woken, False
        if self.done or self._running:
            return
        if self.parked:
            self._unpark()
        task = self.program[self.position]
        now = self.sim.now
        if not task.ready(now):
            if woken:
                self.sim.spurious_wakeups += 1
            if self._blocked_since is None:
                self._blocked_since = now
            self.pe.record_block()
            wait_on = getattr(task, "wait_on", None)
            self.sim.park(self, wait_on(now) if wait_on is not None else None)
            return
        if self._blocked_since is not None:
            # The blocked interval ends now: attribute it to the task
            # whose guard held the PE up (observability).
            self.pe.record_blocked_interval(
                task.name, now - self._blocked_since
            )
            self._blocked_since = None
        self._current_task = task
        self._started_at = now
        duration = task.start(now)
        self._running = True
        if duration is None:
            # Event-completed task (e.g. a blocking rendezvous send):
            # the task signals completion through this callback.
            self._busy_until = None
            task.complete_async = self._async_hook
        else:
            self._busy_until = now + duration
            self.sim.after(duration, self._complete_cb)

    def _install_async_complete(self) -> None:
        self.sim.at(self.sim.now, self._complete_cb)

    def _complete(self) -> None:
        task = self._current_task
        self._current_task = None
        self._running = False
        self.pe.record_execution(self.sim.now - self._started_at)
        if self.trace is not None:
            self.trace.record(
                pe=self.pe.index,
                task=task.name,
                start=self._started_at,
                end=self.sim.now,
                iteration=self.iteration,
            )
        task.finish(self.sim.now)
        self._step()
        self.sim.notify()
        if not self.done:
            self.advance()

    def _step(self) -> None:
        self.position += 1
        if self.position >= len(self.program):
            self.position = 0
            self.iteration += 1
            self.finish_times.append(self.sim.now)
            if self.on_iteration is not None:
                # may warp: every sequencer's target can shrink here, so
                # the done check below must run after the hook
                self.on_iteration()
            if self.iteration >= self.iterations:
                self.done = True

    def describe_block(self) -> str:
        task = self.current
        name = task.name if task is not None else "<none>"
        base = (
            f"{self.pe.name} blocked on task {name!r} "
            f"(iteration {self.iteration}, position {self.position})"
        )
        # tasks that know *why* they cannot proceed (which channel or
        # fifo is starved/full) report it, making deadlocks diagnosable
        reason_fn = getattr(task, "blocked_reason", None)
        if reason_fn is not None:
            try:
                reason = reason_fn(self.sim.now)
            except Exception:
                reason = None
            if reason:
                base = f"{base}: {reason}"
        return base
