"""Simulated hardware substrate: clocking, PEs, links, memories, FPGA
resource model, and the discrete-event kernel."""

from repro.platform.clock import DEFAULT_CLOCK, ClockDomain
from repro.platform.fpga import (
    RESOURCE_FIELDS,
    VIRTEX4_LX60,
    VIRTEX4_SX35,
    FpgaDevice,
    ResourceVector,
    UtilizationReport,
    estimate_datapath,
    estimate_fifo,
)
from repro.platform.interconnect import Interconnect, Link, LinkSpec
from repro.platform.memory import (
    BufferMemory,
    BufferOverflowError,
    BufferUnderflowError,
)
from repro.platform.compiled import CalendarQueue, CompiledFiring, CompiledStats
from repro.platform.pe import GPP, PEClass, ProcessingElement
from repro.platform.simulator import (
    LostWakeupError,
    PESequencer,
    SimulationDeadlock,
    Simulator,
    Task,
    Waitset,
)
from repro.platform.steady_state import (
    AttrMeter,
    MapMeter,
    ObjectMapMeter,
    SteadyStateReport,
    SteadyStateTracker,
)
from repro.platform.trace import TraceEvent, TraceRecorder

__all__ = [
    "AttrMeter",
    "CalendarQueue",
    "CompiledFiring",
    "CompiledStats",
    "MapMeter",
    "ObjectMapMeter",
    "SteadyStateReport",
    "SteadyStateTracker",
    "DEFAULT_CLOCK",
    "ClockDomain",
    "RESOURCE_FIELDS",
    "VIRTEX4_LX60",
    "VIRTEX4_SX35",
    "FpgaDevice",
    "ResourceVector",
    "UtilizationReport",
    "estimate_datapath",
    "estimate_fifo",
    "Interconnect",
    "Link",
    "LinkSpec",
    "BufferMemory",
    "BufferOverflowError",
    "BufferUnderflowError",
    "GPP",
    "PEClass",
    "ProcessingElement",
    "PESequencer",
    "LostWakeupError",
    "SimulationDeadlock",
    "Simulator",
    "Task",
    "Waitset",
    "TraceEvent",
    "TraceRecorder",
]
