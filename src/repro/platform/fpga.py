"""Virtex-4-style FPGA resource model.

The paper's Tables 1 and 2 report post-synthesis area of the two
application systems and of the SPI library *relative* to them, in the
Virtex-4 resource categories: slices, slice flip-flops, 4-input LUTs,
Block RAMs and DSP48 blocks.  We reproduce those tables with a
structural cost model:

* every actor and every SPI module declares a :class:`ResourceVector`
  (directly, or via the :func:`estimate_datapath` / :func:`estimate_fifo`
  helpers which translate datapath structure — multipliers, adders,
  registers, buffer bytes — into primitive counts using Virtex-4
  architecture rules);
* a :class:`FpgaDevice` holds the device capacity so percentages of the
  device can be reported;
* :class:`UtilizationReport` renders the paper's two-row table shape
  (full system % of device, SPI library % relative to the full system).

Architecture rules used (Virtex-4 fabric):

* one slice = 2 four-input LUTs + 2 flip-flops; synthesis typically
  packs at ~60-70 % efficiency, we use ``SLICE_PACKING = 0.65``;
* one DSP48 implements one 18x18 multiply-accumulate;
* one Block RAM holds 18 kilobits (2 KiB + parity); any actor/channel
  state beyond :data:`BRAM_THRESHOLD_BYTES` is mapped to BRAM, smaller
  state stays in distributed LUT RAM/FFs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable

__all__ = [
    "ResourceVector",
    "FpgaDevice",
    "VIRTEX4_SX35",
    "VIRTEX4_LX60",
    "estimate_datapath",
    "estimate_fifo",
    "UtilizationReport",
    "RESOURCE_FIELDS",
]

RESOURCE_FIELDS = ("slices", "slice_ffs", "lut4", "bram", "dsp48")

#: fraction of a slice's LUT/FF capacity synthesis actually packs
SLICE_PACKING = 0.65
#: bytes of data one 18 kb Block RAM holds (16 kb of data + parity)
BRAM_BYTES = 2048
#: state smaller than this stays in distributed RAM / registers
BRAM_THRESHOLD_BYTES = 128


@dataclass(frozen=True)
class ResourceVector:
    """Counts of the five Virtex-4 resource categories."""

    slices: int = 0
    slice_ffs: int = 0
    lut4: int = 0
    bram: int = 0
    dsp48: int = 0

    def __post_init__(self) -> None:
        for name in RESOURCE_FIELDS:
            if getattr(self, name) < 0:
                raise ValueError(f"resource {name} must be >= 0")

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            *(getattr(self, f) + getattr(other, f) for f in RESOURCE_FIELDS)
        )

    def scale(self, factor: int) -> "ResourceVector":
        """Integer replication (``factor`` parallel instances)."""
        if factor < 0:
            raise ValueError("scale factor must be >= 0")
        return ResourceVector(
            *(getattr(self, f) * factor for f in RESOURCE_FIELDS)
        )

    def as_dict(self) -> Dict[str, int]:
        return {f: getattr(self, f) for f in RESOURCE_FIELDS}

    @property
    def is_zero(self) -> bool:
        return all(getattr(self, f) == 0 for f in RESOURCE_FIELDS)

    @classmethod
    def sum(cls, vectors: Iterable["ResourceVector"]) -> "ResourceVector":
        total = cls()
        for vector in vectors:
            total = total + vector
        return total


@dataclass(frozen=True)
class FpgaDevice:
    """Capacity of one FPGA device."""

    name: str
    capacity: ResourceVector

    def utilization(self, used: ResourceVector) -> Dict[str, float]:
        """Percent of device used per resource category."""
        result = {}
        for field_name in RESOURCE_FIELDS:
            cap = getattr(self.capacity, field_name)
            use = getattr(used, field_name)
            result[field_name] = 100.0 * use / cap if cap else 0.0
        return result

    def fits(self, used: ResourceVector) -> bool:
        return all(
            getattr(used, f) <= getattr(self.capacity, f)
            for f in RESOURCE_FIELDS
        )


#: The SX35 is the DSP-oriented mid-size Virtex-4 matching the paper's
#: "FPGA resources were not enough to fit a multiprocessor version of the
#: whole system" observation for application 1.
VIRTEX4_SX35 = FpgaDevice(
    "xc4vsx35",
    ResourceVector(slices=15360, slice_ffs=30720, lut4=30720, bram=192, dsp48=192),
)

VIRTEX4_LX60 = FpgaDevice(
    "xc4vlx60",
    ResourceVector(slices=26624, slice_ffs=53248, lut4=53248, bram=160, dsp48=64),
)


def estimate_datapath(
    multipliers: int = 0,
    adders: int = 0,
    registers_bits: int = 0,
    logic_lut4: int = 0,
    state_bytes: int = 0,
    adder_width: int = 18,
) -> ResourceVector:
    """Translate datapath structure into Virtex-4 primitives.

    * each 18x18 multiplier -> 1 DSP48 (no fabric cost: V4 DSP48 has the
      adder/accumulator built in);
    * each ``adder_width``-bit adder -> ``adder_width`` LUT4s (carry
      chains use one LUT per bit);
    * ``registers_bits`` -> flip-flops;
    * ``logic_lut4`` -> extra random logic LUTs;
    * ``state_bytes`` above :data:`BRAM_THRESHOLD_BYTES` -> BRAMs,
      otherwise distributed RAM (16 bits/LUT) plus address registers.
    """
    if min(multipliers, adders, registers_bits, logic_lut4, state_bytes) < 0:
        raise ValueError("datapath quantities must be >= 0")
    luts = adders * adder_width + logic_lut4
    ffs = registers_bits
    bram = 0
    if state_bytes > 0:
        if state_bytes > BRAM_THRESHOLD_BYTES:
            bram = math.ceil(state_bytes / BRAM_BYTES)
        else:
            luts += math.ceil(state_bytes * 8 / 16)  # distributed RAM
            ffs += 16  # small address/valid bookkeeping
    slices = math.ceil(max(luts, ffs) / (2 * SLICE_PACKING)) if (luts or ffs) else 0
    return ResourceVector(
        slices=slices, slice_ffs=ffs, lut4=luts, bram=bram, dsp48=multipliers
    )


def estimate_fifo(
    depth_bytes: int, width_bits: int = 32, force_bram: bool = False
) -> ResourceVector:
    """Cost of a FIFO buffer of ``depth_bytes`` with ``width_bits`` ports.

    Control (read/write pointers, full/empty flags, gray-code sync) costs
    a small fixed amount of fabric; storage maps to BRAM beyond the
    distributed-RAM threshold.  ``force_bram`` models dual-ported buffers
    (e.g. an SPI receive buffer written by the link and read by the
    consumer) that synthesis maps to Block RAM regardless of depth —
    this is why the SPI library owns a disproportionate share of the
    BRAMs in the paper's Table 1.
    """
    if depth_bytes < 0:
        raise ValueError("depth_bytes must be >= 0")
    pointer_bits = max(1, math.ceil(math.log2(max(2, depth_bytes))))
    control_ffs = 2 * pointer_bits + 4
    control_luts = 2 * pointer_bits + 8
    if force_bram:
        storage = ResourceVector(bram=max(1, math.ceil(depth_bytes / BRAM_BYTES)))
    else:
        storage = estimate_datapath(state_bytes=depth_bytes)
    control = estimate_datapath(
        registers_bits=control_ffs, logic_lut4=control_luts
    )
    # width adds mux/register staging
    staging = estimate_datapath(registers_bits=width_bits)
    return storage + control + staging


@dataclass
class UtilizationReport:
    """The paper's table shape: full system vs SPI library.

    ``full_system`` is the total used area, ``spi_library`` the part of
    it contributed by the SPI communication modules.
    """

    device: FpgaDevice
    full_system: ResourceVector
    spi_library: ResourceVector
    title: str = ""

    def device_percent(self) -> Dict[str, float]:
        """Full system as % of the device (paper's "Full system" row)."""
        return self.device.utilization(self.full_system)

    def spi_relative_percent(self) -> Dict[str, float]:
        """SPI library as % of the full system (paper's second row)."""
        result = {}
        for field_name in RESOURCE_FIELDS:
            total = getattr(self.full_system, field_name)
            spi = getattr(self.spi_library, field_name)
            result[field_name] = 100.0 * spi / total if total else 0.0
        return result

    def render(self) -> str:
        """ASCII rendering in the shape of the paper's Tables 1/2."""
        headers = ["", "Slices", "Slice FFs", "4-input LUTs", "Block RAMs", "DSP48s"]
        dev = self.device_percent()
        rel = self.spi_relative_percent()
        rows = [
            ["Full system (% of device)"]
            + [f"{dev[f]:.2f}%" for f in RESOURCE_FIELDS],
            ["SPI library (relative to full system)"]
            + [f"{rel[f]:.2f}%" for f in RESOURCE_FIELDS],
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows))
            for i in range(len(headers))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(headers, widths))
        )
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)
