"""Steady-state detection and extrapolation for self-timed execution.

Self-timed execution of a consistent SDF graph is eventually periodic
(paper eq. 3: firing instants settle into ``start(v, k + P) =
start(v, k) + T``), so simulating every iteration of a long run wastes
work on a pattern that repeats exactly.  Following the SDF3 school of
throughput analysis (Ghamarian et al.), the tracker captures the *full
kernel state* at every reference-iteration boundary and detects the
periodic phase as an exact state recurrence — no rate analysis, no
approximation, just hashing.

Once a period of ``P`` iterations / ``T`` cycles is **confirmed** (the
state recurs twice consecutively with identical per-period counter
deltas, or once when it matches a cached cross-run period hint), the
remaining ``m * P`` whole periods are warped over analytically:

* every sequencer's iteration target is reduced by ``m * P`` (the tail
  and the final drain still simulate normally, so the last-iteration
  ramp-down is exact);
* every registered :class:`Meter` — PE cycles, per-channel message and
  byte counts, pool traffic, transport totals — is advanced by ``m``
  times its per-period delta;
* ``m * T`` cycles are added to the reported makespan.

Because the state recurrence is exact and the simulator deterministic,
makespan, per-channel traffic and occupancy high-water marks of a warped
run are bit-identical to the fully interpreted run (HWMs cannot grow
inside the skipped periods: each one replays an occupancy trajectory the
detection window already observed).  Kernel-effort counters
(``events_processed``, parks, wakeups) are deliberately *not*
extrapolated — they report the work actually simulated, which is the
point of the speedup.

What must be in the state hash (and why) is documented in DESIGN.md
§4e; the short version: anything that influences any future event time
or counter, expressed relative to the current time, including every
in-flight message — data, UBS acks **and** resynchronization deposits.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

__all__ = [
    "AttrMeter",
    "MapMeter",
    "ObjectMapMeter",
    "SteadyStateReport",
    "SteadyStateTracker",
]


class AttrMeter:
    """Meter over monotonically increasing integer attributes."""

    __slots__ = ("name", "obj", "fields")

    def __init__(self, name: str, obj: object, fields: Sequence[str]) -> None:
        self.name = name
        self.obj = obj
        self.fields = tuple(fields)

    def snapshot(self) -> Dict[Hashable, int]:
        return {f: getattr(self.obj, f) for f in self.fields}

    def apply(self, delta: Dict[Hashable, int], times: int) -> None:
        for f, d in delta.items():
            setattr(self.obj, f, getattr(self.obj, f) + d * times)


class MapMeter:
    """Meter over a live counter mapping (e.g. blocked-by-task cycles)."""

    __slots__ = ("name", "_get")

    def __init__(
        self, name: str, get_map: Callable[[], Dict[Hashable, int]]
    ) -> None:
        self.name = name
        self._get = get_map

    def snapshot(self) -> Dict[Hashable, int]:
        return dict(self._get())

    def apply(self, delta: Dict[Hashable, int], times: int) -> None:
        live = self._get()
        for key, d in delta.items():
            live[key] = live.get(key, 0) + d * times


class ObjectMapMeter:
    """Meter over a (lazily populated) map of counter-bearing objects.

    ``get_items()`` yields ``(key, obj)`` pairs; counters are the
    ``fields`` attributes of each object.  Every key of the warp delta
    is guaranteed live at apply time because the delta is computed from
    the newest snapshot of the same map.
    """

    __slots__ = ("name", "_get_items", "fields")

    def __init__(self, name: str, get_items: Callable, fields) -> None:
        self.name = name
        self._get_items = get_items
        self.fields = tuple(fields)

    def snapshot(self) -> Dict[Hashable, int]:
        return {
            (key, f): getattr(obj, f)
            for key, obj in self._get_items()
            for f in self.fields
        }

    def apply(self, delta: Dict[Hashable, int], times: int) -> None:
        live = dict(self._get_items())
        for (key, f), d in delta.items():
            obj = live[key]
            setattr(obj, f, getattr(obj, f) + d * times)


@dataclass
class SteadyStateReport:
    """Everything the tracker observed, for metrics and conformance."""

    #: reference iteration at which the period was confirmed (None =
    #: never detected within the hashing window)
    detected_at: Optional[int] = None
    period_iterations: Optional[int] = None
    period_cycles: Optional[int] = None
    #: iterations skipped analytically (0 = the run was fully simulated)
    extrapolated_iterations: int = 0
    extrapolated_cycles: int = 0
    #: the warp used a cached cross-run period hint (one confirmation
    #: period was skipped; the state recurrence itself is still required)
    hint_used: bool = False
    #: reference-iteration boundaries hashed before detection/give-up
    boundaries_hashed: int = 0
    #: per-period counter deltas, keyed ``(meter name, counter key)``
    period_delta: Optional[Dict[Tuple[str, Hashable], int]] = None
    #: ``(iteration, time, state digest)`` per hashed boundary — the
    #: artifact uploaded by CI when a conformance divergence is found
    hash_trace: List[Tuple[int, int, str]] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        return {
            "detected_at": self.detected_at,
            "period_iterations": self.period_iterations,
            "period_cycles": self.period_cycles,
            "extrapolated_iterations": self.extrapolated_iterations,
            "extrapolated_cycles": self.extrapolated_cycles,
            "hint_used": self.hint_used,
            "boundaries_hashed": self.boundaries_hashed,
            "hash_trace": [
                {"iteration": k, "time": t, "digest": d}
                for k, t, d in self.hash_trace
            ],
        }


class SteadyStateTracker:
    """Detects the periodic phase of one simulation and warps over it.

    The runtime wires one tracker per armed run: ``probes`` are
    callables ``probe(now) -> hashable`` capturing each subsystem's
    state relative to ``now``; ``meters`` cover every counter that the
    skipped periods would have advanced.  The tracker also owns the
    in-flight message multiset fed by
    :meth:`~repro.platform.simulator.Simulator.schedule_delivery`.

    Detection is conservative by construction: a candidate period (one
    exact state recurrence) must recur again after exactly one more
    period with identical per-period counter deltas before the warp is
    taken.  A cached ``hint`` of ``(period_iterations, period_cycles)``
    from a previous run of the same system lets the first recurrence
    warp directly — the state equality is still required, the hint only
    replaces the second confirmation period.
    """

    def __init__(
        self,
        sim,
        sequencers: Sequence,
        probes: Sequence[Callable[[int], Hashable]],
        meters: Sequence,
        target_iterations: int,
        hint: Optional[Tuple[int, int]] = None,
        max_window: int = 512,
    ) -> None:
        if not sequencers:
            raise ValueError("steady-state tracking needs >= 1 sequencer")
        self.sim = sim
        self.sequencers = list(sequencers)
        self.ref = self.sequencers[0]
        self.probes = list(probes)
        self.meters = list(meters)
        self.target_iterations = target_iterations
        self.hint = tuple(hint) if hint is not None else None
        self.max_window = max_window
        #: while True, boundary hashing and in-flight tracking are live
        self.armed = True
        self.report = SteadyStateReport()
        # full state tuples (exact equality — no collision risk) ->
        # (iteration, time, per-meter counter snapshots)
        self._seen: Dict[Hashable, Tuple[int, int, List[Dict]]] = {}
        # (expected confirmation iteration, P, T, per-meter deltas)
        self._candidate: Optional[Tuple[int, int, int, List[Dict]]] = None
        self._inflight: Dict[Tuple[Hashable, int], int] = {}

    # -- in-flight message multiset (fed by Simulator.schedule_delivery) --

    def track(self, key: Hashable, arrival: int) -> None:
        slot = (key, arrival)
        self._inflight[slot] = self._inflight.get(slot, 0) + 1

    def untrack(self, key: Hashable, arrival: int) -> None:
        slot = (key, arrival)
        count = self._inflight.get(slot, 0)
        if count <= 1:
            self._inflight.pop(slot, None)
        else:
            self._inflight[slot] = count - 1

    def _inflight_state(self, now: int) -> Tuple:
        return tuple(
            sorted(
                (arrival - now, repr(key), n)
                for (key, arrival), n in self._inflight.items()
            )
        )

    # -- state capture ------------------------------------------------------

    def _capture(self, now: int) -> Tuple:
        parts: List[Hashable] = [self._inflight_state(now)]
        for probe in self.probes:
            parts.append(probe(now))
        return tuple(parts)

    def _snapshots(self) -> List[Dict]:
        return [meter.snapshot() for meter in self.meters]

    @staticmethod
    def _deltas(older: List[Dict], newer: List[Dict]) -> List[Dict]:
        return [
            {key: new[key] - old.get(key, 0) for key in new}
            for old, new in zip(older, newer)
        ]

    # -- boundary hook (installed on the reference sequencer) ---------------

    def on_iteration_boundary(self) -> None:
        """Called synchronously when the reference PE wraps an iteration."""
        if not self.armed:
            return
        now = self.sim.now
        k = self.ref.iteration
        state = self._capture(now)
        report = self.report
        report.boundaries_hashed += 1
        digest = hashlib.sha1(repr(state).encode()).hexdigest()[:16]
        report.hash_trace.append((k, now, digest))

        prev = self._seen.get(state)
        snaps = self._snapshots()
        if prev is not None:
            prev_k, prev_now, prev_snaps = prev
            period = k - prev_k
            cycles = now - prev_now
            deltas = self._deltas(prev_snaps, snaps)
            if self.hint is not None and self.hint == (period, cycles):
                if self._warp(k, period, cycles, deltas, hint_used=True):
                    return
            cand = self._candidate
            if (
                cand is not None
                and cand[0] == k
                and cand[1] == period
                and cand[2] == cycles
                and cand[3] == deltas
            ):
                if self._warp(k, period, cycles, deltas, hint_used=False):
                    return
            self._candidate = (k + period, period, cycles, deltas)
        self._seen[state] = (k, now, snaps)
        if report.boundaries_hashed >= self.max_window:
            # aperiodic within the window (or transient longer than it):
            # stop paying the hashing cost and run the rest interpreted
            self.armed = False

    # -- the warp -----------------------------------------------------------

    def _warp(
        self,
        k: int,
        period: int,
        cycles: int,
        deltas: List[Dict],
        hint_used: bool,
    ) -> bool:
        if any(s.done for s in self.sequencers):
            return False
        furthest = max(s.iteration for s in self.sequencers)
        skips = (self.target_iterations - furthest - 1) // period
        if skips < 1:
            return False
        for sequencer in self.sequencers:
            sequencer.iterations -= skips * period
        for meter, delta in zip(self.meters, deltas):
            meter.apply(delta, skips)
        report = self.report
        report.detected_at = k
        report.period_iterations = period
        report.period_cycles = cycles
        report.extrapolated_iterations = skips * period
        report.extrapolated_cycles = skips * cycles
        report.hint_used = hint_used
        report.period_delta = {
            (meter.name, key): value
            for meter, delta in zip(self.meters, deltas)
            for key, value in delta.items()
        }
        self.armed = False
        return True
