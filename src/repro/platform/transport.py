"""Data transports: point-to-point links, shared bus, ordered transactions.

The paper's SPI library uses dedicated point-to-point streaming links
(the default here), but notes that "adaptations of the methodology to
other scheduling models is feasible, and is an interesting topic for
further investigation".  Two such adaptations are provided:

* :class:`SharedBusTransport` — every transfer contends for one shared
  bus, arbitrated first-come-first-served with a per-transfer
  arbitration cost.  Cheap in wires, serialises all communication.
* :class:`OrderedBusTransport` — the *ordered-transaction* model
  (Sriram & Bhattacharyya): the bus grant sequence is fixed at compile
  time from the schedule, so no run-time arbitration is needed at all —
  but a transfer must wait for its slot even when the bus is idle.

All transports share one interface: ``send(channel_key, src_pe, dst_pe,
nbytes, now, deliver)`` where ``deliver`` runs when the last word lands.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.platform.interconnect import Interconnect, LinkSpec
from repro.platform.simulator import Simulator

__all__ = [
    "PointToPointTransport",
    "SharedBusTransport",
    "OrderedBusTransport",
]


class PointToPointTransport:
    """Dedicated unidirectional links per PE pair (the SPI default)."""

    def __init__(self, sim: Simulator, interconnect: Interconnect) -> None:
        self.sim = sim
        self.interconnect = interconnect
        self.messages = 0
        self.bytes = 0

    def send(
        self,
        channel_key: Hashable,
        src_pe: int,
        dst_pe: int,
        nbytes: int,
        now: int,
        deliver: Callable[[], None],
    ) -> None:
        link = self.interconnect.link(src_pe, dst_pe)
        _, arrival = link.reserve(now, nbytes)
        self.messages += 1
        self.bytes += nbytes
        self.sim.at(arrival, deliver)


class SharedBusTransport:
    """One bus for everything, FCFS arbitration.

    Each transfer pays ``arbitration_cycles`` on top of the link cost
    and occupies the bus exclusively; concurrent requests queue in
    arrival order (ties broken deterministically by request sequence).
    """

    def __init__(
        self,
        sim: Simulator,
        spec: Optional[LinkSpec] = None,
        arbitration_cycles: int = 2,
    ) -> None:
        if arbitration_cycles < 0:
            raise ValueError("arbitration_cycles must be >= 0")
        self.sim = sim
        self.spec = spec or LinkSpec()
        self.arbitration_cycles = arbitration_cycles
        self.busy_until = 0
        self.messages = 0
        self.bytes = 0

    def send(
        self,
        channel_key: Hashable,
        src_pe: int,
        dst_pe: int,
        nbytes: int,
        now: int,
        deliver: Callable[[], None],
    ) -> None:
        start = max(now, self.busy_until) + self.arbitration_cycles
        arrival = start + self.spec.transfer_cycles(nbytes)
        self.busy_until = arrival
        self.messages += 1
        self.bytes += nbytes
        self.sim.at(arrival, deliver)


class OrderedBusTransport:
    """Ordered-transaction bus: the grant sequence is fixed offline.

    ``order`` is the cyclic sequence of channel keys in which transfers
    are granted (one entry per message per graph iteration, derived from
    the schedule).  A transfer request for the key at the head of the
    sequence is granted as soon as the bus frees — with **zero**
    arbitration cost, that is the model's selling point; a request out
    of turn waits until every earlier slot has been used.
    """

    def __init__(
        self,
        sim: Simulator,
        order: Sequence[Hashable],
        spec: Optional[LinkSpec] = None,
    ) -> None:
        if not order:
            raise ValueError("transaction order must be non-empty")
        self.sim = sim
        self.order = list(order)
        self.spec = spec or LinkSpec()
        self.busy_until = 0
        self.messages = 0
        self.bytes = 0
        self._cursor = 0
        self._pending: Dict[Hashable, Deque[Tuple[int, Callable[[], None]]]] = {}

    def send(
        self,
        channel_key: Hashable,
        src_pe: int,
        dst_pe: int,
        nbytes: int,
        now: int,
        deliver: Callable[[], None],
    ) -> None:
        if channel_key not in self.order:
            raise ValueError(
                f"channel {channel_key!r} is not in the compile-time "
                f"transaction order"
            )
        self._pending.setdefault(channel_key, deque()).append(
            (nbytes, deliver)
        )
        self._drain(now)

    def _drain(self, now: int) -> None:
        while True:
            key = self.order[self._cursor]
            queue = self._pending.get(key)
            if not queue:
                return
            nbytes, deliver = queue.popleft()
            start = max(now, self.busy_until)  # no arbitration cost
            arrival = start + self.spec.transfer_cycles(nbytes)
            self.busy_until = arrival
            self.messages += 1
            self.bytes += nbytes
            self.sim.at(arrival, deliver)
            self._cursor = (self._cursor + 1) % len(self.order)
