"""Data transports: point-to-point links, shared bus, ordered transactions.

The paper's SPI library uses dedicated point-to-point streaming links
(the default here), but notes that "adaptations of the methodology to
other scheduling models is feasible, and is an interesting topic for
further investigation".  Two such adaptations are provided:

* :class:`SharedBusTransport` — every transfer contends for one shared
  bus, arbitrated first-come-first-served with a per-transfer
  arbitration cost.  Cheap in wires, serialises all communication.
* :class:`OrderedBusTransport` — the *ordered-transaction* model
  (Sriram & Bhattacharyya): the bus grant sequence is fixed at compile
  time from the schedule, so no run-time arbitration is needed at all —
  but a transfer must wait for its slot even when the bus is idle.

All transports share one interface: ``send(channel_key, src_pe, dst_pe,
nbytes, now, deliver)`` where ``deliver`` runs when the last word lands.

Every transport is instrumented: besides the global ``messages`` /
``bytes`` totals it keeps a per-channel :class:`ChannelTraffic` record —
message/byte counts, **queueing delay** (cycles between the send request
and the wire accepting the message) and **contention time** (the part of
that wait caused by the medium being busy; for the ordered bus the
remainder is time spent waiting for the compile-time slot).  An optional
``observer`` (an :class:`~repro.observability.collector
.ObservabilityHub`) additionally receives every message's full life
record for trace arrows and the data-vs-sync byte split.

For the targeted-wakeup kernel every transport additionally exposes a
``waitset`` (:class:`~repro.platform.simulator.Waitset`) that is woken
each time the medium commits a delivery — a task whose guard depends on
transport progress (e.g. a sender throttled by a busy medium) can name
it from ``wait_on()`` and be re-evaluated exactly when a transfer lands
instead of on every state change in the system.

The point-to-point transport also has an **uncontended fast path**: a
transfer whose link is idle and whose transfer time is zero cycles (an
ideal ``LinkSpec(setup_cycles=0, cycles_per_word=0)`` link) is delivered
inline, skipping the event-heap round trip entirely —
``fast_path_deliveries`` counts them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Hashable, Optional, Sequence, Tuple

from repro.platform.interconnect import Interconnect, LinkSpec
from repro.platform.simulator import Simulator, Waitset

__all__ = [
    "ChannelTraffic",
    "PointToPointTransport",
    "SharedBusTransport",
    "OrderedBusTransport",
]


@dataclass
class ChannelTraffic:
    """Per-channel transport statistics."""

    messages: int = 0
    bytes: int = 0
    queueing_cycles: int = 0
    contention_cycles: int = 0


class _TransportStats:
    """Shared accounting mixin for every transport flavour."""

    def _init_stats(self, observer=None) -> None:
        self.messages = 0
        self.bytes = 0
        self.per_channel: Dict[Hashable, ChannelTraffic] = {}
        self.observer = observer
        #: wire transfers that served a collective connection
        self.collective_messages = 0
        #: branch deliveries fanned out of those collective transfers
        self.fan_out_deliveries = 0
        #: bytes avoided vs. sending every branch independently
        self.wire_bytes_saved = 0
        #: woken on every committed delivery (targeted-wakeup kernel)
        self.waitset = Waitset(f"transport:{type(self).__name__}")

    def _account_collective(
        self, transfers: int, deliveries: int, logical_bytes: int,
        wire_bytes: int,
    ) -> None:
        self.collective_messages += transfers
        self.fan_out_deliveries += deliveries
        self.wire_bytes_saved += logical_bytes - wire_bytes

    def _schedule_delivery(
        self,
        sim: Simulator,
        arrival: int,
        deliver: Callable[[], None],
        key: Hashable,
    ) -> None:
        """Run ``deliver`` at ``arrival``, then wake the waitset.

        Routed through :meth:`Simulator.schedule_delivery` so an armed
        steady-state tracker sees the message while it is in flight.
        """
        waitset = self.waitset

        def dispatch() -> None:
            deliver()
            waitset.wake()

        sim.schedule_delivery(arrival, dispatch, key)

    def _record(
        self,
        channel_key: Hashable,
        src_pe: int,
        dst_pe: int,
        nbytes: int,
        requested: int,
        started: int,
        arrived: int,
        contention: int,
        kind: str,
    ) -> None:
        self.messages += 1
        self.bytes += nbytes
        traffic = self.per_channel.get(channel_key)
        if traffic is None:
            traffic = self.per_channel[channel_key] = ChannelTraffic()
        traffic.messages += 1
        traffic.bytes += nbytes
        traffic.queueing_cycles += started - requested
        traffic.contention_cycles += contention
        if self.observer is not None:
            self.observer.message(
                channel=str(channel_key),
                kind=kind,
                src_pe=src_pe,
                dst_pe=dst_pe,
                nbytes=nbytes,
                requested=requested,
                started=started,
                arrived=arrived,
            )


class PointToPointTransport(_TransportStats):
    """Dedicated unidirectional links per PE pair (the SPI default)."""

    def __init__(
        self, sim: Simulator, interconnect: Interconnect, observer=None
    ) -> None:
        self.sim = sim
        self.interconnect = interconnect
        #: transfers delivered inline (idle zero-latency link): no event
        self.fast_path_deliveries = 0
        self._init_stats(observer)

    def send(
        self,
        channel_key: Hashable,
        src_pe: int,
        dst_pe: int,
        nbytes: int,
        now: int,
        deliver: Callable[[], None],
        kind: str = "data",
    ) -> None:
        link = self.interconnect.link(src_pe, dst_pe)
        start, arrival = link.reserve(now, nbytes)
        self._record(
            channel_key,
            src_pe,
            dst_pe,
            nbytes,
            requested=now,
            started=start,
            arrived=arrival,
            contention=start - now,
            kind=kind,
        )
        if arrival <= self.sim.now:
            # Uncontended zero-latency transfer: deliver inline instead
            # of taking a heap round trip.  Consumers are still woken
            # through their waitsets, which defer re-evaluation to an
            # event at the current time, so ordering is unchanged.
            self.fast_path_deliveries += 1
            deliver()
            self.waitset.wake()
            return
        self._schedule_delivery(self.sim, arrival, deliver, (kind, channel_key))

    def send_collective(
        self,
        group_key: Hashable,
        src_pe: int,
        parts: Sequence[Tuple[Hashable, int, int, Callable[[], None]]],
        now: int,
        shared_payload: bool = True,
    ) -> None:
        """One collective firing: one wire transfer per destination PE.

        ``parts`` is ``[(channel_key, dst_pe, nbytes, deliver), ...]`` in
        branch order.  Branches bound for the same destination share one
        link transfer — the full payload once for a broadcast
        (``shared_payload``), the concatenated chunks for a scatter — and
        the avoided bytes are credited to ``wire_bytes_saved``.
        """
        by_dst: Dict[int, list] = {}
        for part in parts:
            by_dst.setdefault(part[1], []).append(part)
        for dst_pe, group in by_dst.items():
            logical = sum(nbytes for _, _, nbytes, _ in group)
            wire_nbytes = group[0][2] if shared_payload else logical
            link = self.interconnect.link(src_pe, dst_pe)
            start, arrival = link.reserve(now, wire_nbytes)
            self._record(
                f"{group_key}->PE{dst_pe}",
                src_pe,
                dst_pe,
                wire_nbytes,
                requested=now,
                started=start,
                arrived=arrival,
                contention=start - now,
                kind="data",
            )
            self._account_collective(1, len(group), logical, wire_nbytes)
            delivers = [deliver for _, _, _, deliver in group]
            if arrival <= self.sim.now:
                self.fast_path_deliveries += 1
                for deliver in delivers:
                    deliver()
                self.waitset.wake()
                continue

            def dispatch_all(delivers=delivers) -> None:
                for deliver in delivers:
                    deliver()

            self._schedule_delivery(
                self.sim, arrival, dispatch_all, ("data", group_key)
            )

    def capture_state(self, now: int) -> tuple:
        """Steady-state hash contribution (links are captured separately)."""
        return ()


class SharedBusTransport(_TransportStats):
    """One bus for everything, FCFS arbitration.

    Each transfer pays ``arbitration_cycles`` on top of the link cost
    and occupies the bus exclusively; concurrent requests queue in
    arrival order (ties broken deterministically by request sequence).
    """

    def __init__(
        self,
        sim: Simulator,
        spec: Optional[LinkSpec] = None,
        arbitration_cycles: int = 2,
        observer=None,
    ) -> None:
        if arbitration_cycles < 0:
            raise ValueError("arbitration_cycles must be >= 0")
        self.sim = sim
        self.spec = spec or LinkSpec()
        self.arbitration_cycles = arbitration_cycles
        self.busy_until = 0
        self._init_stats(observer)

    def send(
        self,
        channel_key: Hashable,
        src_pe: int,
        dst_pe: int,
        nbytes: int,
        now: int,
        deliver: Callable[[], None],
        kind: str = "data",
    ) -> None:
        contention = max(0, self.busy_until - now)
        start = max(now, self.busy_until) + self.arbitration_cycles
        arrival = start + self.spec.transfer_cycles(nbytes)
        self.busy_until = arrival
        self._record(
            channel_key,
            src_pe,
            dst_pe,
            nbytes,
            requested=now,
            started=start,
            arrived=arrival,
            contention=contention,
            kind=kind,
        )
        self._schedule_delivery(self.sim, arrival, deliver, (kind, channel_key))

    def send_collective(
        self,
        group_key: Hashable,
        src_pe: int,
        parts: Sequence[Tuple[Hashable, int, int, Callable[[], None]]],
        now: int,
        shared_payload: bool = True,
    ) -> None:
        """One collective firing: one bus transaction for the whole fan-out.

        A bus is a natural broadcast medium — every consumer snoops the
        same transaction, so the payload crosses the wire once (the
        largest branch for a shared payload, the chunk total for a
        scatter) regardless of how many PEs listen.
        """
        logical = sum(nbytes for _, _, nbytes, _ in parts)
        wire_nbytes = (
            max(nbytes for _, _, nbytes, _ in parts)
            if shared_payload
            else logical
        )
        contention = max(0, self.busy_until - now)
        start = max(now, self.busy_until) + self.arbitration_cycles
        arrival = start + self.spec.transfer_cycles(wire_nbytes)
        self.busy_until = arrival
        self._record(
            str(group_key),
            src_pe,
            parts[0][1],
            wire_nbytes,
            requested=now,
            started=start,
            arrived=arrival,
            contention=contention,
            kind="data",
        )
        self._account_collective(1, len(parts), logical, wire_nbytes)
        delivers = [deliver for _, _, _, deliver in parts]

        def dispatch_all() -> None:
            for deliver in delivers:
                deliver()

        self._schedule_delivery(
            self.sim, arrival, dispatch_all, ("data", group_key)
        )

    def capture_state(self, now: int) -> tuple:
        """Steady-state hash contribution: remaining bus occupancy."""
        return (max(0, self.busy_until - now),)


class OrderedBusTransport(_TransportStats):
    """Ordered-transaction bus: the grant sequence is fixed offline.

    ``order`` is the cyclic sequence of channel keys in which transfers
    are granted (one entry per message per graph iteration, derived from
    the schedule).  A transfer request for the key at the head of the
    sequence is granted as soon as the bus frees — with **zero**
    arbitration cost, that is the model's selling point; a request out
    of turn waits until every earlier slot has been used.
    """

    def __init__(
        self,
        sim: Simulator,
        order: Sequence[Hashable],
        spec: Optional[LinkSpec] = None,
        observer=None,
    ) -> None:
        if not order:
            raise ValueError("transaction order must be non-empty")
        self.sim = sim
        self.order = list(order)
        self.spec = spec or LinkSpec()
        self.busy_until = 0
        self._cursor = 0
        self._pending: Dict[Hashable, Deque[Tuple]] = {}
        self._init_stats(observer)

    def send(
        self,
        channel_key: Hashable,
        src_pe: int,
        dst_pe: int,
        nbytes: int,
        now: int,
        deliver: Callable[[], None],
        kind: str = "data",
    ) -> None:
        if channel_key not in self.order:
            raise ValueError(
                f"channel {channel_key!r} is not in the compile-time "
                f"transaction order"
            )
        self._pending.setdefault(channel_key, deque()).append(
            (nbytes, deliver, now, src_pe, dst_pe, kind)
        )
        self._drain(now)

    def send_collective(
        self,
        group_key: Hashable,
        src_pe: int,
        parts: Sequence[Tuple[Hashable, int, int, Callable[[], None]]],
        now: int,
        shared_payload: bool = True,
    ) -> None:
        """One collective firing: one compile-time transaction slot.

        The whole fan-out occupies a single slot of the ordered sequence
        (the slot is keyed by the collective group, not by a branch), so
        the grant schedule stays one entry per send firing.
        """
        if group_key not in self.order:
            raise ValueError(
                f"collective group {group_key!r} is not in the "
                f"compile-time transaction order"
            )
        logical = sum(nbytes for _, _, nbytes, _ in parts)
        wire_nbytes = (
            max(nbytes for _, _, nbytes, _ in parts)
            if shared_payload
            else logical
        )
        self._account_collective(1, len(parts), logical, wire_nbytes)
        delivers = [deliver for _, _, _, deliver in parts]

        def dispatch_all() -> None:
            for deliver in delivers:
                deliver()

        self._pending.setdefault(group_key, deque()).append(
            (wire_nbytes, dispatch_all, now, src_pe, parts[0][1], "data")
        )
        self._drain(now)

    def _drain(self, now: int) -> None:
        while True:
            key = self.order[self._cursor]
            queue = self._pending.get(key)
            if not queue:
                return
            nbytes, deliver, requested, src_pe, dst_pe, kind = queue.popleft()
            contention = max(0, self.busy_until - now)
            start = max(now, self.busy_until)  # no arbitration cost
            arrival = start + self.spec.transfer_cycles(nbytes)
            self.busy_until = arrival
            self._record(
                key,
                src_pe,
                dst_pe,
                nbytes,
                requested=requested,
                started=start,
                arrived=arrival,
                contention=contention,
                kind=kind,
            )
            self._schedule_delivery(self.sim, arrival, deliver, (kind, key))
            self._cursor = (self._cursor + 1) % len(self.order)

    def capture_state(self, now: int) -> tuple:
        """Steady-state hash contribution: cursor, occupancy, queued sends."""
        pending = tuple(
            (
                str(key),
                tuple(
                    (nbytes, requested - now, kind)
                    for nbytes, _deliver, requested, _src, _dst, kind in queue
                ),
            )
            for key, queue in sorted(self._pending.items(), key=lambda i: str(i[0]))
            if queue
        )
        return (self._cursor, max(0, self.busy_until - now), pending)
