"""Array-backed analysis engine for timed graphs (the §3/§4 fast path).

Every exact analysis the SPI methodology runs per graph — maximum cycle
mean, redundancy detection, resynchronization scoring — used to walk the
:class:`~repro.mapping.timed_graph.TimedGraph` object graph with
superlinear pure-Python loops.  This module is the shared fast engine
underneath them:

* :class:`GraphArrays` — a CSR-style numpy view of a timed graph
  (vertex execution times, edge endpoint/delay arrays, out-edges grouped
  by source vertex) built once per analysis;
* :func:`strongly_connected_components` — iterative Tarjan over the CSR
  arrays;
* :func:`howard_mcm` — Howard's policy iteration for the maximum
  cycle-ratio problem ``max over cycles C of sum(t(src)) / sum(delay)``.
  Unlike Lawler's binary search (~50 Bellman–Ford probes of O(V·E)
  each), Howard runs a handful of O(V+E) policy-evaluation sweeps and
  terminates with an **exact** answer: the value is recomputed from the
  critical cycle's integer execution-time and delay sums, so there is no
  search tolerance, and the critical cycle itself is returned as a
  witness;
* :class:`MinDelayOracle` — the all-pairs minimum path-delay table
  maintained *incrementally* under single-edge removal and insertion
  (affected-pairs repair via Dijkstra from the sources whose rows can
  change, instead of a full Floyd–Warshall per mutation), feeding the
  :meth:`~repro.mapping.timed_graph.TimedGraph.min_delay_paths` memo so
  redundancy checks stay O(1) lookups during a pruning fixpoint.

Precondition shared by the MCM entry points: the caller has already
ruled out zero-total-delay cycles (deadlock → the MCM is ``math.inf``
and there is no finite ratio to iterate towards).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mapping.timed_graph import TimedGraph

__all__ = [
    "GraphArrays",
    "MinDelayOracle",
    "howard_mcm",
    "strongly_connected_components",
]


class GraphArrays:
    """CSR-style numpy adjacency view of a :class:`TimedGraph`.

    ``edge_src``/``edge_snk``/``edge_delay`` are parallel int64 arrays in
    the graph's edge order (so edge ids are positions), ``cycles`` holds
    per-vertex execution times, and ``csr_edges[csr_start[u]:
    csr_start[u+1]]`` lists the out-edge ids of vertex ``u`` in edge-id
    order — the deterministic iteration order every algorithm here uses.
    """

    def __init__(self, graph: TimedGraph) -> None:
        vertices = graph.vertices
        self.names: List[str] = [v.name for v in vertices]
        self.index: Dict[str, int] = {
            name: i for i, name in enumerate(self.names)
        }
        self.n = len(self.names)
        self.cycles = np.fromiter(
            (v.cycles for v in vertices), dtype=np.int64, count=self.n
        )
        edges = graph.edges
        self.m = len(edges)
        self.edge_src = np.fromiter(
            (self.index[e.src] for e in edges), dtype=np.int64, count=self.m
        )
        self.edge_snk = np.fromiter(
            (self.index[e.snk] for e in edges), dtype=np.int64, count=self.m
        )
        self.edge_delay = np.fromiter(
            (e.delay for e in edges), dtype=np.int64, count=self.m
        )
        # Group out-edges by source; stable sort keeps edge-id order
        # within each source bucket.
        order = np.argsort(self.edge_src, kind="stable")
        self.csr_edges = order
        counts = np.bincount(self.edge_src, minlength=self.n)
        self.csr_start = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(np.int64)

    def out_edge_ids(self, u: int) -> np.ndarray:
        return self.csr_edges[self.csr_start[u] : self.csr_start[u + 1]]


def strongly_connected_components(arrays: GraphArrays) -> List[List[int]]:
    """Iterative Tarjan over the CSR arrays (vertex-id components)."""
    n = arrays.n
    snk = arrays.edge_snk
    csr_start = arrays.csr_start
    csr_edges = arrays.csr_edges
    ids = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    ptr = [0] * n
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0
    for root in range(n):
        if ids[root] != -1:
            continue
        work = [root]
        while work:
            u = work[-1]
            if ids[u] == -1:
                ids[u] = low[u] = counter
                counter += 1
                stack.append(u)
                on_stack[u] = True
            recursed = False
            degree = int(csr_start[u + 1] - csr_start[u])
            while ptr[u] < degree:
                eid = int(csr_edges[csr_start[u] + ptr[u]])
                ptr[u] += 1
                x = int(snk[eid])
                if ids[x] == -1:
                    work.append(x)
                    recursed = True
                    break
                if on_stack[x] and ids[x] < low[u]:
                    low[u] = ids[x]
            if recursed:
                continue
            work.pop()
            if low[u] == ids[u]:
                component = []
                while True:
                    x = stack.pop()
                    on_stack[x] = False
                    component.append(x)
                    if x == u:
                        break
                components.append(component)
            if work:
                parent = work[-1]
                if low[u] < low[parent]:
                    low[parent] = low[u]
    return components


def _evaluate_policy(
    n: int,
    pol_snk: List[int],
    pol_w: List[int],
    pol_tau: List[int],
    pol_eid: List[int],
) -> Tuple[List[float], List[float], List[Tuple[int, int, List[int]]]]:
    """Value determination for one policy (a functional graph).

    Returns per-vertex cycle ratios ``eta``, bias values ``v`` and the
    list of policy cycles as ``(w_sum, tau_sum, edge ids)`` with exact
    integer sums.  Every vertex's policy path leads to exactly one
    cycle; its ``eta`` is that cycle's ratio and its bias solves
    ``v[u] = w(u) - eta[u] * tau(u) + v[succ(u)]`` with one cycle vertex
    anchored at 0.
    """
    color = [0] * n  # 0 unvisited, 1 on current path, 2 finished
    eta = [0.0] * n
    bias = [0.0] * n
    cycles: List[Tuple[int, int, List[int]]] = []
    for start in range(n):
        if color[start]:
            continue
        path: List[int] = []
        u = start
        while color[u] == 0:
            color[u] = 1
            path.append(u)
            u = pol_snk[u]
        if color[u] == 1:
            # Found a new policy cycle: path[k:] where path[k] == u.
            k = path.index(u)
            cyc = path[k:]
            w_sum = sum(pol_w[node] for node in cyc)
            tau_sum = sum(pol_tau[node] for node in cyc)
            ratio = w_sum / tau_sum
            cycles.append((w_sum, tau_sum, [pol_eid[node] for node in cyc]))
            # Anchor the entry vertex and unroll the recurrence backwards
            # around the cycle (the full loop is consistent because
            # sum(w - ratio * tau) is 0 around it by construction).
            bias[cyc[0]] = 0.0
            for idx in range(len(cyc) - 1, 0, -1):
                node = cyc[idx]
                succ = pol_snk[node]
                bias[node] = (
                    pol_w[node] - ratio * pol_tau[node] + bias[succ]
                )
            for node in cyc:
                eta[node] = ratio
                color[node] = 2
        # Unwind the acyclic suffix (and, after a cycle, the prefix that
        # leads into it) in reverse: each vertex's successor is done.
        for node in reversed(path):
            if color[node] == 2:
                continue
            succ = pol_snk[node]
            eta[node] = eta[succ]
            bias[node] = pol_w[node] - eta[node] * pol_tau[node] + bias[succ]
            color[node] = 2
    return eta, bias, cycles


def _howard_component(
    arrays: GraphArrays,
    component: List[int],
    component_edges: List[int],
) -> Optional[Tuple[int, int, List[int]]]:
    """Maximum cycle ratio of one strongly connected component.

    Returns ``(w_sum, tau_sum, edge ids)`` of a critical cycle, or
    ``None`` when the component carries no cycle (single vertex without
    a self-loop).
    """
    local = {v: i for i, v in enumerate(component)}
    n = len(component)
    out: List[List[Tuple[int, int, int, int]]] = [[] for _ in range(n)]
    for eid in sorted(component_edges):
        src = int(arrays.edge_src[eid])
        out[local[src]].append(
            (
                int(arrays.cycles[src]),
                int(arrays.edge_delay[eid]),
                local[int(arrays.edge_snk[eid])],
                eid,
            )
        )
    if any(not edges for edges in out):
        # Only possible for a trivial SCC: no cycle through here.
        return None

    # Edge arrays of the component, for the vectorized improvement scan.
    ce_w: List[int] = []
    ce_tau: List[int] = []
    ce_src: List[int] = []
    ce_snk: List[int] = []
    ce_eid: List[int] = []
    for u, edges in enumerate(out):
        for w, tau, x, eid in edges:
            ce_w.append(w)
            ce_tau.append(tau)
            ce_src.append(u)
            ce_snk.append(x)
            ce_eid.append(eid)
    ce_w_arr = np.array(ce_w, dtype=np.float64)
    ce_tau_arr = np.array(ce_tau, dtype=np.float64)
    ce_src_arr = np.array(ce_src, dtype=np.int64)
    ce_snk_arr = np.array(ce_snk, dtype=np.int64)

    # Initial policy: the lowest-id out-edge of every vertex.
    pol_w = [out[u][0][0] for u in range(n)]
    pol_tau = [out[u][0][1] for u in range(n)]
    pol_snk = [out[u][0][2] for u in range(n)]
    pol_eid = [out[u][0][3] for u in range(n)]

    eps = 1e-10 * (1.0 + float(sum(pol_w)) + float(arrays.cycles.sum()))
    best: Optional[Tuple[int, int, List[int]]] = None
    # Policy iteration converges in far fewer rounds; the cap is a
    # backstop against float-noise oscillation, after which the current
    # (still valid, possibly sub-optimal) policy cycle is returned.
    for _ in range(4 * (n + len(ce_w)) + 16):
        eta, bias, cycles = _evaluate_policy(
            n, pol_snk, pol_w, pol_tau, pol_eid
        )
        best = max(cycles, key=lambda c: (c[0] / c[1], -len(c[2])))
        eta_arr = np.array(eta)
        bias_arr = np.array(bias)

        improved = False
        # Phase 1 — ratio improvement: point u at a successor whose
        # policy cycle has a strictly larger ratio.
        gain = eta_arr[ce_snk_arr] - eta_arr[ce_src_arr]
        candidates = np.nonzero(gain > eps)[0]
        if candidates.size:
            chosen: Dict[int, Tuple[float, int]] = {}
            for k in candidates.tolist():
                u = ce_src[k]
                key = (eta[ce_snk[k]], -ce_eid[k])
                if u not in chosen or key > chosen[u]:
                    chosen[u] = key
                    pol_w[u] = ce_w[k]
                    pol_tau[u] = ce_tau[k]
                    pol_snk[u] = ce_snk[k]
                    pol_eid[u] = ce_eid[k]
            improved = True
        else:
            # Phase 2 — bias improvement at the fixed ratio.
            slack = (
                ce_w_arr
                - eta_arr[ce_src_arr] * ce_tau_arr
                + bias_arr[ce_snk_arr]
                - bias_arr[ce_src_arr]
            )
            same_ratio = eta_arr[ce_snk_arr] >= eta_arr[ce_src_arr] - eps
            candidates = np.nonzero((slack > eps) & same_ratio)[0]
            if candidates.size:
                chosen2: Dict[int, Tuple[float, int]] = {}
                for k in candidates.tolist():
                    u = ce_src[k]
                    key = (float(slack[k]), -ce_eid[k])
                    if u not in chosen2 or key > chosen2[u]:
                        chosen2[u] = key
                        pol_w[u] = ce_w[k]
                        pol_tau[u] = ce_tau[k]
                        pol_snk[u] = ce_snk[k]
                        pol_eid[u] = ce_eid[k]
                improved = True
        if not improved:
            break
    assert best is not None
    return best


def howard_mcm(
    arrays: GraphArrays,
) -> Tuple[float, int, int, List[int]]:
    """Exact maximum cycle ratio of a timed graph, with witness.

    Precondition: no zero-total-delay cycle (the caller returns
    ``math.inf`` for those before building arrays).  Returns
    ``(value, total_cycles, total_delay, edge ids of a critical cycle)``;
    acyclic graphs yield ``(0.0, 0, 0, [])``.  The value is computed as
    the float division of the witness cycle's exact integer sums, so it
    carries no search tolerance.
    """
    if arrays.m == 0:
        return 0.0, 0, 0, []
    components = strongly_connected_components(arrays)
    component_of = [0] * arrays.n
    for cid, component in enumerate(components):
        for v in component:
            component_of[v] = cid
    buckets: Dict[int, List[int]] = {}
    for eid in range(arrays.m):
        src = int(arrays.edge_src[eid])
        if component_of[src] == component_of[int(arrays.edge_snk[eid])]:
            buckets.setdefault(component_of[src], []).append(eid)
    best: Optional[Tuple[int, int, List[int]]] = None
    for cid, edge_ids in sorted(buckets.items()):
        result = _howard_component(arrays, components[cid], edge_ids)
        if result is None:
            continue
        if best is None or result[0] * best[1] > best[0] * result[1]:
            best = result
    if best is None:
        return 0.0, 0, 0, []
    w_sum, tau_sum, edge_ids = best
    return w_sum / tau_sum, w_sum, tau_sum, edge_ids


class MinDelayOracle:
    """All-pairs minimum path delay under single-edge mutation.

    Wraps a :class:`TimedGraph`: route ``remove_edge`` / ``add_edge``
    through the oracle and :meth:`table` stays exactly equal to
    ``graph.min_delay_paths()`` — at the cost of an affected-pairs
    repair instead of a full Floyd–Warshall per mutation.

    * **Removal** of ``(u, v, d)`` can only change rows of sources whose
      shortest path to ``v`` went through the edge; by the subpath
      property those are exactly the sources with
      ``dist[i][v] == dist[i][u] + d``.  Only those rows are recomputed
      (Dijkstra, non-negative integer delays).
    * **Insertion** relaxes every pair once through the new edge
      (``dist[i][j] = min(dist[i][j], dist[i][u] + d + dist[v][j])``) —
      sound because a minimum-delay walk never needs the new edge twice
      (delays are non-negative, so excising the implied cycle never
      hurts).

    After every repair the table is re-installed as the graph's
    ``min_delay_paths`` memo, so interleaved redundancy checks cost a
    dictionary lookup, never a recompute.
    """

    def __init__(self, graph: TimedGraph) -> None:
        self.graph = graph
        self._dist = graph.min_delay_paths()

    def table(self) -> Dict[str, Dict[str, int]]:
        return self._dist

    def _adjacency(self) -> Dict[str, List[Tuple[str, int]]]:
        adjacency: Dict[str, Dict[str, int]] = {
            v.name: {} for v in self.graph.vertices
        }
        for edge in self.graph.edges:
            current = adjacency[edge.src].get(edge.snk)
            if current is None or edge.delay < current:
                adjacency[edge.src][edge.snk] = edge.delay
        return {
            name: sorted(row.items()) for name, row in adjacency.items()
        }

    @staticmethod
    def _dijkstra_row(
        source: str, adjacency: Dict[str, List[Tuple[str, int]]]
    ) -> Dict[str, int]:
        dist = {source: 0}
        heap = [(0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, d):
                continue
            for x, w in adjacency[u]:
                nd = d + w
                known = dist.get(x)
                if known is None or nd < known:
                    dist[x] = nd
                    heapq.heappush(heap, (nd, x))
        return dist

    def _install(self) -> None:
        self.graph._install_min_delay_cache(self._dist)

    def remove_edge(self, edge) -> None:
        """Remove ``edge`` from the graph and repair the table."""
        self.graph.remove_edge(edge)
        u, v, d = edge.src, edge.snk, edge.delay
        dist = self._dist
        affected = [
            i
            for i, row in dist.items()
            if row.get(u) is not None and row.get(v) == row[u] + d
        ]
        if affected:
            adjacency = self._adjacency()
            for i in affected:
                dist[i] = self._dijkstra_row(i, adjacency)
        self._install()

    def add_edge(self, edge) -> None:
        """Insert ``edge`` into the graph and repair the table."""
        self.graph.add_edge(edge)
        u, v, d = edge.src, edge.snk, edge.delay
        dist = self._dist
        vrow = dist[v]
        for row in dist.values():
            diu = row.get(u)
            if diu is None:
                continue
            base = diu + d
            for j, dvj in vrow.items():
                nd = base + dvj
                current = row.get(j)
                if current is None or nd < current:
                    row[j] = nd
        self._install()
