"""Pipelining (retiming by delay insertion) for mapped dataflow graphs.

A straight chain mapped across PEs cannot overlap iterations: the
synchronization cycle through all stages carries a single delay, so the
self-timed period equals the whole chain (MCM = sum of stage times).
Inserting delay tokens on stage-boundary edges — at the price of
pipeline latency — breaks the long cycle into per-stage cycles and lets
the period approach the slowest stage.  This is the classic SDF
pipelining/retiming transformation; the paper's self-timed framework
inherits its benefit automatically because the added delays show up in
the IPC/synchronization graphs.

Two entry points:

* :func:`insert_pipeline_delays` — explicit: add ``depth`` delay tokens
  on the named edges;
* :func:`auto_pipeline` — heuristic: split the actors of an acyclic
  graph into ``stages`` load-balanced groups along the topological
  order and put one delay on every edge crossing a group boundary.

Both return a transformed *copy*; the original graph is untouched.
Initial tokens for the inserted delays default to ``None`` placeholders
(structural warm-up), or values produced by a user ``priming`` callback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

from repro.dataflow.graph import DataflowGraph, Edge, GraphError
from repro.dataflow.sdf import repetitions_vector

__all__ = [
    "PipeliningResult",
    "insert_pipeline_delays",
    "auto_pipeline",
    "stage_assignment",
]


@dataclass
class PipeliningResult:
    """Outcome of a pipelining transformation."""

    graph: DataflowGraph
    #: edge name -> delay tokens added
    added_delays: Dict[str, int] = field(default_factory=dict)
    #: actor name -> pipeline stage index (auto mode only)
    stages: Optional[Dict[str, int]] = None

    @property
    def latency_iterations(self) -> int:
        """Extra end-to-end latency in graph iterations (max cut depth)."""
        return max(self.added_delays.values(), default=0)


def insert_pipeline_delays(
    graph: DataflowGraph,
    edge_names: Sequence[str],
    depth: int = 1,
    priming: Optional[Callable[[Edge, int], list]] = None,
) -> PipeliningResult:
    """Add ``depth`` iterations worth of delay tokens on the named edges.

    One iteration of delay on edge ``e`` is ``cons(e) * q(snk(e))``
    tokens — the amount one full graph iteration consumes — so the
    consumer's alignment shifts by whole iterations and the graph stays
    rate-consistent.  ``priming(edge, count)`` may supply concrete
    initial token values (default: ``None`` placeholders).
    """
    if depth < 1:
        raise GraphError("pipeline depth must be >= 1")
    names = list(edge_names)
    if not names:
        raise GraphError("no edges to pipeline")
    known = {e.name for e in graph.edges}
    missing = [n for n in names if n not in known]
    if missing:
        raise GraphError(f"unknown edges: {missing}")

    reps = repetitions_vector(graph)
    clone = graph.copy_structure(f"{graph.name}_pipelined")
    added: Dict[str, int] = {}
    for orig_edge, new_edge in zip(graph.edges, clone.edges):
        if new_edge.name not in names:
            continue
        tokens_per_iteration = (
            orig_edge.cons_rate * reps[orig_edge.snk_actor.name]
        )
        extra = depth * tokens_per_iteration
        existing = (
            list(new_edge.initial_tokens)
            if new_edge.initial_tokens is not None
            else [None] * new_edge.delay
        )
        primed = (
            priming(orig_edge, extra) if priming is not None else [None] * extra
        )
        if len(primed) != extra:
            raise GraphError(
                f"priming for {new_edge.name} returned {len(primed)} "
                f"tokens, need {extra}"
            )
        new_edge.delay += extra
        new_edge.initial_tokens = primed + existing
        added[new_edge.name] = extra
    return PipeliningResult(graph=clone, added_delays=added)


def stage_assignment(graph: DataflowGraph, stages: int) -> Dict[str, int]:
    """Split actors into ``stages`` balanced groups along topo order.

    Greedy: walk the topological order accumulating per-iteration work
    (``cycles x repetitions``); start a new stage whenever the current
    one reaches the ideal share (always leaving enough actors for the
    remaining stages).
    """
    if stages < 2:
        raise GraphError("need at least 2 pipeline stages")
    order = graph.topological_order(ignore_delay_edges=True)
    if stages > len(order):
        raise GraphError(
            f"cannot split {len(order)} actors into {stages} stages"
        )
    reps = repetitions_vector(graph)
    work = {
        a.name: a.execution_cycles(0) * reps[a.name] for a in order
    }
    total = sum(work.values())
    ideal = total / stages
    assignment: Dict[str, int] = {}
    stage = 0
    accumulated = 0
    for position, actor in enumerate(order):
        assignment[actor.name] = stage
        accumulated += work[actor.name]
        actors_left = len(order) - position - 1
        stages_left = stages - stage - 1
        if stage < stages - 1 and (
            accumulated >= ideal or actors_left == stages_left
        ):
            stage += 1
            accumulated = 0
    return assignment


def auto_pipeline(
    graph: DataflowGraph,
    stages: int,
    priming: Optional[Callable[[Edge, int], list]] = None,
) -> PipeliningResult:
    """Load-balance the graph into ``stages`` and cut every boundary edge.

    Only meaningful for graphs whose zero-delay structure is acyclic
    (``topological_order`` raises otherwise).  Every edge from a lower
    stage to a higher one receives one iteration of delay; the result's
    ``stages`` mapping doubles as a natural PE assignment.
    """
    assignment = stage_assignment(graph, stages)
    crossing = [
        e.name
        for e in graph.edges
        if assignment[e.src_actor.name] < assignment[e.snk_actor.name]
    ]
    if not crossing:
        raise GraphError(
            "stage assignment produced no crossing edges; graph too small"
        )
    result = insert_pipeline_delays(graph, crossing, depth=1, priming=priming)
    result.stages = assignment
    return result
