"""Maximum cycle mean and self-timed timing analysis of timed graphs.

The asymptotic iteration period of a self-timed implementation is the
**maximum cycle mean** (MCM) of its synchronization graph:

    lambda* = max over directed cycles C of
              (sum of task execution times on C) / (sum of edge delays on C)

A cycle with zero total delay means deadlock (infinite period).  Edge
delays play the role of "tokens" in the ratio, so this is the general
cost-to-time ratio problem.  Two solvers are provided:

* ``algorithm="howard"`` (default) — Howard's policy iteration over the
  array-backed engine (:mod:`repro.mapping.graph_arrays`).  It converges
  in a handful of O(V+E) value-determination sweeps and yields an
  **exact** :class:`McmResult` — the value is the float quotient of the
  critical cycle's integer execution-time and delay sums, and the cycle
  itself is returned as a witness;
* ``algorithm="lawler"`` — the original Lawler binary search with a
  Bellman–Ford positive-cycle test (~50 probes of O(V·E)), kept for A/B
  comparison and property testing.  It carries a search ``tolerance``
  and produces no witness.

Set ``REPRO_ANALYSIS_ENGINE=legacy`` in the environment to flip the
default back to the legacy solver (and the legacy engines of the other
analysis stages) without touching call sites.

An exact simulation-based cross-check (:func:`simulate_selftimed`)
executes eq. 3 directly; its default ``engine="vectorized"`` sweeps each
iteration with numpy over level-grouped edges, while ``engine="python"``
keeps the original per-edge dictionary loop.
"""

from __future__ import annotations

import heapq
import math
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mapping.graph_arrays import GraphArrays, howard_mcm
from repro.mapping.timed_graph import TimedGraph

__all__ = [
    "McmResult",
    "maximum_cycle_mean",
    "maximum_cycle_mean_result",
    "simulate_selftimed",
    "zero_delay_topological_order",
    "SelfTimedTrace",
]


def _legacy_engine() -> bool:
    """True when the environment pins the pre-array analysis engines."""
    value = os.environ.get("REPRO_ANALYSIS_ENGINE", "")
    return value.strip().lower() == "legacy"


@dataclass(frozen=True)
class McmResult:
    """Exact MCM with its critical-cycle witness.

    ``cycle`` lists the task names along one critical cycle (in edge
    succession order; empty for acyclic graphs or the witness-less
    Lawler solver), and ``total_cycles`` / ``total_delay`` are the
    integer sums whose quotient is ``value`` — for a deadlock witness
    ``total_delay`` is 0 and ``value`` is ``math.inf``.
    """

    value: float
    cycle: Tuple[str, ...] = ()
    total_cycles: int = 0
    total_delay: int = 0
    algorithm: str = "howard"

    @property
    def is_deadlock(self) -> bool:
        return math.isinf(self.value)

    def to_dict(self) -> Dict[str, object]:
        return {
            "value": self.value,
            "cycle": list(self.cycle),
            "total_cycles": self.total_cycles,
            "total_delay": self.total_delay,
            "algorithm": self.algorithm,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "McmResult":
        return cls(
            value=float(payload["value"]),
            cycle=tuple(payload.get("cycle", ())),
            total_cycles=int(payload.get("total_cycles", 0)),
            total_delay=int(payload.get("total_delay", 0)),
            algorithm=str(payload.get("algorithm", "howard")),
        )


def _has_cycle_with_mean_at_least(graph: TimedGraph, lam: float) -> bool:
    """Bellman–Ford test: exists cycle with sum(t - lam*delay) >= 0?

    Uses weights w(e) = t(src(e)) - lam*delay(e) and looks for a
    non-negative-weight cycle via longest-path relaxation.  A tiny
    epsilon keeps exactly-critical cycles on the "yes" side.
    """
    names = [v.name for v in graph.vertices]
    if not names:
        return False
    t = {v.name: float(v.cycles) for v in graph.vertices}
    # Longest-path Bellman-Ford from a virtual super-source.
    dist = {name: 0.0 for name in names}
    eps = 1e-12
    for iteration in range(len(names)):
        changed = False
        for edge in graph.edges:
            weight = t[edge.src] - lam * edge.delay
            candidate = dist[edge.src] + weight
            if candidate > dist[edge.snk] + eps:
                dist[edge.snk] = candidate
                changed = True
        if not changed:
            return False
    # Still relaxing after |V| passes -> positive (>=0 after epsilon) cycle.
    for edge in graph.edges:
        weight = t[edge.src] - lam * edge.delay
        if dist[edge.src] + weight > dist[edge.snk] + eps:
            return True
    return False


def _lawler_mcm(graph: TimedGraph, tolerance: float) -> float:
    """The original binary-search solver (zero-delay cycles pre-excluded)."""
    total = sum(v.cycles for v in graph.vertices)
    if total == 0 or not graph.edges:
        return 0.0
    low, high = 0.0, float(total) + 1.0
    if not _has_cycle_with_mean_at_least(graph, low):
        return 0.0  # acyclic
    while high - low > max(tolerance, tolerance * high):
        mid = (low + high) / 2.0
        if _has_cycle_with_mean_at_least(graph, mid):
            low = mid
        else:
            high = mid
    return low


def _zero_delay_cycle(graph: TimedGraph) -> List[str]:
    """Vertices of one zero-total-delay cycle (graph known to have one)."""
    adjacency: Dict[str, List[str]] = {v.name: [] for v in graph.vertices}
    for edge in graph.edges:
        if edge.delay == 0:
            adjacency[edge.src].append(edge.snk)
    state: Dict[str, int] = {}
    parent: Dict[str, str] = {}
    for root in adjacency:
        if state.get(root, 0):
            continue
        stack = [(root, iter(adjacency[root]))]
        state[root] = 1
        while stack:
            node, successors = stack[-1]
            advanced = False
            for nxt in successors:
                mark = state.get(nxt, 0)
                if mark == 1:
                    # Back edge: unwind the cycle nxt -> ... -> node.
                    cycle = [node]
                    walk = node
                    while walk != nxt:
                        walk = parent[walk]
                        cycle.append(walk)
                    cycle.reverse()
                    return cycle
                if mark == 0:
                    parent[nxt] = node
                    state[nxt] = 1
                    stack.append((nxt, iter(adjacency[nxt])))
                    advanced = True
                    break
            if not advanced:
                state[node] = 2
                stack.pop()
    raise AssertionError("no zero-delay cycle found")  # pragma: no cover


def maximum_cycle_mean_result(
    graph: TimedGraph,
    tolerance: float = 1e-7,
    algorithm: Optional[str] = None,
) -> McmResult:
    """MCM of ``graph`` with a critical-cycle witness.

    ``algorithm`` is ``"howard"`` (exact, witnessed — the default) or
    ``"lawler"`` (legacy binary search, witness-less); ``None`` follows
    the ``REPRO_ANALYSIS_ENGINE`` environment default.  Deadlocked
    graphs return ``math.inf`` with a zero-delay cycle as the witness;
    acyclic graphs return 0.0.
    """
    if algorithm is None:
        algorithm = "lawler" if _legacy_engine() else "howard"
    if algorithm not in ("howard", "lawler"):
        raise ValueError(f"unknown MCM algorithm {algorithm!r}")
    if graph.has_zero_delay_cycle():
        cycle = _zero_delay_cycle(graph)
        return McmResult(
            value=math.inf,
            cycle=tuple(cycle),
            total_cycles=sum(graph.vertex(name).cycles for name in cycle),
            total_delay=0,
            algorithm=algorithm,
        )
    if algorithm == "lawler":
        return McmResult(
            value=_lawler_mcm(graph, tolerance), algorithm="lawler"
        )
    if not graph.edges:
        return McmResult(value=0.0)
    arrays = GraphArrays(graph)
    value, total_cycles, total_delay, edge_ids = howard_mcm(arrays)
    cycle = tuple(
        arrays.names[int(arrays.edge_src[eid])] for eid in edge_ids
    )
    return McmResult(
        value=value,
        cycle=cycle,
        total_cycles=total_cycles,
        total_delay=total_delay,
    )


def maximum_cycle_mean(
    graph: TimedGraph,
    tolerance: float = 1e-7,
    algorithm: Optional[str] = None,
) -> float:
    """MCM of ``graph`` in cycles per iteration.

    Returns ``math.inf`` when a zero-delay cycle exists (deadlock), and
    ``0.0`` for acyclic graphs (no throughput constraint).  See
    :func:`maximum_cycle_mean_result` for the witnessed variant.
    """
    return maximum_cycle_mean_result(
        graph, tolerance=tolerance, algorithm=algorithm
    ).value


@dataclass
class SelfTimedTrace:
    """Start/end times of every task invocation over a simulated horizon."""

    start: Dict[Tuple[str, int], int]
    end: Dict[Tuple[str, int], int]
    iterations: int

    def makespan(self) -> int:
        return max(self.end.values(), default=0)

    def iteration_period(self, reference: str, settle: int = 2) -> float:
        """Average steady-state period of ``reference``'s start times.

        The first ``settle`` iterations are discarded as transient.
        """
        points = [
            self.start[(reference, k)]
            for k in range(self.iterations)
            if (reference, k) in self.start
        ]
        if len(points) <= settle + 1:
            raise ValueError(
                f"need more than {settle + 1} iterations to estimate the "
                f"period (have {len(points)})"
            )
        span = points[-1] - points[settle]
        return span / (len(points) - 1 - settle)


def zero_delay_topological_order(graph: TimedGraph) -> List[str]:
    """Deterministic topological order of the zero-delay subgraph.

    Kahn's algorithm with a min-heap ready queue keyed on task name —
    the unique lexicographically-smallest topological order, independent
    of vertex/edge insertion order.  Raises ``ValueError`` on a
    zero-delay cycle.
    """
    names = [v.name for v in graph.vertices]
    indegree = {name: 0 for name in names}
    zero_out: Dict[str, List[str]] = {name: [] for name in names}
    for edge in graph.edges:
        if edge.delay == 0:
            indegree[edge.snk] += 1
            zero_out[edge.src].append(edge.snk)
    ready = [name for name in names if indegree[name] == 0]
    heapq.heapify(ready)
    topo: List[str] = []
    while ready:
        node = heapq.heappop(ready)
        topo.append(node)
        for nxt in zero_out[node]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                heapq.heappush(ready, nxt)
    if len(topo) != len(names):
        raise ValueError(
            f"graph {graph.name!r} has a zero-delay cycle; self-timed "
            f"execution deadlocks"
        )
    return topo


def _simulate_python(
    graph: TimedGraph, iterations: int, topo: List[str]
) -> SelfTimedTrace:
    """The original per-edge dictionary sweep (legacy engine)."""
    names = [v.name for v in graph.vertices]
    t = {v.name: v.cycles for v in graph.vertices}
    in_edges = {name: graph.in_edges(name) for name in names}
    start: Dict[Tuple[str, int], int] = {}
    end: Dict[Tuple[str, int], int] = {}
    for k in range(iterations):
        for name in topo:
            ready_at = 0
            for edge in in_edges[name]:
                src_iter = k - edge.delay
                if src_iter < 0:
                    continue
                ready_at = max(ready_at, end[(edge.src, src_iter)])
            start[(name, k)] = ready_at
            end[(name, k)] = ready_at + t[name]
    return SelfTimedTrace(start=start, end=end, iterations=iterations)


def _simulate_vectorized(
    graph: TimedGraph, iterations: int, topo: List[str]
) -> SelfTimedTrace:
    """Numpy sweep: gather per delay group, then per zero-delay level.

    Within an iteration the zero-delay edges form a DAG; vertices are
    grouped into longest-path *levels* so each level's start times can
    be gathered in one vectorized max once all shallower levels are
    settled.  Delayed edges are grouped by delay and applied as one
    ``np.maximum.at`` per group.  All arithmetic is int64 max/add, so
    the results are bit-identical to the python engine.
    """
    position = {name: i for i, name in enumerate(topo)}
    n = len(topo)
    exec_times = np.fromiter(
        (graph.vertex(name).cycles for name in topo),
        dtype=np.int64,
        count=n,
    )
    delayed: Dict[int, List[Tuple[int, int]]] = {}
    for edge in graph.edges:
        if edge.delay:
            delayed.setdefault(edge.delay, []).append(
                (position[edge.src], position[edge.snk])
            )
    # Zero-delay levels: level(v) = 1 + max level of zero-delay preds.
    # Topo positions make every zero-delay edge go forward, so a single
    # pass over the edges sorted by source position settles all levels.
    zero_edges = sorted(
        (position[e.src], position[e.snk])
        for e in graph.edges
        if e.delay == 0
    )
    level = [0] * n
    for src, snk in zero_edges:
        if level[src] + 1 > level[snk]:
            level[snk] = level[src] + 1
    n_levels = max(level, default=0) + 1 if n else 0
    level_edges: List[Tuple[np.ndarray, np.ndarray]] = []
    by_level: Dict[int, List[Tuple[int, int]]] = {}
    for src, snk in zero_edges:
        by_level.setdefault(level[snk], []).append((src, snk))
    for lvl in range(n_levels):
        pairs = by_level.get(lvl, [])
        if pairs:
            level_edges.append(
                (
                    np.array([p[0] for p in pairs], dtype=np.int64),
                    np.array([p[1] for p in pairs], dtype=np.int64),
                )
            )
        else:
            level_edges.append((None, None))
    delay_groups = [
        (
            d,
            np.array([p[0] for p in pairs], dtype=np.int64),
            np.array([p[1] for p in pairs], dtype=np.int64),
        )
        for d, pairs in sorted(delayed.items())
    ]

    starts = np.zeros((iterations, n), dtype=np.int64)
    ends = np.zeros((iterations, n), dtype=np.int64)
    for k in range(iterations):
        ready = np.zeros(n, dtype=np.int64)
        for d, src_idx, snk_idx in delay_groups:
            if d > k:
                continue
            np.maximum.at(ready, snk_idx, ends[k - d, src_idx])
        for src_idx, snk_idx in level_edges:
            if src_idx is None:
                continue
            np.maximum.at(ready, snk_idx, ready[src_idx] + exec_times[src_idx])
        starts[k] = ready
        ends[k] = ready + exec_times

    start: Dict[Tuple[str, int], int] = {}
    end: Dict[Tuple[str, int], int] = {}
    start_rows = starts.tolist()
    end_rows = ends.tolist()
    for k in range(iterations):
        srow = start_rows[k]
        erow = end_rows[k]
        for i, name in enumerate(topo):
            start[(name, k)] = srow[i]
            end[(name, k)] = erow[i]
    return SelfTimedTrace(start=start, end=end, iterations=iterations)


def simulate_selftimed(
    graph: TimedGraph,
    iterations: int,
    engine: Optional[str] = None,
) -> SelfTimedTrace:
    """Execute the self-timed semantics of eq. 3 exactly.

    ``start(v, k) = max over in-edges e of end(src(e), k - delay(e))``
    (constraints reaching before iteration 0 are vacuous), and
    ``end(v, k) = start(v, k) + t(v)``.  Within one iteration the
    zero-delay edges form a DAG (checked), so a topological sweep per
    iteration suffices.  ``engine`` is ``"vectorized"`` (numpy sweep),
    ``"python"`` (the original loop), or ``"auto"`` (the default:
    vectorized once the graph is large enough for the numpy gathers to
    amortize their setup, python below that); all engines produce
    identical traces.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if engine is None:
        engine = "python" if _legacy_engine() else "auto"
    if engine == "auto":
        # numpy per-iteration gathers pay off once the per-iteration
        # work dwarfs their fixed setup; measured crossover ~500
        # vertices (see benchmarks/bench_analysis.py)
        engine = "vectorized" if len(graph.vertices) >= 500 else "python"
    if engine not in ("vectorized", "python"):
        raise ValueError(f"unknown simulation engine {engine!r}")
    topo = zero_delay_topological_order(graph)
    if engine == "python":
        return _simulate_python(graph, iterations, topo)
    return _simulate_vectorized(graph, iterations, topo)
