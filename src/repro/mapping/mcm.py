"""Maximum cycle mean and self-timed timing analysis of timed graphs.

The asymptotic iteration period of a self-timed implementation is the
**maximum cycle mean** (MCM) of its synchronization graph:

    lambda* = max over directed cycles C of
              (sum of task execution times on C) / (sum of edge delays on C)

A cycle with zero total delay means deadlock (infinite period).  Edge
delays play the role of "tokens" in the ratio, so this is the general
cost-to-time ratio problem; we solve it by Lawler's binary search with a
Bellman–Ford positive-cycle test, plus an exact simulation-based
cross-check (:func:`simulate_selftimed`) that executes eq. 3 directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.mapping.timed_graph import TimedGraph

__all__ = ["maximum_cycle_mean", "simulate_selftimed", "SelfTimedTrace"]


def _has_cycle_with_mean_at_least(graph: TimedGraph, lam: float) -> bool:
    """Bellman–Ford test: exists cycle with sum(t - lam*delay) >= 0?

    Uses weights w(e) = t(src(e)) - lam*delay(e) and looks for a
    non-negative-weight cycle via longest-path relaxation.  A tiny
    epsilon keeps exactly-critical cycles on the "yes" side.
    """
    names = [v.name for v in graph.vertices]
    if not names:
        return False
    t = {v.name: float(v.cycles) for v in graph.vertices}
    # Longest-path Bellman-Ford from a virtual super-source.
    dist = {name: 0.0 for name in names}
    eps = 1e-12
    for iteration in range(len(names)):
        changed = False
        for edge in graph.edges:
            weight = t[edge.src] - lam * edge.delay
            candidate = dist[edge.src] + weight
            if candidate > dist[edge.snk] + eps:
                dist[edge.snk] = candidate
                changed = True
        if not changed:
            return False
    # Still relaxing after |V| passes -> positive (>=0 after epsilon) cycle.
    for edge in graph.edges:
        weight = t[edge.src] - lam * edge.delay
        if dist[edge.src] + weight > dist[edge.snk] + eps:
            return True
    return False


def maximum_cycle_mean(
    graph: TimedGraph,
    tolerance: float = 1e-7,
) -> float:
    """MCM of ``graph`` in cycles per iteration.

    Returns ``math.inf`` when a zero-delay cycle exists (deadlock), and
    ``0.0`` for acyclic graphs (no throughput constraint).
    """
    if graph.has_zero_delay_cycle():
        return math.inf
    total = sum(v.cycles for v in graph.vertices)
    if total == 0 or not graph.edges:
        return 0.0
    low, high = 0.0, float(total) + 1.0
    if not _has_cycle_with_mean_at_least(graph, low):
        return 0.0  # acyclic
    while high - low > max(tolerance, tolerance * high):
        mid = (low + high) / 2.0
        if _has_cycle_with_mean_at_least(graph, mid):
            low = mid
        else:
            high = mid
    return low


@dataclass
class SelfTimedTrace:
    """Start/end times of every task invocation over a simulated horizon."""

    start: Dict[Tuple[str, int], int]
    end: Dict[Tuple[str, int], int]
    iterations: int

    def makespan(self) -> int:
        return max(self.end.values(), default=0)

    def iteration_period(self, reference: str, settle: int = 2) -> float:
        """Average steady-state period of ``reference``'s start times.

        The first ``settle`` iterations are discarded as transient.
        """
        points = [
            self.start[(reference, k)]
            for k in range(self.iterations)
            if (reference, k) in self.start
        ]
        if len(points) <= settle + 1:
            raise ValueError(
                f"need more than {settle + 1} iterations to estimate the "
                f"period (have {len(points)})"
            )
        span = points[-1] - points[settle]
        return span / (len(points) - 1 - settle)


def simulate_selftimed(graph: TimedGraph, iterations: int) -> SelfTimedTrace:
    """Execute the self-timed semantics of eq. 3 exactly.

    ``start(v, k) = max over in-edges e of end(src(e), k - delay(e))``
    (constraints reaching before iteration 0 are vacuous), and
    ``end(v, k) = start(v, k) + t(v)``.  Within one iteration the
    zero-delay edges form a DAG (checked), so a topological sweep per
    iteration suffices.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if graph.has_zero_delay_cycle():
        raise ValueError(
            f"graph {graph.name!r} has a zero-delay cycle; self-timed "
            f"execution deadlocks"
        )

    # Topological order of the zero-delay subgraph.
    names = [v.name for v in graph.vertices]
    indegree = {name: 0 for name in names}
    zero_out: Dict[str, List[str]] = {name: [] for name in names}
    for edge in graph.edges:
        if edge.delay == 0:
            indegree[edge.snk] += 1
            zero_out[edge.src].append(edge.snk)
    ready = sorted(name for name in names if indegree[name] == 0)
    topo: List[str] = []
    while ready:
        node = ready.pop(0)
        topo.append(node)
        for nxt in zero_out[node]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
        ready.sort()
    assert len(topo) == len(names)

    t = {v.name: v.cycles for v in graph.vertices}
    in_edges = {name: graph.in_edges(name) for name in names}
    start: Dict[Tuple[str, int], int] = {}
    end: Dict[Tuple[str, int], int] = {}
    for k in range(iterations):
        for name in topo:
            ready_at = 0
            for edge in in_edges[name]:
                src_iter = k - edge.delay
                if src_iter < 0:
                    continue
                ready_at = max(ready_at, end[(edge.src, src_iter)])
            start[(name, k)] = ready_at
            end[(name, k)] = ready_at + t[name]
    return SelfTimedTrace(start=start, end=end, iterations=iterations)
