"""Multiprocessor mapping: partitioning, self-timed scheduling, IPC and
synchronization graphs, resynchronization, and cycle-mean analysis."""

from repro.mapping.graph_arrays import GraphArrays, MinDelayOracle
from repro.mapping.ipc_graph import build_ipc_graph
from repro.mapping.mcm import (
    McmResult,
    SelfTimedTrace,
    maximum_cycle_mean,
    maximum_cycle_mean_result,
    simulate_selftimed,
)
from repro.mapping.partition import Partition, static_levels
from repro.mapping.pipelining import (
    PipeliningResult,
    auto_pipeline,
    insert_pipeline_delays,
    stage_assignment,
)
from repro.mapping.resync import (
    ResynchronizationResult,
    remove_redundant_synchronizations,
    resynchronize,
)
from repro.mapping.selftimed import SelfTimedSchedule, build_selftimed_schedule
from repro.mapping.sync_graph import (
    SynchronizationGraph,
    derive_sync_graph,
    is_redundant,
    redundant_edges,
)
from repro.mapping.timed_graph import EdgeKind, TimedEdge, TimedGraph, TimedVertex

__all__ = [
    "GraphArrays",
    "MinDelayOracle",
    "build_ipc_graph",
    "McmResult",
    "SelfTimedTrace",
    "maximum_cycle_mean",
    "maximum_cycle_mean_result",
    "simulate_selftimed",
    "Partition",
    "static_levels",
    "PipeliningResult",
    "auto_pipeline",
    "insert_pipeline_delays",
    "stage_assignment",
    "ResynchronizationResult",
    "remove_redundant_synchronizations",
    "resynchronize",
    "SelfTimedSchedule",
    "build_selftimed_schedule",
    "SynchronizationGraph",
    "derive_sync_graph",
    "is_redundant",
    "redundant_edges",
    "EdgeKind",
    "TimedEdge",
    "TimedGraph",
    "TimedVertex",
]
