"""Actor-to-processor assignment.

SPI's self-timed methodology takes the processor assignment as an input
(the paper assigns actors by hand for both applications: the parallel
error-generation units of application 1 and the per-PE particle-filter
replicas of application 2).  This module provides:

* :class:`Partition` — the assignment object used by everything
  downstream (self-timed scheduling, IPC-graph construction, SPI actor
  insertion);
* ``manual`` / ``round_robin`` / ``list`` strategies, the last being a
  classic HLFET (highest level first, earliest start) list scheduler so
  that automatically-mapped graphs are also supported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.dataflow.graph import Actor, DataflowGraph, Edge, GraphError
from repro.dataflow.sdf import repetitions_vector

__all__ = ["Partition", "static_levels"]


def static_levels(graph: DataflowGraph) -> Dict[str, int]:
    """HLFET static level: longest path (in cycles) from actor to any sink.

    Computed over the zero-delay precedence structure; an actor's own
    execution time (cycles of firing 0) is included in its level.
    """
    order = graph.topological_order(ignore_delay_edges=True)
    level: Dict[str, int] = {}
    for actor in reversed(order):
        downstream = 0
        for edge in graph.out_edges(actor):
            if edge.delay > 0:
                continue
            downstream = max(downstream, level.get(edge.snk_actor.name, 0))
        level[actor.name] = actor.execution_cycles(0) + downstream
    return level


@dataclass
class Partition:
    """A mapping of every actor of a graph to a processing element.

    ``assignment`` maps actor name to a PE index in ``range(n_pes)``.
    """

    graph: DataflowGraph
    n_pes: int
    assignment: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_pes < 1:
            raise GraphError("a partition needs at least one PE")
        self.validate()

    # -- constructors ------------------------------------------------------

    @classmethod
    def manual(
        cls, graph: DataflowGraph, assignment: Mapping[str, int]
    ) -> "Partition":
        """Build from an explicit ``actor name -> PE index`` mapping."""
        if not assignment:
            raise GraphError("manual assignment must be non-empty")
        n_pes = max(assignment.values()) + 1
        return cls(graph, n_pes, dict(assignment))

    @classmethod
    def single_processor(cls, graph: DataflowGraph) -> "Partition":
        """Everything on PE 0 (the sequential baseline)."""
        return cls(graph, 1, {a.name: 0 for a in graph.actors})

    @classmethod
    def assign(
        cls, graph: DataflowGraph, n_pes: int, strategy: str = "list"
    ) -> "Partition":
        """Automatic assignment using the named strategy."""
        if strategy == "round_robin":
            return cls._round_robin(graph, n_pes)
        if strategy == "list":
            return cls._list_schedule(graph, n_pes)
        if strategy == "exhaustive":
            return cls.exhaustive(graph, n_pes)
        raise GraphError(
            f"unknown partition strategy {strategy!r}; "
            f"use 'round_robin', 'list' or 'exhaustive' "
            f"(or Partition.manual)"
        )

    @classmethod
    def exhaustive(
        cls,
        graph: DataflowGraph,
        n_pes: int,
        cost: Optional[Callable[["Partition"], float]] = None,
        max_actors: int = 12,
    ) -> "Partition":
        """Optimal assignment by exhaustive search over all mappings.

        Feasible only for small graphs (``n_pes ** actors`` candidates;
        refused above ``max_actors``).  ``cost`` scores a candidate
        (lower is better); the default is the maximum cycle mean of the
        candidate's synchronization graph with a small per-channel
        communication penalty — i.e. the throughput the self-timed
        implementation can reach.  Symmetry is broken by fixing the
        first actor on PE 0.
        """
        import itertools

        actors = [a.name for a in graph.topological_order()]
        if len(actors) > max_actors:
            raise GraphError(
                f"exhaustive search over {len(actors)} actors x {n_pes} "
                f"PEs is too large (limit {max_actors})"
            )

        def default_cost(candidate: "Partition") -> float:
            from repro.mapping.ipc_graph import build_ipc_graph
            from repro.mapping.mcm import maximum_cycle_mean
            from repro.mapping.selftimed import build_selftimed_schedule

            schedule = build_selftimed_schedule(graph, candidate)
            ipc = build_ipc_graph(schedule)
            penalty = 2.0 * len(candidate.interprocessor_edges())
            return maximum_cycle_mean(ipc) + penalty

        score = cost or default_cost
        best: Optional["Partition"] = None
        best_cost = float("inf")
        for tail in itertools.product(range(n_pes), repeat=len(actors) - 1):
            assignment = dict(zip(actors, (0,) + tail))
            candidate = cls(graph, n_pes, assignment)
            value = score(candidate)
            if value < best_cost:
                best, best_cost = candidate, value
        assert best is not None
        return best

    @classmethod
    def _round_robin(cls, graph: DataflowGraph, n_pes: int) -> "Partition":
        order = graph.topological_order(ignore_delay_edges=True)
        assignment = {a.name: i % n_pes for i, a in enumerate(order)}
        return cls(graph, n_pes, assignment)

    @classmethod
    def _list_schedule(cls, graph: DataflowGraph, n_pes: int) -> "Partition":
        """HLFET: schedule ready actors highest-level-first onto the PE
        that allows the earliest start, accounting for a unit IPC penalty
        between different PEs (enough to make the heuristic locality-aware
        without presupposing a platform model)."""
        reps = repetitions_vector(graph)
        levels = static_levels(graph)
        order = graph.topological_order(ignore_delay_edges=True)
        ready_time: Dict[str, int] = {}
        pe_free = [0] * n_pes
        assignment: Dict[str, int] = {}
        finish: Dict[str, int] = {}
        ipc_penalty = 1

        for actor in sorted(order, key=lambda a: (-levels[a.name], a.name)):
            # data-ready times per candidate PE
            best_pe, best_start = 0, None
            for pe in range(n_pes):
                start = pe_free[pe]
                for edge in graph.in_edges(actor):
                    if edge.delay > 0:
                        continue
                    pred = edge.src_actor.name
                    arrive = finish.get(pred, 0)
                    if assignment.get(pred) != pe:
                        arrive += ipc_penalty
                    start = max(start, arrive)
                if best_start is None or start < best_start:
                    best_pe, best_start = pe, start
            assignment[actor.name] = best_pe
            duration = actor.execution_cycles(0) * reps[actor.name]
            finish[actor.name] = best_start + duration
            pe_free[best_pe] = finish[actor.name]
        return cls(graph, n_pes, assignment)

    # -- queries -----------------------------------------------------------

    def validate(self) -> None:
        names = {a.name for a in self.graph.actors}
        missing = names - set(self.assignment)
        if missing:
            raise GraphError(
                f"partition does not assign actors {sorted(missing)}"
            )
        extra = set(self.assignment) - names
        if extra:
            raise GraphError(
                f"partition assigns unknown actors {sorted(extra)}"
            )
        bad = {
            name: pe
            for name, pe in self.assignment.items()
            if not 0 <= pe < self.n_pes
        }
        if bad:
            raise GraphError(
                f"PE indices out of range [0, {self.n_pes}): {bad}"
            )

    def pe_of(self, actor: Actor) -> int:
        return self.assignment[actor.name]

    def actors_on(self, pe: int) -> List[Actor]:
        return [a for a in self.graph.actors if self.assignment[a.name] == pe]

    def interprocessor_edges(self) -> List[Edge]:
        """Edges whose endpoints live on different PEs — these are exactly
        the edges SPI replaces with SPI_send / SPI_receive actor pairs."""
        return [
            e
            for e in self.graph.edges
            if self.assignment[e.src_actor.name] != self.assignment[e.snk_actor.name]
        ]

    def local_edges(self) -> List[Edge]:
        return [
            e
            for e in self.graph.edges
            if self.assignment[e.src_actor.name] == self.assignment[e.snk_actor.name]
        ]

    @property
    def used_pes(self) -> List[int]:
        return sorted(set(self.assignment.values()))

    def __repr__(self) -> str:
        return f"Partition(n_pes={self.n_pes}, assignment={self.assignment})"
