"""Actor-to-processor assignment.

SPI's self-timed methodology takes the processor assignment as an input
(the paper assigns actors by hand for both applications: the parallel
error-generation units of application 1 and the per-PE particle-filter
replicas of application 2).  This module provides:

* :class:`Partition` — the assignment object used by everything
  downstream (self-timed scheduling, IPC-graph construction, SPI actor
  insertion);
* ``manual`` / ``round_robin`` / ``list`` strategies, the last being a
  classic HLFET (highest level first, earliest start) list scheduler so
  that automatically-mapped graphs are also supported.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.dataflow.graph import Actor, DataflowGraph, Edge, GraphError
from repro.dataflow.sdf import repetitions_vector
from repro.platform.pe import GPP, PEClass

__all__ = ["Partition", "static_levels"]


def static_levels(graph: DataflowGraph) -> Dict[str, int]:
    """HLFET static level: longest path (in cycles) from actor to any sink.

    Computed over the zero-delay precedence structure; an actor's own
    execution time (cycles of firing 0) is included in its level.
    """
    order = graph.topological_order(ignore_delay_edges=True)
    level: Dict[str, int] = {}
    for actor in reversed(order):
        downstream = 0
        for edge in graph.out_edges(actor):
            if edge.delay > 0:
                continue
            downstream = max(downstream, level.get(edge.snk_actor.name, 0))
        level[actor.name] = actor.execution_cycles(0) + downstream
    return level


@dataclass
class Partition:
    """A mapping of every actor of a graph to a processing element.

    ``assignment`` maps actor name to a PE index in ``range(n_pes)``.

    Heterogeneity is sparse: ``pe_classes`` maps a PE index to its
    :class:`~repro.platform.pe.PEClass`; unmapped PEs are ``gpp``.
    ``batch_size`` is the *requested* blocking factor — the number of
    logical firings every task executes atomically per macro-pass when
    at least one PE is an accelerator (the runtime clamps it to the
    largest admissible value, see
    :func:`repro.mapping.selftimed.max_feasible_batch`).  On an all-gpp
    platform any batch size is a no-op: execution stays one firing at a
    time and is bit-identical to ``batch_size=1``.
    """

    graph: DataflowGraph
    n_pes: int
    assignment: Dict[str, int] = field(default_factory=dict)
    pe_classes: Dict[int, PEClass] = field(default_factory=dict)
    batch_size: int = 1

    def __post_init__(self) -> None:
        if self.n_pes < 1:
            raise GraphError("a partition needs at least one PE")
        self.validate()

    # -- constructors ------------------------------------------------------

    @classmethod
    def manual(
        cls, graph: DataflowGraph, assignment: Mapping[str, int]
    ) -> "Partition":
        """Build from an explicit ``actor name -> PE index`` mapping."""
        if not assignment:
            raise GraphError("manual assignment must be non-empty")
        n_pes = max(assignment.values()) + 1
        return cls(graph, n_pes, dict(assignment))

    @classmethod
    def single_processor(cls, graph: DataflowGraph) -> "Partition":
        """Everything on PE 0 (the sequential baseline)."""
        return cls(graph, 1, {a.name: 0 for a in graph.actors})

    @classmethod
    def assign(
        cls, graph: DataflowGraph, n_pes: int, strategy: str = "list"
    ) -> "Partition":
        """Automatic assignment using the named strategy."""
        if strategy == "round_robin":
            return cls._round_robin(graph, n_pes)
        if strategy == "list":
            return cls._list_schedule(graph, n_pes)
        if strategy == "exhaustive":
            return cls.exhaustive(graph, n_pes)
        raise GraphError(
            f"unknown partition strategy {strategy!r}; "
            f"use 'round_robin', 'list' or 'exhaustive' "
            f"(or Partition.manual)"
        )

    @classmethod
    def exhaustive(
        cls,
        graph: DataflowGraph,
        n_pes: int,
        cost: Optional[Callable[["Partition"], float]] = None,
        max_actors: int = 12,
    ) -> "Partition":
        """Optimal assignment by exhaustive search over all mappings.

        Feasible only for small graphs (``n_pes ** actors`` candidates;
        refused above ``max_actors``).  ``cost`` scores a candidate
        (lower is better); the default is the maximum cycle mean of the
        candidate's synchronization graph with a small per-channel
        communication penalty — i.e. the throughput the self-timed
        implementation can reach.  Symmetry is broken by fixing the
        first actor on PE 0.

        The search walks candidates depth-first in the same order the
        itertools.product enumeration used to, so the returned winner is
        identical — but with the default cost the partition-independent
        schedule setup (HSDF expansion, PASS) is computed once, and any
        subtree whose partial assignment already carries a communication
        penalty at or above the best known cost is pruned (the penalty
        ``2 * cross_edges`` is a lower bound on the default cost because
        the MCM term is non-negative and cross edges only accumulate as
        the assignment extends).
        """
        actors = [a.name for a in graph.topological_order()]
        if len(actors) > max_actors:
            raise GraphError(
                f"exhaustive search over {len(actors)} actors x {n_pes} "
                f"PEs is too large (limit {max_actors})"
            )

        prune = cost is None
        if cost is None:
            from repro.mapping.ipc_graph import build_ipc_graph
            from repro.mapping.mcm import maximum_cycle_mean
            from repro.mapping.selftimed import build_selftimed_schedule, task_plan

            plan = task_plan(graph)

            def default_cost(candidate: "Partition") -> float:
                schedule = build_selftimed_schedule(graph, candidate, plan=plan)
                ipc = build_ipc_graph(schedule)
                penalty = 2.0 * len(candidate.interprocessor_edges())
                return maximum_cycle_mean(ipc) + penalty

            score: Callable[["Partition"], float] = default_cost
        else:
            score = cost

        # Edges whose later-assigned endpoint is actor k (self-edges are
        # never interprocessor, multi-edges count multiply, matching
        # interprocessor_edges()).
        index = {name: k for k, name in enumerate(actors)}
        edges_closing_at: List[List[int]] = [[] for _ in actors]
        for edge in graph.edges:
            a = index[edge.src_actor.name]
            b = index[edge.snk_actor.name]
            if a != b:
                edges_closing_at[max(a, b)].append(min(a, b))

        best: Optional["Partition"] = None
        best_cost = float("inf")
        pe_of = [0] * len(actors)

        def walk(k: int, cross: int) -> None:
            nonlocal best, best_cost
            if prune and 2.0 * cross >= best_cost:
                return
            if k == len(actors):
                candidate = cls(graph, n_pes, dict(zip(actors, pe_of)))
                value = score(candidate)
                if value < best_cost:
                    best, best_cost = candidate, value
                return
            for pe in (0,) if k == 0 else range(n_pes):
                pe_of[k] = pe
                added = sum(
                    1 for other in edges_closing_at[k] if pe_of[other] != pe
                )
                walk(k + 1, cross + added)

        walk(0, 0)
        assert best is not None
        return best

    @classmethod
    def choose_platform(
        cls,
        graph: DataflowGraph,
        budget: float,
        accelerator: PEClass,
        gpp: PEClass = GPP,
        batch_candidates: Sequence[int] = (1, 2, 4, 8),
        pinned: Optional[Mapping[str, int]] = None,
    ) -> "Partition":
        """Choose PE classes, counts and a batch size under a resource budget.

        Enumerates every (gpp count, accelerator count) split whose
        total :attr:`PEClass.resource_cost` fits ``budget`` and every
        candidate blocking factor, estimates the iteration makespan of a
        greedy longest-processing-time assignment under the amortized
        cost model (an accelerator firing costs
        ``ceil(native * cycles_per_element) + dispatch_cycles / B``),
        and returns the partition with the lowest estimate.  gpp PEs
        take the low indices so PE 0 — where the apps pin their I/O
        actors — stays general-purpose.

        ``pinned`` forces named actors onto fixed PE indices (they must
        be valid in every candidate, i.e. below the minimum PE count).
        The estimate is a mapping heuristic; the runtime still clamps
        the batch to the largest admissible blocking factor.
        """
        if budget < min(gpp.resource_cost, accelerator.resource_cost):
            raise GraphError(
                f"budget {budget} cannot afford any PE "
                f"(gpp={gpp.resource_cost}, "
                f"accelerator={accelerator.resource_cost})"
            )
        if not batch_candidates or min(batch_candidates) < 1:
            raise GraphError("batch_candidates must be positive")
        reps = repetitions_vector(graph)
        workloads = sorted(
            (
                (a.execution_cycles(0) * reps[a.name], a.name)
                for a in graph.actors
            ),
            key=lambda item: (-item[0], item[1]),
        )
        pinned = dict(pinned or {})

        best: Optional["Partition"] = None
        best_score: Optional[tuple] = None
        max_accel = int(budget // accelerator.resource_cost)
        for n_accel in range(max_accel + 1):
            left = budget - n_accel * accelerator.resource_cost
            n_gpp = int(left // gpp.resource_cost)
            n_pes = n_gpp + n_accel
            if n_pes < 1 or n_pes > len(workloads):
                continue
            if pinned and max(pinned.values()) >= n_pes:
                continue
            classes = {
                pe: accelerator for pe in range(n_gpp, n_pes)
            }
            for batch in batch_candidates:
                if n_accel == 0 and batch != 1:
                    continue  # batching is a no-op without accelerators

                def firing_cost(cycles: int, pe: int) -> float:
                    kind = classes.get(pe, gpp)
                    if not kind.is_accelerator:
                        return float(cycles)
                    return (
                        math.ceil(cycles * kind.cycles_per_element)
                        + kind.dispatch_cycles / batch
                    )

                load = [0.0] * n_pes
                assignment: Dict[str, int] = {}
                for cycles, name in workloads:
                    if name in pinned:
                        pe = pinned[name]
                    else:
                        pe = min(
                            range(n_pes),
                            key=lambda p: (
                                load[p] + firing_cost(cycles, p),
                                p,
                            ),
                        )
                    assignment[name] = pe
                    load[pe] += firing_cost(cycles, pe)
                score = (max(load), n_accel, batch, n_pes)
                if best_score is None or score < best_score:
                    best_score = score
                    best = cls(
                        graph,
                        n_pes,
                        assignment,
                        pe_classes=classes,
                        batch_size=batch,
                    )
        if best is None:
            raise GraphError(
                f"no platform fits budget {budget} for "
                f"{len(workloads)} actor(s)"
            )
        return best

    @classmethod
    def _round_robin(cls, graph: DataflowGraph, n_pes: int) -> "Partition":
        order = graph.topological_order(ignore_delay_edges=True)
        assignment = {a.name: i % n_pes for i, a in enumerate(order)}
        return cls(graph, n_pes, assignment)

    @classmethod
    def _list_schedule(cls, graph: DataflowGraph, n_pes: int) -> "Partition":
        """HLFET: schedule ready actors highest-level-first onto the PE
        that allows the earliest start, accounting for a unit IPC penalty
        between different PEs (enough to make the heuristic locality-aware
        without presupposing a platform model)."""
        reps = repetitions_vector(graph)
        levels = static_levels(graph)
        order = graph.topological_order(ignore_delay_edges=True)
        ready_time: Dict[str, int] = {}
        pe_free = [0] * n_pes
        assignment: Dict[str, int] = {}
        finish: Dict[str, int] = {}
        ipc_penalty = 1

        for actor in sorted(order, key=lambda a: (-levels[a.name], a.name)):
            # data-ready times per candidate PE
            best_pe, best_start = 0, None
            for pe in range(n_pes):
                start = pe_free[pe]
                for edge in graph.in_edges(actor):
                    if edge.delay > 0:
                        continue
                    pred = edge.src_actor.name
                    arrive = finish.get(pred, 0)
                    if assignment.get(pred) != pe:
                        arrive += ipc_penalty
                    start = max(start, arrive)
                if best_start is None or start < best_start:
                    best_pe, best_start = pe, start
            assignment[actor.name] = best_pe
            duration = actor.execution_cycles(0) * reps[actor.name]
            finish[actor.name] = best_start + duration
            pe_free[best_pe] = finish[actor.name]
        return cls(graph, n_pes, assignment)

    # -- queries -----------------------------------------------------------

    def validate(self) -> None:
        names = {a.name for a in self.graph.actors}
        missing = names - set(self.assignment)
        if missing:
            raise GraphError(
                f"partition does not assign actors {sorted(missing)}"
            )
        extra = set(self.assignment) - names
        if extra:
            raise GraphError(
                f"partition assigns unknown actors {sorted(extra)}"
            )
        bad = {
            name: pe
            for name, pe in self.assignment.items()
            if not 0 <= pe < self.n_pes
        }
        if bad:
            raise GraphError(
                f"PE indices out of range [0, {self.n_pes}): {bad}"
            )
        if self.batch_size < 1:
            raise GraphError("batch_size must be >= 1")
        bad_classes = {
            pe: kind
            for pe, kind in self.pe_classes.items()
            if not 0 <= pe < self.n_pes
        }
        if bad_classes:
            raise GraphError(
                f"pe_classes indices out of range [0, {self.n_pes}): "
                f"{sorted(bad_classes)}"
            )
        for pe, kind in self.pe_classes.items():
            if not isinstance(kind, PEClass):
                raise GraphError(
                    f"pe_classes[{pe}] must be a PEClass, got {kind!r}"
                )

    def pe_of(self, actor: Actor) -> int:
        return self.assignment[actor.name]

    def pe_class_of(self, pe: int) -> PEClass:
        """The execution-cost model of PE ``pe`` (default: gpp)."""
        return self.pe_classes.get(pe, GPP)

    @property
    def has_accelerators(self) -> bool:
        return any(kind.is_accelerator for kind in self.pe_classes.values())

    @property
    def requested_batch(self) -> int:
        """The blocking factor batching actually requests: ``batch_size``
        when the platform has an accelerator PE, else 1 (the gpp no-op
        rule that keeps homogeneous platforms bit-identical)."""
        return self.batch_size if self.has_accelerators else 1

    def resource_budget_used(self) -> float:
        """Total resource cost of the platform (for equal-budget ablations)."""
        return sum(
            self.pe_class_of(pe).resource_cost for pe in range(self.n_pes)
        )

    def actors_on(self, pe: int) -> List[Actor]:
        return [a for a in self.graph.actors if self.assignment[a.name] == pe]

    def interprocessor_edges(self) -> List[Edge]:
        """Edges whose endpoints live on different PEs — these are exactly
        the edges SPI replaces with SPI_send / SPI_receive actor pairs."""
        return [
            e
            for e in self.graph.edges
            if self.assignment[e.src_actor.name] != self.assignment[e.snk_actor.name]
        ]

    def local_edges(self) -> List[Edge]:
        return [
            e
            for e in self.graph.edges
            if self.assignment[e.src_actor.name] == self.assignment[e.snk_actor.name]
        ]

    @property
    def used_pes(self) -> List[int]:
        return sorted(set(self.assignment.values()))

    def __repr__(self) -> str:
        return f"Partition(n_pes={self.n_pes}, assignment={self.assignment})"
