"""Self-timed multiprocessor schedule construction.

Under the self-timed scheduling model (the one SPI adopts — paper §2),
compile time fixes (a) the actor-to-PE assignment and (b) the *order* in
which each PE cycles through its tasks; the actual firing times are
resolved at run time by data availability.  This module derives the
per-PE task orders from a deterministic PASS of the application graph,
so the orders are always admissible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dataflow.graph import DataflowGraph, GraphError
from repro.dataflow.hsdf import hsdf_expand, invocation_name
from repro.dataflow.sdf import build_pass, repetitions_vector
from repro.mapping.partition import Partition

__all__ = [
    "SelfTimedSchedule",
    "TaskPlan",
    "task_plan",
    "build_selftimed_schedule",
    "batch_is_admissible",
    "max_feasible_batch",
]


@dataclass
class SelfTimedSchedule:
    """A self-timed schedule: per-PE cyclic task orders.

    ``orders[pe]`` is the list of task names PE ``pe`` executes, in order,
    once per graph iteration, wrapping around self-timed (each PE starts
    its next pass as soon as data allows).

    For multirate graphs the tasks are HSDF invocations
    (``actor#k`` names) of the expanded graph stored in ``task_graph``;
    for homogeneous graphs the invocation index is always 0.
    """

    graph: DataflowGraph
    partition: Partition
    orders: Dict[int, List[str]]
    task_graph: DataflowGraph
    task_pe: Dict[str, int] = field(default_factory=dict)

    def pe_of_task(self, task_name: str) -> int:
        return self.task_pe[task_name]

    def tasks(self) -> List[str]:
        return [name for order in self.orders.values() for name in order]

    def position(self, task_name: str) -> int:
        """Index of the task within its PE's cyclic order."""
        order = self.orders[self.task_pe[task_name]]
        return order.index(task_name)

    def firing_script(self) -> Dict[int, List[Tuple[str, str]]]:
        """Flat per-PE firing plan: ``[(task name, origin actor), ...]``.

        Pre-resolves the HSDF invocation -> origin-actor indirection
        once per compile instead of once per program construction; the
        compiled execution fast-lane
        (:mod:`repro.platform.compiled`) builds its firing tasks from
        exactly this plan.  For homogeneous graphs the task name and the
        origin coincide.
        """
        script: Dict[int, List[Tuple[str, str]]] = {}
        for pe, order in self.orders.items():
            entries: List[Tuple[str, str]] = []
            for task_name in order:
                actor = self.task_graph.get_actor(task_name)
                entries.append(
                    (task_name, actor.params.get("origin", task_name))
                )
            script[pe] = entries
        return script

    @property
    def n_pes(self) -> int:
        return self.partition.n_pes

    def validate(self) -> None:
        """Each task appears exactly once, on the PE its actor is mapped to."""
        seen: Dict[str, int] = {}
        for pe, order in self.orders.items():
            for task in order:
                if task in seen:
                    raise GraphError(
                        f"task {task!r} scheduled on both PE {seen[task]} "
                        f"and PE {pe}"
                    )
                seen[task] = pe
        expected = {a.name for a in self.task_graph.actors}
        if set(seen) != expected:
            missing = expected - set(seen)
            extra = set(seen) - expected
            raise GraphError(
                f"schedule covers wrong task set (missing={sorted(missing)}, "
                f"extra={sorted(extra)})"
            )


@dataclass(frozen=True)
class TaskPlan:
    """The partition-independent half of schedule construction.

    HSDF expansion and the deterministic PASS depend only on the
    application graph, so callers that score many candidate partitions
    of the *same* graph (``Partition.exhaustive``) compute the plan once
    with :func:`task_plan` and pass it to every
    :func:`build_selftimed_schedule` call.
    """

    task_graph: DataflowGraph
    task_sequence: Tuple[str, ...]
    homogeneous: bool


def task_plan(graph: DataflowGraph) -> TaskPlan:
    """Expand (if multirate) and order the graph's tasks via the PASS."""
    reps = repetitions_vector(graph)
    homogeneous = all(count == 1 for count in reps.values()) and all(
        isinstance(p.rate, int) and p.rate == 1
        for a in graph.actors
        for p in a.ports
    )
    pass_firings = build_pass(graph, repetitions=reps)
    if homogeneous:
        task_graph = graph
        task_sequence = tuple(a.name for a in pass_firings)
    else:
        task_graph = hsdf_expand(graph)
        counters: Dict[str, int] = {}
        names: List[str] = []
        for actor in pass_firings:
            k = counters.get(actor.name, 0)
            counters[actor.name] = k + 1
            names.append(invocation_name(actor.name, k))
        task_sequence = tuple(names)
    return TaskPlan(
        task_graph=task_graph,
        task_sequence=task_sequence,
        homogeneous=homogeneous,
    )


def build_selftimed_schedule(
    graph: DataflowGraph,
    partition: Partition,
    plan: Optional[TaskPlan] = None,
) -> SelfTimedSchedule:
    """Derive a self-timed schedule from a deterministic PASS.

    Multirate graphs are HSDF-expanded first; each invocation inherits the
    PE of its actor.  The per-PE order is the order in which the PASS
    fires the invocations, which guarantees an admissible (deadlock-free)
    self-timed execution given sufficient buffer space.  ``plan`` may
    carry the precomputed partition-independent work (see
    :func:`task_plan`).
    """
    if plan is None:
        plan = task_plan(graph)
    task_graph = plan.task_graph
    task_sequence = plan.task_sequence
    if plan.homogeneous:
        task_pe = {a.name: partition.pe_of(a) for a in graph.actors}
    else:
        task_pe = {
            t.name: partition.assignment[t.params["origin"]]
            for t in task_graph.actors
        }

    orders: Dict[int, List[str]] = {pe: [] for pe in range(partition.n_pes)}
    for task in task_sequence:
        orders[task_pe[task]].append(task)

    schedule = SelfTimedSchedule(
        graph=graph,
        partition=partition,
        orders=orders,
        task_graph=task_graph,
        task_pe=task_pe,
    )
    schedule.validate()
    return schedule


def batch_is_admissible(schedule: SelfTimedSchedule, batch: int) -> bool:
    """Is a *blocked* execution with blocking factor ``batch`` deadlock-free?

    Under batched execution every task of every PE runs ``batch``
    logical firings atomically per macro-pass (a blocked schedule in the
    Lee/Messerschmitt sense): one task execution consumes/produces
    ``batch * rate`` tokens in one burst.  That is admissible iff a
    symbolic token simulation of one macro-pass completes — each PE
    advances through its cyclic order, a task fires only when every
    input edge of the task graph holds the full burst.  One macro-pass
    suffices: a consistent graph returns to its initial token state
    after any whole number of iterations.

    Feedback edges whose delay is below the burst size are exactly what
    fails here (the particle filter's capacity loop clamps to 1).
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if batch == 1:
        return True  # the PASS-derived orders are admissible by construction
    task_graph = schedule.task_graph
    tokens: Dict[Tuple[str, str, int], int] = {}
    in_edges: Dict[str, list] = {t.name: [] for t in task_graph.actors}
    out_edges: Dict[str, list] = {t.name: [] for t in task_graph.actors}
    for i, edge in enumerate(task_graph.edges):
        key = (edge.src_actor.name, edge.snk_actor.name, i)
        tokens[key] = edge.delay
        in_edges[edge.snk_actor.name].append((key, edge.cons_rate))
        out_edges[edge.src_actor.name].append((key, edge.prod_rate))

    pointers = {pe: 0 for pe in schedule.orders}
    remaining = sum(len(order) for order in schedule.orders.values())
    while remaining:
        advanced = False
        for pe, order in schedule.orders.items():
            i = pointers[pe]
            if i >= len(order):
                continue
            task = order[i]
            if all(
                tokens[key] >= batch * rate for key, rate in in_edges[task]
            ):
                for key, rate in in_edges[task]:
                    tokens[key] -= batch * rate
                for key, rate in out_edges[task]:
                    tokens[key] += batch * rate
                pointers[pe] = i + 1
                remaining -= 1
                advanced = True
        if not advanced:
            return False
    return True


def max_feasible_batch(schedule: SelfTimedSchedule, requested: int) -> int:
    """Largest admissible blocking factor ``<= requested`` (>= 1)."""
    if requested < 1:
        raise ValueError("requested batch must be >= 1")
    for batch in range(requested, 1, -1):
        if batch_is_admissible(schedule, batch):
            return batch
    return 1
