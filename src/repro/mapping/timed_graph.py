"""Timed task graphs: the common substrate of IPC and synchronization graphs.

An IPC graph / synchronization graph (paper §4) is a directed multigraph
whose vertices are *tasks* (actor invocations with execution times and a
processor assignment) and whose edges carry *delays* (iteration offsets).
Edge kinds distinguish the roles the paper assigns them:

* ``intra``  — same-PE sequencing edge (schedule order, plus the unit-delay
  wrap-around edge from the last to the first task of each PE);
* ``ipc``    — interprocessor communication edge (data + synchronization);
* ``sync``   — pure synchronization edge (no data), the currency of
  resynchronization;
* ``ack``    — acknowledgment edge of the UBS protocol (sink-to-source
  feedback telling the sender that buffer space was freed).

Every edge, whatever its kind, imposes the paper's eq. 3 constraint:
``start(snk, k) >= end(src, k - delay)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["TimedVertex", "TimedEdge", "TimedGraph", "EdgeKind"]


class EdgeKind:
    """Edge role constants."""

    INTRA = "intra"
    IPC = "ipc"
    SYNC = "sync"
    ACK = "ack"

    ALL = (INTRA, IPC, SYNC, ACK)
    #: kinds that carry a synchronization cost at run time (same-PE
    #: sequencing is free — it is enforced by program order)
    SYNCHRONIZING = (IPC, SYNC, ACK)


@dataclass(frozen=True)
class TimedVertex:
    """A task: one actor invocation mapped onto one PE."""

    name: str
    cycles: int
    pe: int
    origin_actor: Optional[str] = None

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"task {self.name!r}: negative execution time")
        if self.pe < 0:
            raise ValueError(f"task {self.name!r}: negative PE index")


@dataclass(frozen=True)
class TimedEdge:
    """A precedence/synchronization constraint between two tasks."""

    src: str
    snk: str
    delay: int
    kind: str = EdgeKind.SYNC
    payload_bytes: int = 0
    origin_edge: Optional[str] = None
    uid: int = field(default_factory=itertools.count().__next__, compare=False)

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(
                f"edge {self.src}->{self.snk}: negative delay {self.delay}"
            )
        if self.kind not in EdgeKind.ALL:
            raise ValueError(f"unknown edge kind {self.kind!r}")
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")


class TimedGraph:
    """A directed multigraph of tasks with delayed precedence edges."""

    def __init__(self, name: str = "timed") -> None:
        self.name = name
        self._vertices: Dict[str, TimedVertex] = {}
        self._edges: List[TimedEdge] = []
        self._min_delay_cache: Optional[Dict[str, Dict[str, int]]] = None

    # -- construction -------------------------------------------------------

    def add_vertex(self, vertex: TimedVertex) -> TimedVertex:
        if vertex.name in self._vertices:
            raise ValueError(f"duplicate task name {vertex.name!r}")
        self._vertices[vertex.name] = vertex
        self._min_delay_cache = None
        return vertex

    def add_edge(self, edge: TimedEdge) -> TimedEdge:
        for endpoint in (edge.src, edge.snk):
            if endpoint not in self._vertices:
                raise ValueError(f"edge endpoint {endpoint!r} is not a task")
        self._edges.append(edge)
        self._min_delay_cache = None
        return edge

    def remove_edge(self, edge: TimedEdge) -> None:
        try:
            self._edges.remove(edge)
        except ValueError:
            raise ValueError(
                f"edge {edge.src}->{edge.snk} (uid {edge.uid}) not in graph"
            ) from None
        self._min_delay_cache = None

    # -- accessors ------------------------------------------------------------

    @property
    def vertices(self) -> Tuple[TimedVertex, ...]:
        return tuple(self._vertices.values())

    @property
    def edges(self) -> Tuple[TimedEdge, ...]:
        return tuple(self._edges)

    def vertex(self, name: str) -> TimedVertex:
        try:
            return self._vertices[name]
        except KeyError:
            raise ValueError(
                f"graph {self.name!r} has no task {name!r}"
            ) from None

    def has_vertex(self, name: str) -> bool:
        return name in self._vertices

    def out_edges(self, name: str) -> List[TimedEdge]:
        return [e for e in self._edges if e.src == name]

    def in_edges(self, name: str) -> List[TimedEdge]:
        return [e for e in self._edges if e.snk == name]

    def edges_of_kind(self, *kinds: str) -> List[TimedEdge]:
        return [e for e in self._edges if e.kind in kinds]

    def synchronization_edges(self) -> List[TimedEdge]:
        """Edges that cost run-time synchronization (cross-PE)."""
        return [
            e
            for e in self._edges
            if e.kind in EdgeKind.SYNCHRONIZING
            and self.vertex(e.src).pe != self.vertex(e.snk).pe
        ]

    def tasks_on(self, pe: int) -> List[TimedVertex]:
        return [v for v in self._vertices.values() if v.pe == pe]

    @property
    def pes(self) -> List[int]:
        return sorted({v.pe for v in self._vertices.values()})

    # -- analysis helpers ------------------------------------------------------

    def min_delay_paths(self) -> Dict[str, Dict[str, int]]:
        """All-pairs minimum path delay (Floyd–Warshall on edge delays).

        ``result[u][v]`` is the least total delay over directed paths
        ``u -> v``; missing entries mean "no path".  ``result[u][u]`` is 0
        (empty path) — callers that need cycles must go through an
        explicit outgoing edge first.

        The table is memoized; any mutation (``add_vertex``,
        ``add_edge``, ``remove_edge``) invalidates the memo.  Callers
        must treat the result as read-only.
        """
        if self._min_delay_cache is not None:
            return self._min_delay_cache
        names = list(self._vertices)
        inf = None
        dist: Dict[str, Dict[str, int]] = {u: {u: 0} for u in names}
        for edge in self._edges:
            current = dist[edge.src].get(edge.snk)
            if current is None or edge.delay < current:
                dist[edge.src][edge.snk] = edge.delay
        for k in names:
            row_k = dist[k]
            for i in names:
                via = dist[i].get(k)
                if via is None:
                    continue
                row_i = dist[i]
                for j, kj in row_k.items():
                    candidate = via + kj
                    current = row_i.get(j)
                    if current is None or candidate < current:
                        row_i[j] = candidate
        self._min_delay_cache = dist
        return dist

    def _install_min_delay_cache(
        self, table: Dict[str, Dict[str, int]]
    ) -> None:
        """Install an externally maintained min-delay table as the memo.

        Used by the incremental APSP oracle
        (:class:`repro.mapping.graph_arrays.MinDelayOracle`) after it
        repairs the table for an edge mutation, so subsequent
        ``min_delay_paths()`` calls stay O(1).
        """
        self._min_delay_cache = table

    def has_zero_delay_cycle(self) -> bool:
        """True when some directed cycle has total delay 0 (deadlock)."""
        # Restrict to zero-delay edges; any cycle there is a 0-delay cycle.
        adjacency: Dict[str, List[str]] = {v: [] for v in self._vertices}
        for edge in self._edges:
            if edge.delay == 0:
                adjacency[edge.src].append(edge.snk)
        state: Dict[str, int] = {}

        def dfs(node: str) -> bool:
            state[node] = 1
            for nxt in adjacency[node]:
                mark = state.get(nxt, 0)
                if mark == 1:
                    return True
                if mark == 0 and dfs(nxt):
                    return True
            state[node] = 2
            return False

        return any(state.get(v, 0) == 0 and dfs(v) for v in self._vertices)

    def copy(self, name: Optional[str] = None) -> "TimedGraph":
        clone = TimedGraph(name or self.name)
        for vertex in self._vertices.values():
            clone.add_vertex(vertex)
        for edge in self._edges:
            # Re-instantiate to obtain fresh uids in the clone.
            clone.add_edge(
                TimedEdge(
                    src=edge.src,
                    snk=edge.snk,
                    delay=edge.delay,
                    kind=edge.kind,
                    payload_bytes=edge.payload_bytes,
                    origin_edge=edge.origin_edge,
                )
            )
        return clone

    def to_dot(self) -> str:
        styles = {
            EdgeKind.INTRA: "solid",
            EdgeKind.IPC: "bold",
            EdgeKind.SYNC: "dashed",
            EdgeKind.ACK: "dotted",
        }
        lines = [f'digraph "{self.name}" {{']
        for pe in self.pes:
            lines.append(f"  subgraph cluster_pe{pe} {{")
            lines.append(f'    label="PE{pe}";')
            for vertex in self.tasks_on(pe):
                lines.append(f'    "{vertex.name}";')
            lines.append("  }")
        for edge in self._edges:
            attrs = f'style={styles[edge.kind]}'
            if edge.delay:
                attrs += f', label="d={edge.delay}"'
            lines.append(f'  "{edge.src}" -> "{edge.snk}" [{attrs}];')
        lines.append("}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._vertices)

    def __repr__(self) -> str:
        return (
            f"TimedGraph({self.name!r}, tasks={len(self._vertices)}, "
            f"edges={len(self._edges)})"
        )
