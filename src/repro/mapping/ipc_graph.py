"""IPC graph construction (paper §4.1).

Given an application graph and its multiprocessor (self-timed) schedule,
the IPC graph ``G_ipc`` is derived by

* instantiating a vertex for each task,
* connecting an edge from each task to the task that succeeds it on the
  same processor (program order, zero delay),
* adding a unit-delay edge from the *last* task on each processor back
  to the *first* task on the same processor (the processor loops), and
* instantiating an IPC edge ``x -> y`` for each application edge whose
  endpoints execute on different processors (carrying the application
  edge's delay and payload size).

Every edge of ``G_ipc`` represents the eq. 3 constraint
``start(snk, k) >= end(src, k - delay)``; IPC edges additionally carry
data.
"""

from __future__ import annotations


from repro.dataflow.graph import GraphError
from repro.mapping.selftimed import SelfTimedSchedule
from repro.mapping.timed_graph import EdgeKind, TimedEdge, TimedGraph, TimedVertex

__all__ = ["build_ipc_graph"]


def build_ipc_graph(schedule: SelfTimedSchedule, name: str = "") -> TimedGraph:
    """Construct ``G_ipc`` from a self-timed schedule.

    The task graph of the schedule (the application graph itself, or its
    HSDF expansion for multirate applications) provides the data edges;
    the per-PE orders provide the sequencing edges.
    """
    task_graph = schedule.task_graph
    ipc = TimedGraph(name or f"{task_graph.name}_ipc")

    for task in task_graph.actors:
        pe = schedule.pe_of_task(task.name)
        ipc.add_vertex(
            TimedVertex(
                name=task.name,
                cycles=task.execution_cycles(0),
                pe=pe,
                origin_actor=task.params.get("origin", task.name),
            )
        )

    for pe, order in schedule.orders.items():
        if not order:
            continue
        for earlier, later in zip(order, order[1:]):
            ipc.add_edge(
                TimedEdge(
                    src=earlier,
                    snk=later,
                    delay=0,
                    kind=EdgeKind.INTRA,
                )
            )
        # Processor wrap-around: iteration k+1's first task waits for
        # iteration k's last task.
        ipc.add_edge(
            TimedEdge(
                src=order[-1],
                snk=order[0],
                delay=1,
                kind=EdgeKind.INTRA,
            )
        )

    for edge in task_graph.edges:
        src_pe = schedule.pe_of_task(edge.src_actor.name)
        snk_pe = schedule.pe_of_task(edge.snk_actor.name)
        if src_pe == snk_pe:
            continue
        payload = edge.token_bytes * edge.max_prod_rate
        ipc.add_edge(
            TimedEdge(
                src=edge.src_actor.name,
                snk=edge.snk_actor.name,
                delay=edge.delay,
                kind=EdgeKind.IPC,
                payload_bytes=payload,
                origin_edge=edge.name,
            )
        )

    if ipc.has_zero_delay_cycle():
        raise GraphError(
            f"IPC graph {ipc.name!r} has a zero-delay cycle; the schedule "
            f"deadlocks"
        )
    return ipc
