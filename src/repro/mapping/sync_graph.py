"""Synchronization graphs and redundant-synchronization detection (paper §4).

The synchronization graph ``G_s`` is derived from the IPC graph: it keeps
only the *synchronization* semantics of every edge.  Initially ``G_s`` is
identical to ``G_ipc``; resynchronization then modifies it (adds sync
edges, removes redundant ones) without ever touching the *data*
communication, which stays on the IPC edges of ``G_ipc``.

**Redundancy criterion** (Sriram & Bhattacharyya, used by the paper): a
synchronization edge ``e = (x, y, d)`` is redundant iff the sequencing
requirement it encodes is implied by the rest of the graph — i.e. iff
there is a directed path ``x -> y``, not using ``e`` itself, whose total
delay is at most ``d``.  Operationally: some other out-edge ``e'`` of
``x`` satisfies ``delay(e') + rho(snk(e'), y) <= d`` where ``rho`` is the
all-pairs minimum path delay.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.mapping.timed_graph import EdgeKind, TimedEdge, TimedGraph

__all__ = [
    "SynchronizationGraph",
    "derive_sync_graph",
    "is_redundant",
    "redundant_edges",
]


class SynchronizationGraph(TimedGraph):
    """A :class:`TimedGraph` specialised for synchronization analysis.

    Adds convenience metrics used by the resynchronization benchmarks:
    the number of cross-PE synchronization operations per iteration, and
    per-kind breakdowns.
    """

    def sync_cost(self) -> int:
        """Cross-PE synchronization operations per graph iteration."""
        return len(self.synchronization_edges())

    def sync_cost_by_kind(self) -> Dict[str, int]:
        result: Dict[str, int] = {}
        for edge in self.synchronization_edges():
            result[edge.kind] = result.get(edge.kind, 0) + 1
        return result

    def copy(self, name: Optional[str] = None) -> "SynchronizationGraph":
        clone = SynchronizationGraph(name or self.name)
        for vertex in self.vertices:
            clone.add_vertex(vertex)
        for edge in self.edges:
            clone.add_edge(
                TimedEdge(
                    src=edge.src,
                    snk=edge.snk,
                    delay=edge.delay,
                    kind=edge.kind,
                    payload_bytes=edge.payload_bytes,
                    origin_edge=edge.origin_edge,
                )
            )
        return clone


def derive_sync_graph(ipc_graph: TimedGraph, name: str = "") -> SynchronizationGraph:
    """Initial synchronization graph: a copy of ``G_ipc`` (paper §4.1)."""
    sync = SynchronizationGraph(name or ipc_graph.name.replace("_ipc", "") + "_sync")
    for vertex in ipc_graph.vertices:
        sync.add_vertex(vertex)
    for edge in ipc_graph.edges:
        sync.add_edge(
            TimedEdge(
                src=edge.src,
                snk=edge.snk,
                delay=edge.delay,
                kind=edge.kind,
                payload_bytes=edge.payload_bytes,
                origin_edge=edge.origin_edge,
            )
        )
    return sync


def is_redundant(
    graph: TimedGraph,
    edge: TimedEdge,
    rho: Optional[Dict[str, Dict[str, int]]] = None,
) -> bool:
    """True iff ``edge``'s constraint is implied by the rest of ``graph``.

    ``rho`` may be passed to reuse a precomputed all-pairs minimum-delay
    table (it must correspond to the *current* graph).  The check goes
    through an explicit first hop ``e' != e`` so that the trivial path
    "the edge itself" never vouches for its own redundancy.
    """
    table = rho if rho is not None else graph.min_delay_paths()
    for first_hop in graph.out_edges(edge.src):
        if first_hop.uid == edge.uid:
            continue
        remainder = table[first_hop.snk].get(edge.snk)
        if remainder is None:
            continue
        if first_hop.delay + remainder <= edge.delay:
            return True
    return False


def redundant_edges(
    graph: TimedGraph,
    kinds: Tuple[str, ...] = (EdgeKind.SYNC, EdgeKind.ACK, EdgeKind.IPC),
    cross_pe_only: bool = True,
) -> List[TimedEdge]:
    """All currently redundant edges of the given kinds.

    Note that removing one redundant edge can make another previously
    redundant edge essential again when they vouched for each other; use
    :func:`repro.mapping.resync.remove_redundant_synchronizations` for a
    sound iterative removal.
    """
    rho = graph.min_delay_paths()
    result = []
    for edge in graph.edges:
        if edge.kind not in kinds:
            continue
        if cross_pe_only and graph.vertex(edge.src).pe == graph.vertex(edge.snk).pe:
            continue
        if is_redundant(graph, edge, rho):
            result.append(edge)
    return result
