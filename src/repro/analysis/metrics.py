"""Sweep helpers and derived metrics for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.spi.runtime import RunResult

__all__ = [
    "SweepPoint",
    "first_output_latency",
    "pipeline_fill_latency",
    "speedups",
    "parallel_efficiency",
    "crossover_x",
    "steady_state_us",
    "amdahl_bound",
]


@dataclass(frozen=True)
class SweepPoint:
    """One measured point of a parameter sweep."""

    x: float
    n_pes: int
    result: RunResult

    @property
    def per_iteration_us(self) -> float:
        return self.result.iteration_period_cycles and (
            self.result.iteration_period_cycles
            / (self.result.cycles / self.result.execution_time_us)
        )


def steady_state_us(result: RunResult, clock_mhz: float = 100.0) -> float:
    """Steady-state per-iteration time in microseconds."""
    return result.iteration_period_cycles / clock_mhz


def speedups(times: Sequence[float]) -> List[float]:
    """Speedup of each entry against the first (1-PE) entry."""
    if not times:
        raise ValueError("empty time series")
    base = times[0]
    if base <= 0:
        raise ValueError("baseline time must be positive")
    return [base / t for t in times]


def parallel_efficiency(times: Sequence[float], pes: Sequence[int]) -> List[float]:
    """Speedup divided by PE count, per configuration."""
    if len(times) != len(pes):
        raise ValueError("times and pes must align")
    gains = speedups(times)
    return [gain / n for gain, n in zip(gains, pes)]


def crossover_x(
    xs: Sequence[float], a: Sequence[float], b: Sequence[float]
) -> Optional[float]:
    """First x where series ``a`` drops below series ``b`` (or None).

    Used to locate where one configuration starts winning — e.g. the
    problem size from which an extra PE pays off despite communication.
    """
    if not (len(xs) == len(a) == len(b)):
        raise ValueError("series must align")
    for x, ya, yb in zip(xs, a, b):
        if ya < yb:
            return x
    return None


def first_output_latency(trace, task_name: str) -> int:
    """Cycles until ``task_name`` completes its first execution.

    The flip side of pipelining: added delay tokens raise this number
    while lowering the iteration period — this helper quantifies the
    trade from a recorded :class:`~repro.platform.trace.TraceRecorder`.
    """
    events = trace.events_of(task_name)
    if not events:
        raise ValueError(f"no executions of {task_name!r} in the trace")
    return min(event.end for event in events)


def pipeline_fill_latency(trace, source_task: str, sink_task: str) -> int:
    """Cycles from the source's first start to the sink's first end."""
    sources = trace.events_of(source_task)
    if not sources:
        raise ValueError(f"no executions of {source_task!r} in the trace")
    start = min(event.start for event in sources)
    return first_output_latency(trace, sink_task) - start


def amdahl_bound(serial_fraction: float, n_pes: int) -> float:
    """Amdahl speedup bound — the sanity ceiling for the figure benches."""
    if not 0 <= serial_fraction <= 1:
        raise ValueError("serial_fraction must be in [0, 1]")
    if n_pes < 1:
        raise ValueError("n_pes must be >= 1")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / n_pes)
