"""Table and series renderers for the experiment harness.

The benchmarks print the same *shapes* the paper reports: figure 6/7 are
series of execution time against a swept parameter (one series per PE
count), tables 1/2 are resource-utilisation tables.  This module holds
the shared ASCII/CSV rendering so every bench target reports uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

__all__ = [
    "Series",
    "Figure",
    "render_table",
    "render_figure",
    "render_metrics_summary",
]

Number = Union[int, float]


@dataclass
class Series:
    """One labelled curve of a figure (e.g. ``n=2``)."""

    label: str
    x: List[Number] = field(default_factory=list)
    y: List[Number] = field(default_factory=list)

    def add(self, x: Number, y: Number) -> None:
        self.x.append(x)
        self.y.append(y)

    def validate(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: {len(self.x)} x values vs "
                f"{len(self.y)} y values"
            )


@dataclass
class Figure:
    """A reproduced figure: multiple series over a shared x axis."""

    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)

    def add_series(self, label: str) -> Series:
        series = Series(label)
        self.series.append(series)
        return series

    def to_csv(self) -> str:
        """Wide CSV: one x column, one column per series."""
        for series in self.series:
            series.validate()
        xs = sorted({x for series in self.series for x in series.x})
        header = [self.x_label] + [s.label for s in self.series]
        lines = [",".join(header)]
        lookup = [
            {x: y for x, y in zip(s.x, s.y)} for s in self.series
        ]
        for x in xs:
            row = [str(x)]
            for table in lookup:
                value = table.get(x)
                row.append("" if value is None else f"{value:.4f}")
            lines.append(",".join(row))
        return "\n".join(lines)

    def render(self, width: int = 12) -> str:
        """ASCII rendering: the numbers of the figure as a table."""
        for series in self.series:
            series.validate()
        xs = sorted({x for series in self.series for x in series.x})
        header = [self.x_label] + [s.label for s in self.series]
        rows: List[List[str]] = []
        lookup = [
            {x: y for x, y in zip(s.x, s.y)} for s in self.series
        ]
        for x in xs:
            row = [f"{x}"]
            for table in lookup:
                value = table.get(x)
                row.append("-" if value is None else f"{value:.2f}")
            rows.append(row)
        return "\n".join(
            [
                self.title,
                f"({self.y_label})",
                render_table(header, rows),
            ]
        )


def render_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width ASCII table."""
    columns = len(header)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, header has {columns}"
            )
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows))
        if rows
        else len(str(header[i]))
        for i in range(columns)
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_figure(figure: Figure) -> str:
    """Convenience alias for ``figure.render()``."""
    return figure.render()


def render_metrics_summary(document: Dict) -> str:
    """Human summary of one run's metrics JSON document.

    Takes the document produced by :func:`repro.observability.exporters
    .build_metrics_document` (``RunResult.metrics``) and renders the
    per-PE and per-channel views as fixed-width tables, followed by the
    transport and simulator-kernel counters — the quick answer to "which
    channel stalled, and was it data or synchronization traffic".
    """
    run = document["run"]
    lines: List[str] = [
        f"run: {run['cycles']} cycles, {run['iterations']} iteration(s), "
        f"period {run['iteration_period_cycles']:.1f} cycles "
        f"(MCM bound {run['mcm_bound_cycles']:.1f})",
    ]
    witness = run.get("critical_cycle") or {}
    if witness.get("tasks"):
        lines.append(
            f"critical cycle: {' -> '.join(witness['tasks'])} "
            f"({witness['total_cycles']} cycles / "
            f"{witness['total_delay']} delay)"
        )
    lines.extend(["", "processing elements:"])
    pe_rows = []
    for pe in document["pes"]:
        blockers = pe["blocked_by_task"]
        top = (
            max(blockers, key=blockers.get) if blockers else "-"
        )
        pe_rows.append(
            [
                pe["name"],
                str(pe["busy_cycles"]),
                str(pe["blocked_cycles"]),
                f"{pe['utilization'] * 100:.1f}%",
                str(pe["firings"]),
                top,
            ]
        )
    lines.append(
        render_table(
            ["PE", "busy", "blocked", "util", "firings", "top blocker"],
            pe_rows,
        )
    )
    if document["channels"]:
        lines += ["", "channels:"]
        channel_rows = []
        for channel in document["channels"]:
            channel_rows.append(
                [
                    channel["name"],
                    channel["protocol"],
                    f"PE{channel['src_pe']}->PE{channel['dst_pe']}",
                    f"{channel['data_messages']}/{channel['ack_messages']}",
                    (
                        f"{channel['occupancy_high_water_messages']}"
                        f"/{channel['bound_messages']}"
                    ),
                    str(channel["full_stall_cycles"]),
                    str(channel["empty_stall_cycles"]),
                ]
            )
        lines.append(
            render_table(
                [
                    "channel",
                    "protocol",
                    "route",
                    "msgs d/a",
                    "occ hw/B(e)",
                    "full stall",
                    "empty stall",
                ],
                channel_rows,
            )
        )
    transport = document["transport"]
    split = document["wire_byte_split"]
    split_text = (
        ", ".join(f"{kind}={nbytes}B" for kind, nbytes in sorted(split.items()))
        or "none"
    )
    sim = document["simulator"]
    lines += [
        "",
        f"transport: {transport['type']}, {transport['messages']} msg, "
        f"{transport['bytes']}B",
        f"wire bytes by kind: {split_text}",
    ]
    if transport.get("collective_messages", 0):
        lines.append(
            f"collectives: {transport['collective_messages']} wire "
            f"transfer(s) fanned out to "
            f"{transport['fan_out_deliveries']} deliveries, "
            f"{transport['wire_bytes_saved']}B saved by payload sharing"
        )
    if sim.get("batch_dispatches", 0):
        lines.append(
            f"batching: blocking factor "
            f"{document['run'].get('batch', 1)}, "
            f"{sim['batched_firings']} firing(s) in "
            f"{sim['batch_dispatches']} batched dispatch(es), "
            f"{sim.get('amortized_dispatch_cycles_saved', 0)} dispatch "
            f"cycle(s) amortized away"
        )
    lines += [
        f"simulator: {sim['events_processed']} events, {sim['parks']} parks, "
        f"{sim['retry_rounds']} retry rounds",
        f"wakeups ({sim.get('wakeup_policy', 'targeted')}): "
        f"{sim.get('targeted_wakeups', 0)} targeted, "
        f"{sim.get('broadcast_wakeups', 0)} broadcast, "
        f"{sim.get('spurious_wakeups', 0)} spurious",
    ]
    detected = sim.get("steady_state_detected_at")
    if detected is not None:
        lines.append(
            f"steady state: detected at iteration {detected}, "
            f"{sim.get('extrapolated_iterations', 0)} iteration(s) "
            f"extrapolated, {sim.get('compiled_firings', 0)} compiled "
            f"firing(s)"
        )
    return "\n".join(lines)
