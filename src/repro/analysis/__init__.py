"""Reporting and derived metrics for the experiment harness."""

from repro.analysis.metrics import (
    SweepPoint,
    first_output_latency,
    pipeline_fill_latency,
    amdahl_bound,
    crossover_x,
    parallel_efficiency,
    speedups,
    steady_state_us,
)
from repro.analysis.report import (
    Figure,
    Series,
    render_figure,
    render_metrics_summary,
    render_table,
)

__all__ = [
    "SweepPoint", "first_output_latency", "pipeline_fill_latency", "amdahl_bound", "crossover_x", "parallel_efficiency",
    "speedups", "steady_state_us",
    "Figure", "Series", "render_figure", "render_metrics_summary", "render_table",
]
