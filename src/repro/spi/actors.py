"""Run-time SPI actors: the tasks the platform simulator executes.

The HDL SPI library of the paper consists of **SPI_init**, **SPI_send**
and **SPI_receive** modules in SPI_static and SPI_dynamic flavours; the
computation actors of the application are entirely separate ("these
special modules ensure that the communication part of a system is
completely separated from the computation part").  This module provides
the behavioural models of all of them as :class:`~repro.platform
.simulator.Task` implementations, plus the :class:`LocalFifo` carrying
same-PE edges.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from repro.dataflow.graph import Actor, Edge
from repro.dataflow.vts import PackedToken
from repro.platform.interconnect import Interconnect
from repro.platform.pe import GPP, PEClass, ProcessingElement
from repro.platform.simulator import Simulator, Waitset
from repro.spi.channel import SpiChannel
from repro.spi.message import make_ack_message, make_data_message

__all__ = [
    "BatchSchedule",
    "LocalFifo",
    "ComputationTask",
    "SpiInitTask",
    "SpiSendTask",
    "SpiCollectiveSendTask",
    "SpiReceiveTask",
    "SyncTokenPool",
    "SyncedTask",
    "normalize_port_fifos",
    "assemble_port_tokens",
    "payload_nbytes",
    "INIT_CYCLES",
]

#: one-time channel setup cost charged by SPI_init per PE
INIT_CYCLES = 8


class BatchSchedule:
    """Macro-pass plan of a blocked (batched) execution.

    A run of ``iterations`` graph iterations under blocking factor
    ``batch`` executes ``passes`` macro-passes; in pass ``i`` every task
    runs ``counts[i]`` logical firings atomically.  The tail pass covers
    the remainder when ``iterations`` is not a multiple of ``batch``, so
    token production is exact, never rounded up.
    """

    def __init__(self, iterations: int, batch: int) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        full, tail = divmod(iterations, batch)
        self.iterations = iterations
        self.batch = batch
        self.counts: List[int] = [batch] * full + ([tail] if tail else [])

    @property
    def passes(self) -> int:
        return len(self.counts)


class _BatchedTaskMixin:
    """Shared burst/cost plumbing of the batch-aware SPI tasks.

    ``batch_counts`` is the per-macro-pass firing count list of a
    :class:`BatchSchedule` (``None`` means classic one-firing-at-a-time
    execution); ``pe_class`` prices each dispatch; ``pe`` receives the
    batching counters.  Each task advances its private pass cursor once
    per execution — all tasks of a program run in lockstep, so the
    cursor always names the current macro-pass.
    """

    def _init_batch(
        self,
        batch_counts: Optional[Sequence[int]],
        pe_class: PEClass,
        pe: Optional[ProcessingElement],
    ) -> None:
        self.batch_counts = list(batch_counts) if batch_counts else None
        self.pe_class = pe_class
        self._pe = pe
        self._pass = 0
        #: program entries this task occupies per macro-pass (= its
        #: actor's repetitions on the PE); set by the runtime after
        #: program assembly
        self.occurrences = 1
        self._executions = 0

    @property
    def burst(self) -> int:
        """Logical firings this execution runs atomically."""
        if self.batch_counts is None:
            return 1
        return self.batch_counts[min(self._pass, len(self.batch_counts) - 1)]

    def _charge(self, native_cycles: Sequence[int]) -> int:
        """Duration of one dispatch over the burst, recording counters."""
        burst = len(native_cycles)
        if burst > 1 and self._pe is not None:
            self._pe.record_batched_dispatch(
                burst, self.pe_class.dispatch_cycles_saved(burst)
            )
        return self.pe_class.batch_cycles(native_cycles)

    def _advance_pass(self) -> None:
        # The pass cursor may only move after the task's *last*
        # occurrence in the program pass, or an actor with repetitions
        # > 1 would read the tail burst mid-pass and under-fire.
        self._executions += 1
        if self._executions >= self.occurrences:
            self._executions = 0
            self._pass += 1


def payload_nbytes(tokens: List, default_token_bytes: int) -> int:
    """Wire size of a token list (packed tokens know their own size)."""
    total = 0
    for token in tokens:
        if isinstance(token, PackedToken):
            total += token.nbytes
        else:
            total += default_token_bytes
    return total


class LocalFifo:
    """The run-time buffer of one same-PE edge of the SPI-inserted graph."""

    def __init__(self, edge: Edge) -> None:
        self.edge = edge
        if edge.initial_tokens is not None:
            initial = list(edge.initial_tokens)
        else:
            initial = [None] * edge.delay
        self.tokens: Deque = deque(initial)
        self.high_water = len(self.tokens)
        #: woken on every push (unblocks a starved consumer)
        self.waitset = Waitset(f"fifo:{edge.name}")

    def __len__(self) -> int:
        return len(self.tokens)

    def push(self, values: List) -> None:
        self.tokens.extend(values)
        if len(self.tokens) > self.high_water:
            self.high_water = len(self.tokens)
        self.waitset.wake()

    def pop(self, count: int) -> List:
        if len(self.tokens) < count:
            raise RuntimeError(
                f"fifo {self.edge.name}: popping {count} of "
                f"{len(self.tokens)} tokens"
            )
        return [self.tokens.popleft() for _ in range(count)]


def normalize_port_fifos(fifos: Dict[str, object]) -> Dict[str, List[LocalFifo]]:
    """Normalise ``port name -> fifo-or-list-of-fifos`` to branch lists.

    A gather/reduce sink port (or broadcast/scatter source port) owns one
    :class:`LocalFifo` per member edge; branch lists are kept in
    ``Edge.branch_index`` order so assembly and slicing are deterministic.
    """
    normalized: Dict[str, List[LocalFifo]] = {}
    for name, value in fifos.items():
        branch = list(value) if isinstance(value, (list, tuple)) else [value]
        branch.sort(key=lambda f: f.edge.branch_index)
        normalized[name] = branch
    return normalized


def assemble_port_tokens(port_name: str, popped: List[tuple]) -> List:
    """Combine per-branch pops ``[(edge, values), ...]`` for one input port."""
    if len(popped) == 1 and (
        popped[0][0].connection is None
        or popped[0][0].connection.kind != "reduce"
    ):
        return popped[0][1]
    connection = popped[0][0].connection
    if connection is None:
        raise RuntimeError(
            f"port {port_name!r} has {len(popped)} in-edges but no "
            f"owning connection"
        )
    return connection.assemble([values for _, values in popped])


class ComputationTask(_BatchedTaskMixin):
    """One dispatch of a dataflow computation actor on its PE.

    Inputs and outputs map port names to :class:`LocalFifo` objects (or
    branch-ordered lists of them, for ports shared by a collective
    connection): SPI insertion guarantees that computation actors only
    ever touch same-PE edges.

    Classic execution runs one firing per dispatch.  Under a batched
    (blocked) schedule the dispatch covers the macro-pass burst: it
    consumes ``burst * rate`` tokens atomically, runs every sub-firing
    of the burst in logical firing order (bit-identical token streams),
    and its duration is the PE class's amortized dispatch cost.
    """

    def __init__(
        self,
        actor: Actor,
        inputs: Dict[str, object],
        outputs: Dict[str, object],
        batch_counts: Optional[Sequence[int]] = None,
        pe_class: PEClass = GPP,
        pe: Optional[ProcessingElement] = None,
    ) -> None:
        self.actor = actor
        self.name = f"fire:{actor.name}"
        self.inputs = normalize_port_fifos(inputs)
        self.outputs = normalize_port_fifos(outputs)
        self.firing_index = 0
        self._init_batch(batch_counts, pe_class, pe)
        self._staged: Optional[List[Dict[str, List]]] = None

    def ready(self, now: int) -> bool:
        burst = self.burst
        return all(
            len(fifo) >= burst * fifo.edge.cons_rate
            for branch in self.inputs.values()
            for fifo in branch
        )

    def blocked_reason(self, now: int) -> Optional[str]:
        """Why this firing cannot start (None when it can)."""
        burst = self.burst
        starved = []
        for branch in self.inputs.values():
            for fifo in branch:
                need = burst * fifo.edge.cons_rate
                if len(fifo) < need:
                    starved.append(
                        f"{fifo.edge.name!r} (has {len(fifo)}, needs {need})"
                    )
        if starved:
            return "starved on " + ", ".join(starved)
        return None

    def wait_on(self, now: int) -> List[Waitset]:
        """Waitsets of the resources currently blocking the guard."""
        burst = self.burst
        return [
            fifo.waitset
            for branch in self.inputs.values()
            for fifo in branch
            if len(fifo) < burst * fifo.edge.cons_rate
        ]

    def start(self, now: int) -> int:
        burst = self.burst
        staged: List[Dict[str, List]] = []
        native: List[int] = []
        for i in range(burst):
            consumed: Dict[str, List] = {}
            for port_name, branch in self.inputs.items():
                popped = [
                    (fifo.edge, fifo.pop(fifo.edge.cons_rate))
                    for fifo in branch
                ]
                consumed[port_name] = assemble_port_tokens(port_name, popped)
            staged.append(consumed)
            native.append(
                self.actor.execution_cycles(self.firing_index + i, consumed)
            )
        self._staged = staged
        return self._charge(native)

    def finish(self, now: int) -> None:
        assert self._staged is not None
        for consumed in self._staged:
            produced = self.actor.fire(self.firing_index, consumed)
            for port_name, branch in self.outputs.items():
                values = produced[port_name]
                for fifo in branch:
                    connection = fifo.edge.connection
                    if connection is not None:
                        fifo.push(
                            connection.produced_tokens(fifo.edge, values)
                        )
                    else:
                        fifo.push(list(values))
            self.firing_index += 1
        self._staged = None
        self._advance_pass()


class SpiInitTask:
    """SPI_init: one-time per-PE channel initialisation.

    Appears first in every PE's program; charges :data:`INIT_CYCLES`
    on its first execution and is free afterwards (the hardware module
    initialises pointers and link state once, then idles).
    """

    def __init__(self, pe_index: int) -> None:
        self.name = f"spi_init:PE{pe_index}"
        self._done = False

    def ready(self, now: int) -> bool:
        return True

    def start(self, now: int) -> int:
        if self._done:
            return 0
        return INIT_CYCLES

    def finish(self, now: int) -> None:
        self._done = True


class SpiSendTask(_BatchedTaskMixin):
    """SPI_send: forwards one message worth of tokens onto the transport.

    Guard: the producer-side FIFO holds a full message *and* the
    protocol allows sending (UBS credit).  The PE is occupied for the
    header-assembly/injection cycles (the actor's cycle model from
    :mod:`repro.spi.library`); the data transfer itself then proceeds
    concurrently with the PE, serialized by the transport (dedicated
    link, shared bus, or ordered-transaction slot).

    A batched dispatch forwards the whole burst: it needs ``burst``
    messages of tokens and ``burst`` send credits up front, then puts
    ``burst`` separate wire messages on the transport in firing order —
    message count and token streams stay identical to sequential
    execution; only the dispatch timing amortizes.
    """

    def __init__(
        self,
        actor: Actor,
        channel: SpiChannel,
        in_fifo: LocalFifo,
        sim: Simulator,
        interconnect: Interconnect,
        transport=None,
        observer=None,
        batch_counts: Optional[Sequence[int]] = None,
        pe_class: PEClass = GPP,
        pe: Optional[ProcessingElement] = None,
    ) -> None:
        self.actor = actor
        self.name = f"{actor.name}"
        self.channel = channel
        self.in_fifo = in_fifo
        self.sim = sim
        self.interconnect = interconnect
        self.transport = transport
        self.observer = observer
        self.rate = actor.port("in").rate
        self.firing_index = 0
        self._init_batch(batch_counts, pe_class, pe)
        self._staged: Optional[List[List]] = None

    def ready(self, now: int) -> bool:
        burst = self.burst
        return len(
            self.in_fifo
        ) >= burst * self.rate and self.channel.flow.can_send_n(burst)

    def blocked_reason(self, now: int) -> Optional[str]:
        """Why this send cannot start (None when it can)."""
        burst = self.burst
        if len(self.in_fifo) < burst * self.rate:
            return (
                f"starved on {self.in_fifo.edge.name!r} "
                f"(has {len(self.in_fifo)}, needs {burst * self.rate})"
            )
        if not self.channel.flow.can_send_n(burst):
            return (
                f"waiting for ack credit on channel "
                f"{self.channel.edge.name!r}"
            )
        return None

    def wait_on(self, now: int) -> List[Waitset]:
        """Waitsets of the resources currently blocking the guard."""
        burst = self.burst
        waitsets = []
        if len(self.in_fifo) < burst * self.rate:
            waitsets.append(self.in_fifo.waitset)
        if not self.channel.flow.can_send_n(burst):
            waitsets.append(self.channel.space_waitset)
        return waitsets

    def start(self, now: int) -> int:
        burst = self.burst
        staged: List[List] = []
        native: List[int] = []
        for i in range(burst):
            tokens = self.in_fifo.pop(self.rate)
            self.channel.on_send()
            staged.append(tokens)
            native.append(
                self.actor.execution_cycles(
                    self.firing_index + i, {"in": tokens}
                )
            )
        self._staged = staged
        return self._charge(native)

    def finish(self, now: int) -> None:
        assert self._staged is not None
        staged = self._staged
        self._staged = None
        self._advance_pass()
        for tokens in staged:
            self.firing_index += 1
            self._launch(now, tokens)

    def _launch(self, now: int, tokens: List) -> None:
        nbytes = payload_nbytes(tokens, self.channel.token_bytes)
        message = make_data_message(
            edge_id=self.channel.edge.edge_id,
            payload=tokens,
            payload_bytes=nbytes,
            dynamic=self.channel.dynamic,
        )
        channel = self.channel

        def deliver() -> None:
            channel.deliver(message)
            self.sim.notify()

        if self.transport is not None:
            self.transport.send(
                channel_key=self.channel.edge.name,
                src_pe=self.channel.src_pe,
                dst_pe=self.channel.dst_pe,
                nbytes=message.wire_bytes,
                now=now,
                deliver=deliver,
            )
        else:
            link = self.interconnect.link(
                self.channel.src_pe, self.channel.dst_pe
            )
            start, arrival = link.reserve(now, message.wire_bytes)
            if self.observer is not None:
                self.observer.message(
                    channel=self.channel.edge.name,
                    kind="data",
                    src_pe=self.channel.src_pe,
                    dst_pe=self.channel.dst_pe,
                    nbytes=message.wire_bytes,
                    requested=now,
                    started=start,
                    arrived=arrival,
                )
            self.sim.schedule_delivery(
                arrival, deliver, ("data", self.channel.edge.name)
            )


class SpiCollectiveSendTask(_BatchedTaskMixin):
    """One collective (broadcast/scatter) SPI_send serving k branches.

    The task fires **once** per producer firing: it pops one message
    worth of tokens, delivers local branches straight into their
    consumer FIFOs and hands every remote branch to the transport as one
    *collective* transfer — the transport shares the wire payload across
    branches bound for the same destination (point-to-point) or across
    the whole fan-out (bus), and accounts the avoided bytes in its
    ``wire_bytes_saved`` counter.  Flow control stays per-branch: the
    guard requires every remote branch's window to be open, and each
    branch channel records its own delivery/ack traffic, so BBS/UBS
    bounds and the resync solver keep working per channel instance.
    """

    def __init__(
        self,
        actor: Actor,
        branches: List[tuple],
        local_branches: List[LocalFifo],
        in_fifo: LocalFifo,
        sim: Simulator,
        interconnect: Interconnect,
        transport=None,
        observer=None,
        group_key: Optional[str] = None,
        batch_counts: Optional[Sequence[int]] = None,
        pe_class: PEClass = GPP,
        pe: Optional[ProcessingElement] = None,
    ) -> None:
        #: branches: [(member_edge, SpiChannel)] in branch order
        self.actor = actor
        self.name = f"{actor.name}"
        self.branches = sorted(
            branches, key=lambda item: item[0].branch_index
        )
        self.local_branches = sorted(
            local_branches, key=lambda fifo: fifo.edge.branch_index
        )
        self.in_fifo = in_fifo
        self.sim = sim
        self.interconnect = interconnect
        self.transport = transport
        self.observer = observer
        self.rate = actor.port("in").rate
        self.group_key = group_key or actor.name
        connections = {
            id(edge.connection): edge.connection
            for edge, _ in self.branches
        }
        for fifo in self.local_branches:
            connections[id(fifo.edge.connection)] = fifo.edge.connection
        if len(connections) != 1:
            raise ValueError(
                f"collective send {actor.name}: branches belong to "
                f"{len(connections)} connections, expected exactly 1"
            )
        self.connection = next(iter(connections.values()))
        self.shared_payload = self.connection.kind == "broadcast"
        self.firing_index = 0
        self._init_batch(batch_counts, pe_class, pe)
        self._staged: Optional[List[List]] = None

    def ready(self, now: int) -> bool:
        burst = self.burst
        return len(self.in_fifo) >= burst * self.rate and all(
            channel.flow.can_send_n(burst) for _, channel in self.branches
        )

    def blocked_reason(self, now: int) -> Optional[str]:
        burst = self.burst
        if len(self.in_fifo) < burst * self.rate:
            return (
                f"starved on {self.in_fifo.edge.name!r} "
                f"(has {len(self.in_fifo)}, needs {burst * self.rate})"
            )
        closed = [
            channel.edge.name
            for _, channel in self.branches
            if not channel.flow.can_send_n(burst)
        ]
        if closed:
            return "waiting for ack credit on " + ", ".join(
                repr(name) for name in closed
            )
        return None

    def wait_on(self, now: int) -> List[Waitset]:
        burst = self.burst
        waitsets = []
        if len(self.in_fifo) < burst * self.rate:
            waitsets.append(self.in_fifo.waitset)
        waitsets.extend(
            channel.space_waitset
            for _, channel in self.branches
            if not channel.flow.can_send_n(burst)
        )
        return waitsets

    def start(self, now: int) -> int:
        burst = self.burst
        staged: List[List] = []
        native: List[int] = []
        for i in range(burst):
            tokens = self.in_fifo.pop(self.rate)
            for _, channel in self.branches:
                channel.on_send()
            staged.append(tokens)
            native.append(
                self.actor.execution_cycles(
                    self.firing_index + i, {"in": tokens}
                )
            )
        self._staged = staged
        return self._charge(native)

    def finish(self, now: int) -> None:
        assert self._staged is not None
        staged = self._staged
        self._staged = None
        self._advance_pass()
        for tokens in staged:
            self.firing_index += 1
            self._launch(now, tokens)

    def _launch(self, now: int, tokens: List) -> None:
        connection = self.connection
        for fifo in self.local_branches:
            fifo.push(connection.produced_tokens(fifo.edge, tokens))
        if not self.branches:
            return
        sim = self.sim
        parts = []
        for edge, channel in self.branches:
            payload = connection.produced_tokens(edge, tokens)
            nbytes = payload_nbytes(payload, channel.token_bytes)
            message = make_data_message(
                edge_id=channel.edge.edge_id,
                payload=payload,
                payload_bytes=nbytes,
                dynamic=channel.dynamic,
            )

            def deliver(channel=channel, message=message) -> None:
                channel.deliver(message)
                sim.notify()

            parts.append(
                (
                    channel.edge.name,
                    channel.dst_pe,
                    message.wire_bytes,
                    deliver,
                )
            )
        if self.transport is not None:
            self.transport.send_collective(
                group_key=self.group_key,
                src_pe=self.branches[0][1].src_pe,
                parts=parts,
                now=now,
                shared_payload=self.shared_payload,
            )
            return
        # legacy link path: per-branch independent transfers
        for (channel_key, dst_pe, nbytes, deliver), (_, channel) in zip(
            parts, self.branches
        ):
            link = self.interconnect.link(channel.src_pe, dst_pe)
            start, arrival = link.reserve(now, nbytes)
            if self.observer is not None:
                self.observer.message(
                    channel=channel_key,
                    kind="data",
                    src_pe=channel.src_pe,
                    dst_pe=dst_pe,
                    nbytes=nbytes,
                    requested=now,
                    started=start,
                    arrived=arrival,
                )
            self.sim.schedule_delivery(
                arrival, deliver, ("data", channel_key)
            )


class SyncTokenPool:
    """Run-time state of one *added* resynchronization edge.

    Resynchronization may add new synchronization edges ``(u, v, d)``
    whose job is to make several acknowledgment edges redundant (paper
    §4.1: "the number of additional synchronizations that become
    redundant exceeds the number of new synchronizations that are
    added").  At run time the edge is a counting semaphore shipped by
    zero-payload messages: ``u``'s completion number ``k`` deposits a
    token (after the link latency), ``v``'s firing number ``k`` consumes
    one, and ``d`` tokens are pre-deposited — exactly eq. 3's
    ``start(v, k) >= end(u, k - d)``.
    """

    def __init__(self, name: str, initial: int) -> None:
        if initial < 0:
            raise ValueError("initial sync tokens must be >= 0")
        self.name = name
        self.tokens = initial
        self.messages_sent = 0
        #: most tokens ever held at once (observability)
        self.high_water = initial
        #: failed availability checks — the consumer retried on empty
        self.empty_stalls = 0
        #: woken on every deposit (unblocks a guarded consumer)
        self.waitset = Waitset(f"pool:{name}")

    def available(self) -> bool:
        if self.tokens > 0:
            return True
        self.empty_stalls += 1
        return False

    def consume(self) -> None:
        if self.tokens <= 0:
            raise RuntimeError(
                f"sync pool {self.name!r}: consumed with zero tokens"
            )
        self.tokens -= 1

    def deposit(self) -> None:
        self.tokens += 1
        if self.tokens > self.high_water:
            self.high_water = self.tokens
        self.waitset.wake()


class SyncedTask:
    """Decorator adding resynchronization guards/notifications to a task.

    ``guards`` are pools this task must consume from before firing;
    ``notify`` lists ``(pool, link supplier)`` pairs it deposits into on
    completion (via a sync message on the interconnect).  For multirate
    tasks, ``phase``/``period`` select which invocations of the shared
    underlying task participate (sync edges constrain one invocation per
    iteration).
    """

    def __init__(
        self,
        inner,
        sim: Simulator,
        guards: Optional[List["SyncTokenPool"]] = None,
        notifications: Optional[List[tuple]] = None,
        phase: int = 0,
        period: int = 1,
        observer=None,
    ) -> None:
        if period < 1 or not 0 <= phase < period:
            raise ValueError("need 0 <= phase < period")
        self.inner = inner
        self.sim = sim
        self.guards = list(guards or [])
        #: list of (pool, link, wire_bytes) triples
        self.notifications = list(notifications or [])
        self.phase = phase
        self.period = period
        self.observer = observer
        self._count = 0

    @property
    def name(self) -> str:
        return f"sync:{self.inner.name}"

    def _participates(self) -> bool:
        return self._count % self.period == self.phase

    def ready(self, now: int) -> bool:
        if self._participates() and not all(
            pool.available() for pool in self.guards
        ):
            return False
        return self.inner.ready(now)

    def blocked_reason(self, now: int) -> Optional[str]:
        """Why this task cannot start (None when it can).

        Inspects ``pool.tokens`` directly rather than calling
        :meth:`SyncTokenPool.available`, which counts stalls for the
        observability layer — diagnosis must not perturb metrics.
        """
        if self._participates():
            empty = [pool.name for pool in self.guards if pool.tokens <= 0]
            if empty:
                return "waiting for sync tokens on " + ", ".join(
                    repr(name) for name in empty
                )
        inner_reason = getattr(self.inner, "blocked_reason", None)
        if inner_reason is not None:
            return inner_reason(now)
        return None

    def wait_on(self, now: int) -> List[Waitset]:
        """Waitsets of the resources currently blocking the guard.

        Like :meth:`blocked_reason`, inspects ``pool.tokens`` directly
        instead of calling :meth:`SyncTokenPool.available` so diagnosis
        does not perturb the stall metrics.
        """
        waitsets = []
        if self._participates():
            waitsets.extend(
                pool.waitset for pool in self.guards if pool.tokens <= 0
            )
        inner_wait = getattr(self.inner, "wait_on", None)
        if inner_wait is not None:
            # the inner hook names only currently-blocking resources,
            # so it contributes nothing when the inner guard holds
            waitsets.extend(inner_wait(now))
        return waitsets

    def start(self, now: int):
        if self._participates():
            for pool in self.guards:
                pool.consume()
        return self.inner.start(now)

    def finish(self, now: int) -> None:
        self.inner.finish(now)
        if self._participates():
            for pool, link, wire_bytes in self.notifications:
                start, arrival = link.reserve(now, wire_bytes)
                pool.messages_sent += 1
                if self.observer is not None:
                    self.observer.message(
                        channel=pool.name,
                        kind="resync",
                        src_pe=link.src_pe,
                        dst_pe=link.dst_pe,
                        nbytes=wire_bytes,
                        requested=now,
                        started=start,
                        arrived=arrival,
                    )
                sim = self.sim

                def deliver(pool=pool) -> None:
                    pool.deposit()
                    sim.notify()

                self.sim.schedule_delivery(
                    arrival, deliver, ("resync", pool.name)
                )
        self._count += 1


class SpiReceiveTask(_BatchedTaskMixin):
    """SPI_receive: decodes one arrived message into the consumer FIFO.

    For UBS channels with acknowledgments enabled, completion also
    launches the ack message on the reverse link ("implemented as
    separate messages", paper §4.1); resynchronization may have disabled
    it (``channel.flow.uses_credits`` false), in which case the message
    never exists — that is the optimization the ablation bench measures.

    A batched dispatch waits for the whole burst of messages, then
    decodes them in arrival order and acknowledges each one separately —
    message and ack counts match sequential execution exactly.
    """

    def __init__(
        self,
        actor: Actor,
        channel: SpiChannel,
        out_fifo: LocalFifo,
        sim: Simulator,
        interconnect: Interconnect,
        observer=None,
        batch_counts: Optional[Sequence[int]] = None,
        pe_class: PEClass = GPP,
        pe: Optional[ProcessingElement] = None,
    ) -> None:
        self.actor = actor
        self.name = f"{actor.name}"
        self.channel = channel
        self.out_fifo = out_fifo
        self.sim = sim
        self.interconnect = interconnect
        self.observer = observer
        self.firing_index = 0
        self._init_batch(batch_counts, pe_class, pe)

    def ready(self, now: int) -> bool:
        return self.channel.receive_ready_n(self.burst)

    def blocked_reason(self, now: int) -> Optional[str]:
        """Why this receive cannot start (None when it can)."""
        burst = self.burst
        if not self.channel.receive_ready_n(burst):
            need = f" {burst} messages" if burst > 1 else " a message"
            return (
                f"waiting for{need} on channel "
                f"{self.channel.edge.name!r}"
            )
        return None

    def wait_on(self, now: int) -> List[Waitset]:
        """Waitsets of the resources currently blocking the guard."""
        return [self.channel.data_waitset]

    def start(self, now: int) -> int:
        # The messages are consumed at completion; duration models header
        # decode plus payload copy into the consumer-side buffer.
        burst = self.burst
        native = [
            self.actor.execution_cycles(self.firing_index + i, {})
            for i in range(burst)
        ]
        return self._charge(native)

    def finish(self, now: int) -> None:
        burst = self.burst
        self._advance_pass()
        for _ in range(burst):
            self._accept_one(now)

    def _accept_one(self, now: int) -> None:
        message = self.channel.accept()
        self.firing_index += 1
        if message.is_dynamic and message.size_field != len(message.payload):
            raise RuntimeError(
                f"channel {self.channel.edge.name}: dynamic header size "
                f"field {message.size_field} does not match payload "
                f"length {len(message.payload)}"
            )
        self.out_fifo.push(list(message.payload))
        if self.channel.flow.uses_credits:
            ack = make_ack_message(self.channel.edge.edge_id)
            link = self.interconnect.link(
                self.channel.dst_pe, self.channel.src_pe
            )
            start, arrival = link.reserve(now, ack.wire_bytes)
            if self.observer is not None:
                self.observer.message(
                    channel=self.channel.edge.name,
                    kind="ack",
                    src_pe=self.channel.dst_pe,
                    dst_pe=self.channel.src_pe,
                    nbytes=ack.wire_bytes,
                    requested=now,
                    started=start,
                    arrived=arrival,
                )
            channel = self.channel

            def deliver_ack() -> None:
                channel.deliver(ack)
                self.sim.notify()

            self.sim.schedule_delivery(
                arrival, deliver_ack, ("ack", self.channel.edge.name)
            )
