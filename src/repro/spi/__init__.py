"""The Signal Passing Interface: messages, protocols, library, runtime."""

from repro.spi.actors import (
    ComputationTask,
    LocalFifo,
    SpiInitTask,
    SpiReceiveTask,
    SpiSendTask,
)
from repro.spi.channel import ChannelStats, SpiChannel
from repro.spi.library import (
    RECV_PREFIX,
    SEND_PREFIX,
    SpiActorNames,
    SpiInsertion,
    insert_spi_actors,
)
from repro.spi.message import (
    ACK_BYTES,
    DYNAMIC_HEADER_BYTES,
    STATIC_HEADER_BYTES,
    Message,
    MessageKind,
    make_ack_message,
    make_data_message,
)
from repro.spi.protocols import ChannelFlowControl, Protocol, ProtocolConfig
from repro.spi.runtime import ChannelPlan, RunResult, SpiConfig, SpiSystem

__all__ = [
    "ComputationTask",
    "LocalFifo",
    "SpiInitTask",
    "SpiReceiveTask",
    "SpiSendTask",
    "ChannelStats",
    "SpiChannel",
    "RECV_PREFIX",
    "SEND_PREFIX",
    "SpiActorNames",
    "SpiInsertion",
    "insert_spi_actors",
    "ACK_BYTES",
    "DYNAMIC_HEADER_BYTES",
    "STATIC_HEADER_BYTES",
    "Message",
    "MessageKind",
    "make_ack_message",
    "make_data_message",
    "ChannelFlowControl",
    "Protocol",
    "ProtocolConfig",
    "ChannelPlan",
    "RunResult",
    "SpiConfig",
    "SpiSystem",
]
