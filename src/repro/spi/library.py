"""The SPI library: communication-actor insertion and protocol selection.

"For a given dataflow graph, SPI inserts a pair of special actors
(called SPI actors) for sending and receiving associated IPC data
whenever an edge exists between actors that are assigned to two
different processors" (paper §2).  This module performs that insertion
and the compile-time per-channel decisions:

* which SPI component handles the edge — **SPI_static** for edges whose
  traffic is fixed before run time, **SPI_dynamic** for VTS-converted
  edges (variable packed-token sizes);
* which buffer protocol the channel uses — **BBS** when the
  synchronization structure bounds the buffer (the eq. 2 feedback
  bound), **UBS** with an acknowledgment window otherwise.

The insertion is a pure graph transformation; the run-time behaviour of
the inserted actors lives in :mod:`repro.spi.actors`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dataflow.graph import DataflowGraph, Edge, GraphError
from repro.dataflow.vts import VtsConversion
from repro.mapping.partition import Partition

__all__ = [
    "SpiActorNames",
    "SpiInsertion",
    "insert_spi_actors",
    "SEND_PREFIX",
    "RECV_PREFIX",
]

SEND_PREFIX = "spi_send"
RECV_PREFIX = "spi_recv"

#: cycles one SPI_send / SPI_receive firing spends on header handling
#: (assemble or decode one or two header words in hardware)
SEND_OVERHEAD_CYCLES = 2
RECV_OVERHEAD_CYCLES = 2
#: extra cycle for the size field of a dynamic header
DYNAMIC_HEADER_EXTRA_CYCLES = 1


@dataclass(frozen=True)
class SpiActorNames:
    """Names of the actor pair inserted for one interprocessor edge."""

    send: str
    recv: str


@dataclass
class SpiInsertion:
    """Result of inserting SPI actors into an application graph.

    Attributes
    ----------
    graph:
        The transformed graph: each cross-PE edge ``x -> y`` became
        ``x -> SPI_send -> SPI_recv -> y``; the middle edge is the IPC
        edge the channel will carry.
    partition:
        Extended partition covering the SPI actors (each inherits the
        PE of the dataflow actor it serves).
    channels:
        ``original edge name -> (ipc edge, SpiActorNames, dynamic?)``.
    """

    graph: DataflowGraph
    partition: Partition
    channels: Dict[str, Tuple[Edge, SpiActorNames, bool]] = field(
        default_factory=dict
    )

    @property
    def ipc_edges(self) -> List[Edge]:
        return [entry[0] for entry in self.channels.values()]

    def spi_actor_names(self) -> List[str]:
        names: List[str] = []
        for _, pair, _ in self.channels.values():
            names.extend((pair.send, pair.recv))
        return names

    def is_spi_actor(self, name: str) -> bool:
        return name.startswith((SEND_PREFIX, RECV_PREFIX))


def _send_cycles(payload_words: int, dynamic: bool) -> int:
    cycles = SEND_OVERHEAD_CYCLES + payload_words
    if dynamic:
        cycles += DYNAMIC_HEADER_EXTRA_CYCLES
    return cycles


def _recv_cycles(payload_words: int, dynamic: bool) -> int:
    cycles = RECV_OVERHEAD_CYCLES + payload_words
    if dynamic:
        cycles += DYNAMIC_HEADER_EXTRA_CYCLES
    return cycles


def insert_spi_actors(
    graph: DataflowGraph,
    partition: Partition,
    conversion: Optional[VtsConversion] = None,
    word_bytes: int = 4,
) -> SpiInsertion:
    """Insert an SPI_send/SPI_receive pair on every interprocessor edge.

    ``graph`` must be static (VTS-converted when the application had
    dynamic edges; pass the :class:`VtsConversion` so the inserted
    channels know which edges use the SPI_dynamic component).

    Rates of the inserted actors preserve message granularity: SPI_send
    fires once per producer firing (consuming and forwarding
    ``prod(e)`` tokens as one message) and SPI_receive fires once per
    message; the original edge delay moves to the receiver side
    (``SPI_recv -> y``), which is where initial tokens physically live
    in a distributed-memory implementation.
    """
    if graph.is_dynamic:
        raise GraphError(
            "insert_spi_actors needs a static graph; run vts_convert first"
        )
    converted_names = set(conversion.edge_info) if conversion is not None else set()

    new_graph = DataflowGraph(f"{graph.name}_spi")
    for actor in graph.actors:
        clone = new_graph.actor(
            actor.name,
            kernel=actor.kernel,
            cycles=actor.cycles,
            params=dict(actor.params),
        )
        for port in actor.ports:
            new_port = clone.add_port(
                type(port)(port.name, port.direction, port.rate, port.token_bytes)
            )
            if graph.is_interface_port(port):
                new_graph.mark_interface(new_port)

    assignment = dict(partition.assignment)
    channels: Dict[str, Tuple[Edge, SpiActorNames, bool]] = {}

    for index, edge in enumerate(graph.edges):
        src_pe = partition.assignment[edge.src_actor.name]
        dst_pe = partition.assignment[edge.snk_actor.name]
        new_src = new_graph.get_actor(edge.src_actor.name)
        new_snk = new_graph.get_actor(edge.snk_actor.name)
        if src_pe == dst_pe:
            local = new_graph.connect(
                (new_src, edge.source.name),
                (new_snk, edge.sink.name),
                delay=edge.delay,
                name=edge.name,
            )
            if edge.initial_tokens is not None:
                local.set_initial_tokens(edge.initial_tokens)
            continue

        rate = edge.source.rate
        cons = edge.sink.rate
        tok_bytes = edge.token_bytes
        dynamic = edge.name in converted_names
        payload_words = max(1, (rate * tok_bytes + word_bytes - 1) // word_bytes)

        send_name = f"{SEND_PREFIX}_{index}_{edge.src_actor.name}"
        recv_name = f"{RECV_PREFIX}_{index}_{edge.snk_actor.name}"
        send_actor = new_graph.actor(
            send_name,
            cycles=_send_cycles(payload_words, dynamic),
            params={"spi_role": "send", "origin_edge": edge.name,
                    "dynamic": dynamic},
        )
        recv_actor = new_graph.actor(
            recv_name,
            cycles=_recv_cycles(payload_words, dynamic),
            params={"spi_role": "recv", "origin_edge": edge.name,
                    "dynamic": dynamic},
        )
        send_actor.add_input("in", rate=rate, token_bytes=tok_bytes)
        send_actor.add_output("out", rate=rate, token_bytes=tok_bytes)
        recv_actor.add_input("in", rate=rate, token_bytes=tok_bytes)
        recv_actor.add_output("out", rate=rate, token_bytes=tok_bytes)

        new_graph.connect(
            (new_src, edge.source.name), (send_actor, "in"),
            name=f"{edge.name}.to_send",
        )
        ipc_edge = new_graph.connect(
            (send_actor, "out"), (recv_actor, "in"),
            name=f"{edge.name}.ipc",
        )
        delivered = new_graph.connect(
            (recv_actor, "out"), (new_snk, edge.sink.name),
            delay=edge.delay,
            name=f"{edge.name}.to_consumer",
        )
        if edge.initial_tokens is not None:
            delivered.set_initial_tokens(edge.initial_tokens)

        assignment[send_name] = src_pe
        assignment[recv_name] = dst_pe
        channels[edge.name] = (
            ipc_edge,
            SpiActorNames(send=send_name, recv=recv_name),
            dynamic,
        )

    new_graph.validate()
    new_partition = Partition(new_graph, partition.n_pes, assignment)
    return SpiInsertion(
        graph=new_graph, partition=new_partition, channels=channels
    )
