"""The SPI library: communication-actor insertion and protocol selection.

"For a given dataflow graph, SPI inserts a pair of special actors
(called SPI actors) for sending and receiving associated IPC data
whenever an edge exists between actors that are assigned to two
different processors" (paper §2).  This module performs that insertion
and the compile-time per-channel decisions:

* which SPI component handles the edge — **SPI_static** for edges whose
  traffic is fixed before run time, **SPI_dynamic** for VTS-converted
  edges (variable packed-token sizes);
* which buffer protocol the channel uses — **BBS** when the
  synchronization structure bounds the buffer (the eq. 2 feedback
  bound), **UBS** with an acknowledgment window otherwise.

The insertion is a pure graph transformation; the run-time behaviour of
the inserted actors lives in :mod:`repro.spi.actors`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dataflow.graph import Connection, DataflowGraph, Edge, GraphError
from repro.dataflow.vts import VtsConversion
from repro.mapping.partition import Partition

__all__ = [
    "SpiActorNames",
    "CollectiveSendGroup",
    "SpiInsertion",
    "insert_spi_actors",
    "SEND_PREFIX",
    "RECV_PREFIX",
]

SEND_PREFIX = "spi_send"
RECV_PREFIX = "spi_recv"

#: cycles one SPI_send / SPI_receive firing spends on header handling
#: (assemble or decode one or two header words in hardware)
SEND_OVERHEAD_CYCLES = 2
RECV_OVERHEAD_CYCLES = 2
#: extra cycle for the size field of a dynamic header
DYNAMIC_HEADER_EXTRA_CYCLES = 1


@dataclass(frozen=True)
class SpiActorNames:
    """Names of the actor pair inserted for one interprocessor edge."""

    send: str
    recv: str


@dataclass(frozen=True)
class CollectiveSendGroup:
    """One producer-side collective (broadcast/scatter) send actor.

    The send actor fires **once** per producer firing and serves every
    branch of the connection: remote branches each own a member IPC edge
    (and a per-branch channel keyed by the original member edge name),
    local branches are delivered directly into their consumer FIFOs.
    The runtime turns this into an ``SpiCollectiveSendTask`` that makes
    one shared-payload transport transfer per destination (or one bus
    transaction) instead of one send firing per branch.
    """

    name: str                 #: original connection name
    kind: str                 #: "broadcast" | "scatter"
    send_actor: str
    #: original member edge name per branch (branch order)
    origin_edges: Tuple[str, ...]
    #: origin edge names of the remote (channel-owning) branches
    remote_origins: Tuple[str, ...]


@dataclass
class SpiInsertion:
    """Result of inserting SPI actors into an application graph.

    Attributes
    ----------
    graph:
        The transformed graph: each cross-PE edge ``x -> y`` became
        ``x -> SPI_send -> SPI_recv -> y``; the middle edge is the IPC
        edge the channel will carry.
    partition:
        Extended partition covering the SPI actors (each inherits the
        PE of the dataflow actor it serves).
    channels:
        ``original edge name -> (ipc edge, SpiActorNames, dynamic?)``.
    """

    graph: DataflowGraph
    partition: Partition
    channels: Dict[str, Tuple[Edge, SpiActorNames, bool]] = field(
        default_factory=dict
    )
    #: send-actor name -> producer-side collective group (broadcast/scatter
    #: connections with at least one cross-PE branch)
    collective_sends: Dict[str, CollectiveSendGroup] = field(
        default_factory=dict
    )

    @property
    def ipc_edges(self) -> List[Edge]:
        return [entry[0] for entry in self.channels.values()]

    def spi_actor_names(self) -> List[str]:
        names: List[str] = []
        for _, pair, _ in self.channels.values():
            names.extend((pair.send, pair.recv))
        return names

    def is_spi_actor(self, name: str) -> bool:
        return name.startswith((SEND_PREFIX, RECV_PREFIX))


def _send_cycles(payload_words: int, dynamic: bool) -> int:
    cycles = SEND_OVERHEAD_CYCLES + payload_words
    if dynamic:
        cycles += DYNAMIC_HEADER_EXTRA_CYCLES
    return cycles


def _recv_cycles(payload_words: int, dynamic: bool) -> int:
    cycles = RECV_OVERHEAD_CYCLES + payload_words
    if dynamic:
        cycles += DYNAMIC_HEADER_EXTRA_CYCLES
    return cycles


def insert_spi_actors(
    graph: DataflowGraph,
    partition: Partition,
    conversion: Optional[VtsConversion] = None,
    word_bytes: int = 4,
) -> SpiInsertion:
    """Insert an SPI_send/SPI_receive pair on every interprocessor edge.

    ``graph`` must be static (VTS-converted when the application had
    dynamic edges; pass the :class:`VtsConversion` so the inserted
    channels know which edges use the SPI_dynamic component).

    Rates of the inserted actors preserve message granularity: SPI_send
    fires once per producer firing (consuming and forwarding
    ``prod(e)`` tokens as one message) and SPI_receive fires once per
    message; the original edge delay moves to the receiver side
    (``SPI_recv -> y``), which is where initial tokens physically live
    in a distributed-memory implementation.
    """
    if graph.is_dynamic:
        raise GraphError(
            "insert_spi_actors needs a static graph; run vts_convert first"
        )
    converted_names = set(conversion.edge_info) if conversion is not None else set()

    new_graph = DataflowGraph(f"{graph.name}_spi")
    for actor in graph.actors:
        clone = new_graph.actor(
            actor.name,
            kernel=actor.kernel,
            cycles=actor.cycles,
            params=dict(actor.params),
        )
        for port in actor.ports:
            new_port = clone.add_port(
                type(port)(port.name, port.direction, port.rate, port.token_bytes)
            )
            if graph.is_interface_port(port):
                new_graph.mark_interface(new_port)

    assignment = dict(partition.assignment)
    channels: Dict[str, Tuple[Edge, SpiActorNames, bool]] = {}
    collective_sends: Dict[str, CollectiveSendGroup] = {}
    collective_edge_ids = {
        id(e)
        for conn in graph.connections
        if conn.is_collective
        for e in conn.edges
    }

    for index, edge in enumerate(graph.edges):
        if id(edge) in collective_edge_ids:
            continue
        src_pe = partition.assignment[edge.src_actor.name]
        dst_pe = partition.assignment[edge.snk_actor.name]
        new_src = new_graph.get_actor(edge.src_actor.name)
        new_snk = new_graph.get_actor(edge.snk_actor.name)
        if src_pe == dst_pe:
            local = new_graph.connect(
                (new_src, edge.source.name),
                (new_snk, edge.sink.name),
                delay=edge.delay,
                name=edge.name,
            )
            if edge.initial_tokens is not None:
                local.set_initial_tokens(edge.initial_tokens)
            continue

        rate = edge.source.rate
        cons = edge.sink.rate
        tok_bytes = edge.token_bytes
        dynamic = edge.name in converted_names
        payload_words = max(1, (rate * tok_bytes + word_bytes - 1) // word_bytes)

        send_name = f"{SEND_PREFIX}_{index}_{edge.src_actor.name}"
        recv_name = f"{RECV_PREFIX}_{index}_{edge.snk_actor.name}"
        send_actor = new_graph.actor(
            send_name,
            cycles=_send_cycles(payload_words, dynamic),
            params={"spi_role": "send", "origin_edge": edge.name,
                    "dynamic": dynamic},
        )
        recv_actor = new_graph.actor(
            recv_name,
            cycles=_recv_cycles(payload_words, dynamic),
            params={"spi_role": "recv", "origin_edge": edge.name,
                    "dynamic": dynamic},
        )
        send_actor.add_input("in", rate=rate, token_bytes=tok_bytes)
        send_actor.add_output("out", rate=rate, token_bytes=tok_bytes)
        recv_actor.add_input("in", rate=rate, token_bytes=tok_bytes)
        recv_actor.add_output("out", rate=rate, token_bytes=tok_bytes)

        new_graph.connect(
            (new_src, edge.source.name), (send_actor, "in"),
            name=f"{edge.name}.to_send",
        )
        ipc_edge = new_graph.connect(
            (send_actor, "out"), (recv_actor, "in"),
            name=f"{edge.name}.ipc",
        )
        delivered = new_graph.connect(
            (recv_actor, "out"), (new_snk, edge.sink.name),
            delay=edge.delay,
            name=f"{edge.name}.to_consumer",
        )
        if edge.initial_tokens is not None:
            delivered.set_initial_tokens(edge.initial_tokens)

        assignment[send_name] = src_pe
        assignment[recv_name] = dst_pe
        channels[edge.name] = (
            ipc_edge,
            SpiActorNames(send=send_name, recv=recv_name),
            dynamic,
        )

    for cidx, conn in enumerate(graph.connections):
        if not conn.is_collective:
            continue
        _insert_collective(
            new_graph,
            conn,
            cidx,
            partition,
            assignment,
            channels,
            collective_sends,
            word_bytes,
        )

    new_graph.validate()
    new_partition = Partition(new_graph, partition.n_pes, assignment)
    return SpiInsertion(
        graph=new_graph,
        partition=new_partition,
        channels=channels,
        collective_sends=collective_sends,
    )


def _clone_port_ref(new_graph: DataflowGraph, port) -> tuple:
    actor = new_graph.get_actor(port.actor.name)
    return (actor, port.name)


def _insert_collective(
    new_graph: DataflowGraph,
    conn: Connection,
    cidx: int,
    partition: Partition,
    assignment: Dict[str, int],
    channels: Dict[str, Tuple[Edge, SpiActorNames, bool]],
    collective_sends: Dict[str, CollectiveSendGroup],
    word_bytes: int,
) -> None:
    """Lower one collective connection into the SPI-inserted graph.

    Producer-side collectives (broadcast/scatter) get **one** send actor
    for the whole connection; each cross-PE branch gets its own receive
    actor and channel, local branches are fed directly by the send actor.
    Consumer-side collectives (gather/reduce) carry genuinely distinct
    per-branch payloads, so each cross-PE branch gets an ordinary
    send/receive pair and the member edges are regrouped into a
    gather/reduce connection at the consumer port (the consumer's
    firing task performs the concatenation/combination).
    """
    pe_of = partition.assignment
    branch_delays = [e.delay for e in conn.edges]
    branch_initial = [e.initial_tokens for e in conn.edges]

    if conn.kind in (Connection.BROADCAST, Connection.SCATTER):
        producer_port = conn.edges[0].source
        src_pe = pe_of[producer_port.actor.name]
        remote = [
            e for e in conn.edges if pe_of[e.snk_actor.name] != src_pe
        ]
        if not remote:
            # every consumer is local: replicate the connection as-is
            rebuilt = _rebuild_collective(new_graph, conn, branch_delays)
            for new_edge, initial in zip(rebuilt.edges, branch_initial):
                if initial is not None:
                    new_edge.set_initial_tokens(initial)
            return

        rate = producer_port.rate
        tok_bytes = producer_port.token_bytes
        payload_words = max(
            1, (rate * tok_bytes + word_bytes - 1) // word_bytes
        )
        send_name = f"{SEND_PREFIX}_c{cidx}_{producer_port.actor.name}"
        send_actor = new_graph.actor(
            send_name,
            cycles=_send_cycles(payload_words, False),
            params={
                "spi_role": "send",
                "origin_edge": conn.name,
                "dynamic": False,
                "collective": conn.kind,
            },
        )
        send_actor.add_input("in", rate=rate, token_bytes=tok_bytes)
        send_actor.add_output("out", rate=rate, token_bytes=tok_bytes)
        assignment[send_name] = src_pe
        new_graph.connect(
            _clone_port_ref(new_graph, producer_port),
            (send_actor, "in"),
            name=f"{conn.name}.to_send",
        )

        targets = []
        fan_delays = []
        recv_names: Dict[int, str] = {}
        for edge in conn.edges:
            dst_pe = pe_of[edge.snk_actor.name]
            branch_rate = edge.prod_rate
            branch_words = max(
                1, (branch_rate * tok_bytes + word_bytes - 1) // word_bytes
            )
            if dst_pe == src_pe:
                targets.append(_clone_port_ref(new_graph, edge.sink))
                fan_delays.append(edge.delay)
                continue
            recv_name = (
                f"{RECV_PREFIX}_c{cidx}_b{edge.branch_index}_"
                f"{edge.snk_actor.name}"
            )
            recv_actor = new_graph.actor(
                recv_name,
                cycles=_recv_cycles(branch_words, False),
                params={
                    "spi_role": "recv",
                    "origin_edge": edge.name,
                    "dynamic": False,
                    "collective": conn.kind,
                },
            )
            recv_actor.add_input(
                "in", rate=branch_rate, token_bytes=tok_bytes
            )
            recv_actor.add_output(
                "out", rate=branch_rate, token_bytes=tok_bytes
            )
            assignment[recv_name] = dst_pe
            recv_names[edge.branch_index] = recv_name
            targets.append((recv_actor, "in"))
            fan_delays.append(0)
            delivered = new_graph.connect(
                (recv_actor, "out"),
                _clone_port_ref(new_graph, edge.sink),
                delay=edge.delay,
                name=f"{edge.name}.to_consumer",
            )
            if edge.initial_tokens is not None:
                delivered.set_initial_tokens(edge.initial_tokens)

        if conn.kind == Connection.BROADCAST:
            fanout = new_graph.add_broadcast(
                (send_actor, "out"),
                targets,
                delays=fan_delays,
                name=f"{conn.name}.fanout",
            )
        else:
            fanout = new_graph.add_scatter(
                (send_actor, "out"),
                targets,
                chunks=list(conn.chunks) if conn.chunks else None,
                delays=fan_delays,
                name=f"{conn.name}.fanout",
            )
        remote_origins = []
        for member, edge in zip(fanout.edges, conn.edges):
            dst_pe = pe_of[edge.snk_actor.name]
            if dst_pe == src_pe:
                member.name = edge.name
                if edge.initial_tokens is not None:
                    member.set_initial_tokens(edge.initial_tokens)
                continue
            member.name = f"{edge.name}.ipc"
            channels[edge.name] = (
                member,
                SpiActorNames(
                    send=send_name, recv=recv_names[edge.branch_index]
                ),
                False,
            )
            remote_origins.append(edge.name)
        collective_sends[send_name] = CollectiveSendGroup(
            name=conn.name,
            kind=conn.kind,
            send_actor=send_name,
            origin_edges=tuple(e.name for e in conn.edges),
            remote_origins=tuple(remote_origins),
        )
        return

    # gather / reduce: per-branch point-to-point chains regrouped into a
    # consumer-side collective connection
    consumer_port = conn.edges[0].sink
    dst_pe = pe_of[consumer_port.actor.name]
    tok_bytes = consumer_port.token_bytes
    sources = []
    source_delays = []
    renames: Dict[int, str] = {}
    for edge in conn.edges:
        src_pe = pe_of[edge.src_actor.name]
        if src_pe == dst_pe:
            sources.append(_clone_port_ref(new_graph, edge.source))
            source_delays.append(edge.delay)
            renames[edge.branch_index] = edge.name
            continue
        rate = edge.source.rate
        branch_words = max(
            1, (rate * tok_bytes + word_bytes - 1) // word_bytes
        )
        send_name = (
            f"{SEND_PREFIX}_c{cidx}_b{edge.branch_index}_"
            f"{edge.src_actor.name}"
        )
        recv_name = (
            f"{RECV_PREFIX}_c{cidx}_b{edge.branch_index}_"
            f"{edge.snk_actor.name}"
        )
        send_actor = new_graph.actor(
            send_name,
            cycles=_send_cycles(branch_words, False),
            params={
                "spi_role": "send",
                "origin_edge": edge.name,
                "dynamic": False,
                "collective": conn.kind,
            },
        )
        recv_actor = new_graph.actor(
            recv_name,
            cycles=_recv_cycles(branch_words, False),
            params={
                "spi_role": "recv",
                "origin_edge": edge.name,
                "dynamic": False,
                "collective": conn.kind,
            },
        )
        send_actor.add_input("in", rate=rate, token_bytes=tok_bytes)
        send_actor.add_output("out", rate=rate, token_bytes=tok_bytes)
        recv_actor.add_input("in", rate=rate, token_bytes=tok_bytes)
        recv_actor.add_output("out", rate=rate, token_bytes=tok_bytes)
        assignment[send_name] = src_pe
        assignment[recv_name] = dst_pe
        new_graph.connect(
            _clone_port_ref(new_graph, edge.source),
            (send_actor, "in"),
            name=f"{edge.name}.to_send",
        )
        ipc_edge = new_graph.connect(
            (send_actor, "out"),
            (recv_actor, "in"),
            name=f"{edge.name}.ipc",
        )
        channels[edge.name] = (
            ipc_edge,
            SpiActorNames(send=send_name, recv=recv_name),
            False,
        )
        sources.append((recv_actor, "out"))
        source_delays.append(edge.delay)
        renames[edge.branch_index] = f"{edge.name}.to_consumer"

    sink_ref = _clone_port_ref(new_graph, consumer_port)
    if conn.kind == Connection.GATHER:
        regrouped = new_graph.add_gather(
            sources,
            sink_ref,
            chunks=list(conn.chunks) if conn.chunks else None,
            delays=source_delays,
            name=f"{conn.name}.assemble",
        )
    else:
        regrouped = new_graph.add_reduce(
            sources,
            sink_ref,
            combine=conn.combine,
            delays=source_delays,
            name=f"{conn.name}.assemble",
        )
    for member, edge, initial in zip(
        regrouped.edges, conn.edges, branch_initial
    ):
        member.name = renames[edge.branch_index]
        if initial is not None:
            member.set_initial_tokens(initial)


def _rebuild_collective(
    new_graph: DataflowGraph, conn: Connection, delays
) -> Connection:
    """Replicate an all-local collective connection onto cloned ports."""
    if conn.kind == Connection.BROADCAST:
        return new_graph.add_broadcast(
            _clone_port_ref(new_graph, conn.edges[0].source),
            [_clone_port_ref(new_graph, e.sink) for e in conn.edges],
            delays=delays,
            name=conn.name,
        )
    if conn.kind == Connection.SCATTER:
        return new_graph.add_scatter(
            _clone_port_ref(new_graph, conn.edges[0].source),
            [_clone_port_ref(new_graph, e.sink) for e in conn.edges],
            chunks=list(conn.chunks) if conn.chunks else None,
            delays=delays,
            name=conn.name,
        )
    if conn.kind == Connection.GATHER:
        return new_graph.add_gather(
            [_clone_port_ref(new_graph, e.source) for e in conn.edges],
            _clone_port_ref(new_graph, conn.edges[0].sink),
            chunks=list(conn.chunks) if conn.chunks else None,
            delays=delays,
            name=conn.name,
        )
    return new_graph.add_reduce(
        [_clone_port_ref(new_graph, e.source) for e in conn.edges],
        _clone_port_ref(new_graph, conn.edges[0].sink),
        combine=conn.combine,
        delays=delays,
        name=conn.name,
    )
