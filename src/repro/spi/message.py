"""SPI wire formats (paper §5.1).

The SPI message header is deliberately minimal — this is the heart of
the paper's "careful specialization" claim versus MPI:

* **SPI_static**: the header consists of *the ID of the interprocessor
  edge only* — one word.  Everything else (datatype, length, endpoints)
  is known at compile time from the dataflow graph, so it never travels.
* **SPI_dynamic**: the header additionally carries the *message size*
  (the packed-token size of the VTS model) — the paper's recommended
  alternative to delimiter scanning, which "can be expensive" on FPGA.
* **acknowledgments** are separate messages (paper §4.1: "they are
  implemented as separate messages") carrying just the edge ID.

Message datatype is *not* included in any header: "in our targeted
implementations, the message datatype for all communication edges is
known at compile-time, and hence need not be included".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

__all__ = [
    "WORD_BYTES",
    "STATIC_HEADER_BYTES",
    "DYNAMIC_HEADER_BYTES",
    "ACK_BYTES",
    "MessageKind",
    "Message",
    "make_data_message",
    "make_ack_message",
]

#: the fabric word size of the HDL library (32-bit streaming links)
WORD_BYTES = 4
#: SPI_static header: edge ID word
STATIC_HEADER_BYTES = WORD_BYTES
#: SPI_dynamic header: edge ID word + size word
DYNAMIC_HEADER_BYTES = 2 * WORD_BYTES
#: an acknowledgment message: edge ID word
ACK_BYTES = WORD_BYTES


class MessageKind:
    DATA = "data"
    ACK = "ack"


@dataclass(frozen=True)
class Message:
    """One message on a link.

    ``payload`` carries the real token values (the simulator is
    functional as well as timed); ``payload_bytes`` is the wire size of
    the data portion, and ``size_field`` the packed-token size carried in
    a dynamic header (``None`` for static messages and acks).
    """

    kind: str
    edge_id: int
    payload: Tuple = ()
    payload_bytes: int = 0
    size_field: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in (MessageKind.DATA, MessageKind.ACK):
            raise ValueError(f"unknown message kind {self.kind!r}")
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")
        if self.kind == MessageKind.ACK and self.payload:
            raise ValueError("acknowledgments carry no payload")

    @property
    def header_bytes(self) -> int:
        if self.kind == MessageKind.ACK:
            return ACK_BYTES
        if self.size_field is not None:
            return DYNAMIC_HEADER_BYTES
        return STATIC_HEADER_BYTES

    @property
    def wire_bytes(self) -> int:
        """Total bytes on the link: header + payload."""
        return self.header_bytes + self.payload_bytes

    @property
    def is_dynamic(self) -> bool:
        return self.size_field is not None


def make_data_message(
    edge_id: int,
    payload: Sequence,
    payload_bytes: int,
    dynamic: bool,
) -> Message:
    """Build a data message; dynamic messages carry their size field."""
    return Message(
        kind=MessageKind.DATA,
        edge_id=edge_id,
        payload=tuple(payload),
        payload_bytes=payload_bytes,
        size_field=len(payload) if dynamic else None,
    )


def make_ack_message(edge_id: int) -> Message:
    """Build an acknowledgment for the given interprocessor edge."""
    return Message(kind=MessageKind.ACK, edge_id=edge_id)
