"""The SPI system: compile a dataflow application, execute it, report.

:class:`SpiSystem` is the public entry point of the reproduction.  It
performs the whole SPI methodology in one ``compile`` call:

1. **VTS conversion** when the application graph has dynamic-rate edges
   (paper §3) — dynamic edges become SPI_dynamic channels;
2. **SPI actor insertion** on every interprocessor edge (paper §2);
3. **self-timed schedule** construction (paper §2);
4. **IPC / synchronization graph** derivation (paper §4.1);
5. **protocol selection** per channel: BBS when the synchronization
   structure bounds the buffer, else UBS with an ack window (paper §4);
6. **resynchronization**: redundant synchronization/acknowledgment
   edges are pruned; channels whose ack edge proved redundant run
   ack-free (paper §4.1);

and then executes the compiled system cycle-by-cycle on the platform
simulator (``run``), or prices it on the FPGA resource model
(``fpga_report``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dataflow.graph import Actor, DataflowGraph, Edge, GraphError
from repro.dataflow.vts import VtsConversion, vts_convert
from repro.mapping.ipc_graph import build_ipc_graph
from repro.mapping.mcm import McmResult, maximum_cycle_mean_result
from repro.mapping.partition import Partition
from repro.mapping.resync import ResynchronizationResult, resynchronize
from repro.mapping.selftimed import (
    SelfTimedSchedule,
    build_selftimed_schedule,
    max_feasible_batch,
)
from repro.mapping.sync_graph import SynchronizationGraph, derive_sync_graph
from repro.mapping.timed_graph import EdgeKind, TimedEdge
from repro.platform.clock import DEFAULT_CLOCK, ClockDomain
from repro.platform.fpga import (
    FpgaDevice,
    ResourceVector,
    UtilizationReport,
    VIRTEX4_SX35,
)
from repro.platform.interconnect import Interconnect, LinkSpec
from repro.platform.pe import ProcessingElement
from repro.platform.simulator import PESequencer, Simulator
from repro.platform.trace import TraceRecorder
from repro.spi import resources as spi_resources
from repro.spi.actors import (
    BatchSchedule,
    ComputationTask,
    LocalFifo,
    SpiCollectiveSendTask,
    SpiInitTask,
    SpiReceiveTask,
    SpiSendTask,
    SyncTokenPool,
    SyncedTask,
)
from repro.spi.message import ACK_BYTES
from repro.spi.channel import SpiChannel
from repro.spi.library import SpiInsertion, insert_spi_actors
from repro.spi.protocols import Protocol, ProtocolConfig

__all__ = ["SpiConfig", "ChannelPlan", "RunResult", "SpiSystem"]


@dataclass(frozen=True)
class SpiConfig:
    """Compile-time knobs of an SPI system."""

    clock: ClockDomain = DEFAULT_CLOCK
    link_spec: LinkSpec = field(default_factory=LinkSpec)
    #: apply resynchronization (redundant sync/ack pruning + additions)
    resynchronize: bool = True
    #: UBS acknowledgment window, in messages
    ubs_window: int = 4
    #: BBS is chosen only when the static bound is at most this many messages
    max_bbs_messages: int = 1024
    word_bytes: int = 4
    #: protocol policy: "auto" picks BBS whenever the synchronization
    #: structure bounds the buffer (paper §4); "always_ubs" forces the
    #: UBS protocol everywhere, which is how the resynchronization
    #: ablations expose acknowledgment traffic
    protocol_policy: str = "auto"
    #: data transport: "p2p" dedicated links (the SPI default),
    #: "shared_bus" FCFS-arbitrated single bus, "ordered_bus" the
    #: ordered-transaction model (grant order fixed at compile time).
    #: Control traffic (acks, resynchronization messages) always rides
    #: dedicated control links.
    transport: str = "p2p"
    #: per-transfer arbitration cost of the shared bus
    bus_arbitration_cycles: int = 2

    def __post_init__(self) -> None:
        if self.protocol_policy not in ("auto", "always_ubs"):
            raise ValueError(
                f"unknown protocol_policy {self.protocol_policy!r}"
            )
        if self.ubs_window < 1:
            raise ValueError("ubs_window must be >= 1")
        if self.transport not in ("p2p", "shared_bus", "ordered_bus"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.bus_arbitration_cycles < 0:
            raise ValueError("bus_arbitration_cycles must be >= 0")


@dataclass
class ChannelPlan:
    """Compile-time decisions for one interprocessor edge."""

    origin_edge_name: str
    ipc_edge: Edge
    send_actor: str
    recv_actor: str
    src_pe: int
    dst_pe: int
    dynamic: bool
    protocol: str
    capacity_messages: int
    message_payload_bytes: int
    acks_enabled: bool

    @property
    def buffer_bytes(self) -> int:
        return self.capacity_messages * self.message_payload_bytes


@dataclass
class RunResult:
    """Everything observable from one simulated execution."""

    cycles: int
    execution_time_us: float
    iterations: int
    pe_stats: List[ProcessingElement]
    data_messages: int
    ack_messages: int
    payload_bytes: int
    header_bytes: int
    ack_bytes: int
    buffer_high_water: Dict[str, int]
    fifo_high_water: Dict[str, int]
    iteration_period_cycles: float
    #: zero-payload messages carrying *added* resynchronization edges
    resync_messages: int = 0
    resync_bytes: int = 0
    #: populated when ``run(..., trace=True)``: every task execution
    #: interval, renderable as a Gantt chart or CSV
    trace: Optional["TraceRecorder"] = None
    #: populated when ``run(..., metrics=True)``: the full metrics JSON
    #: document (see :mod:`repro.observability.exporters` for its schema)
    metrics: Optional[Dict] = None
    #: populated when ``run(..., metrics=True)``: every inter-PE message
    #: (data / ack / resync) with request, wire-start and arrival times
    message_log: Optional[List] = None
    #: steady-state detection/extrapolation report
    #: (:class:`repro.platform.steady_state.SteadyStateReport`; None
    #: when detection was not armed for this run)
    steady_state: Optional[object] = None
    #: firings executed through the compiled fast-lane
    #: (:class:`repro.platform.compiled.CompiledFiring` tasks)
    compiled_firings: int = 0
    #: wire transfers performed by collective (broadcast/scatter)
    #: connections — one per physical link use, not per consumer
    collective_messages: int = 0
    #: per-consumer deliveries those collective transfers fanned out to
    fan_out_deliveries: int = 0
    #: logical bytes (sum over consumers) minus wire bytes actually
    #: carried — the saving from sharing one payload per link
    wire_bytes_saved: int = 0
    #: effective global blocking factor of the run (1 = unbatched)
    batch: int = 1
    #: actor firings executed inside batched (burst > 1) dispatches
    batched_firings: int = 0
    #: batched dispatches issued across all PEs
    batch_dispatches: int = 0
    #: accelerator launch overhead amortized away by batching
    amortized_dispatch_cycles_saved: int = 0

    @property
    def steady_state_detected_at(self) -> Optional[int]:
        if self.steady_state is None:
            return None
        return self.steady_state.detected_at

    @property
    def extrapolated_iterations(self) -> int:
        if self.steady_state is None:
            return 0
        return self.steady_state.extrapolated_iterations

    @property
    def detected_period_iterations(self) -> Optional[int]:
        if self.steady_state is None:
            return None
        return self.steady_state.period_iterations

    @property
    def detected_period_cycles(self) -> Optional[int]:
        if self.steady_state is None:
            return None
        return self.steady_state.period_cycles

    @property
    def sync_messages(self) -> int:
        """Messages whose only job is synchronization: acknowledgments
        plus the messages of added resynchronization edges."""
        return self.ack_messages + self.resync_messages

    @property
    def overhead_bytes(self) -> int:
        return self.header_bytes + self.ack_bytes + self.resync_bytes

    @property
    def wire_bytes(self) -> int:
        return (
            self.payload_bytes
            + self.header_bytes
            + self.ack_bytes
            + self.resync_bytes
        )

    def speedup_against(self, baseline: "RunResult") -> float:
        if self.execution_time_us == 0:
            raise ZeroDivisionError("zero execution time")
        return baseline.execution_time_us / self.execution_time_us


class SpiSystem:
    """A compiled SPI application, ready to simulate or to price."""

    def __init__(
        self,
        source_graph: DataflowGraph,
        partition: Partition,
        config: SpiConfig,
        conversion: Optional[VtsConversion],
        insertion: SpiInsertion,
        schedule: SelfTimedSchedule,
        sync_graph: SynchronizationGraph,
        channel_plans: Dict[str, ChannelPlan],
        resync_result: Optional[ResynchronizationResult],
        cache=None,
        analysis_key: Optional[str] = None,
        structure_key: Optional[str] = None,
        batch: int = 1,
    ) -> None:
        self.source_graph = source_graph
        self.partition = partition
        self.config = config
        self.conversion = conversion
        self.insertion = insertion
        self.schedule = schedule
        self.sync_graph = sync_graph
        self.channel_plans = channel_plans
        self.resync_result = resync_result
        #: effective global blocking factor: the partition's requested
        #: batch clamped to what the schedule's token dependencies admit
        self.batch = batch
        #: optional repro.service AnalysisCache (duck-typed: anything
        #: with the same repetitions/mcm/resynchronize surface works)
        self._analysis_cache = cache
        self._analysis_key = analysis_key
        self._structure_key = structure_key
        self._task_repetitions: Optional[Dict[str, int]] = None
        self._mcm_result: Optional[McmResult] = None

    # -- compilation -------------------------------------------------------

    @classmethod
    def compile(
        cls,
        graph: DataflowGraph,
        partition: Partition,
        config: Optional[SpiConfig] = None,
        cache=None,
    ) -> "SpiSystem":
        """Run the full SPI methodology on ``graph`` + ``partition``.

        ``cache`` is an optional content-addressed analysis cache (see
        :class:`repro.service.AnalysisCache`): repetitions vectors,
        channel-plan decisions, resynchronization solutions and the MCM
        bound are looked up by graph content instead of recomputed.
        Graphs without canonical content (callable cycle models) bypass
        it transparently.
        """
        config = config or SpiConfig()
        graph.validate()

        analysis_key = structure_key = None
        if cache is not None:
            analysis_key = cache.key_for(graph, partition, config)
            structure_key = cache.structure_key_for(graph, partition, config)

        conversion: Optional[VtsConversion] = None
        static_graph = graph
        if graph.is_dynamic:
            conversion = vts_convert(graph)
            static_graph = conversion.graph

        static_partition = Partition(
            static_graph,
            partition.n_pes,
            dict(partition.assignment),
            pe_classes=dict(partition.pe_classes),
            batch_size=partition.batch_size,
        )
        insertion = insert_spi_actors(
            static_graph,
            static_partition,
            conversion=conversion,
            word_bytes=config.word_bytes,
        )
        schedule = build_selftimed_schedule(insertion.graph, insertion.partition)
        ipc_graph = build_ipc_graph(schedule)
        sync_graph = derive_sync_graph(ipc_graph)

        # Blocked (batched) execution: the partition's requested batch
        # (a no-op on all-gpp platforms) clamped to the largest blocking
        # factor the schedule's token dependencies admit — a feedback
        # loop with few delay tokens forces the clamp back to 1.
        batch = max_feasible_batch(schedule, partition.requested_batch)

        decisions = None
        if cache is not None:
            decisions = cache.channel_decisions(analysis_key)
        channel_plans = cls._plan_channels(
            insertion,
            schedule,
            sync_graph,
            config,
            decisions=decisions,
            batch=batch,
        )

        # UBS channels synchronize backwards through ack edges; add them to
        # the synchronization graph so resynchronization can judge them.
        # Only single-invocation channels qualify: sync-graph delays
        # count iterations between the #0 invocations, so a multirate
        # window of W *messages* (M > 1 per iteration) has no faithful
        # iteration-granularity edge — any delay large enough to be
        # implied by the ack protocol is too large to safely license its
        # removal.  Those channels simply keep their acks.
        # A batched run macro-groups every PE's task executions, so the
        # iteration-granularity sync edges below (and the resync solver
        # that judges them) would misprice the burst: acks stay as the
        # protocol chose them and resynchronization is skipped entirely.
        judged_acks = set()
        for plan in channel_plans.values():
            if batch > 1:
                break
            if plan.protocol != Protocol.UBS:
                continue
            if cls._messages_per_iteration(schedule, plan.send_actor) != 1:
                continue
            send_task, recv_task = cls._channel_tasks(schedule, plan)
            sync_graph.add_edge(
                TimedEdge(
                    src=recv_task,
                    snk=send_task,
                    delay=plan.capacity_messages,
                    kind=EdgeKind.ACK,
                    origin_edge=plan.origin_edge_name,
                )
            )
            judged_acks.add(plan.origin_edge_name)

        resync_result: Optional[ResynchronizationResult] = None
        if config.resynchronize and batch == 1:
            if cache is not None:
                resync_result = cache.resynchronize(analysis_key, sync_graph)
            else:
                resync_result = resynchronize(sync_graph)
            surviving_acks = {
                e.origin_edge
                for e in resync_result.graph.edges
                if e.kind == EdgeKind.ACK
            }
            for plan in channel_plans.values():
                if (
                    plan.protocol == Protocol.UBS
                    and plan.origin_edge_name in judged_acks
                ):
                    plan.acks_enabled = plan.origin_edge_name in surviving_acks

        if cache is not None and decisions is None:
            # Store the *final* decisions (post-resync ack adjustment):
            # replaying them is only sound together with the cached
            # resynchronization solution, which shares this key.
            cache.store_channel_decisions(analysis_key, channel_plans)

        return cls(
            source_graph=graph,
            partition=partition,
            config=config,
            conversion=conversion,
            insertion=insertion,
            schedule=schedule,
            sync_graph=sync_graph,
            channel_plans=channel_plans,
            resync_result=resync_result,
            cache=cache,
            analysis_key=analysis_key,
            structure_key=structure_key,
            batch=batch,
        )

    @staticmethod
    def _channel_tasks(
        schedule: SelfTimedSchedule, plan: ChannelPlan
    ) -> Tuple[str, str]:
        """Task names of the channel's send/recv actors in the task graph.

        For multirate graphs the SPI actors expand into invocations; the
        ack-window constraint is attached between the first invocations
        (a conservative representative).
        """
        tasks = set(schedule.task_pe)
        if plan.send_actor in tasks:
            return plan.send_actor, plan.recv_actor
        return f"{plan.send_actor}#0", f"{plan.recv_actor}#0"

    @staticmethod
    def _messages_per_iteration(
        schedule: SelfTimedSchedule, send_actor: str
    ) -> int:
        """How many messages the channel carries per graph iteration.

        Each invocation of the SPI_send actor launches exactly one
        message, so the count equals the actor's HSDF repetition count
        (1 when the schedule kept the unexpanded name).
        """
        if send_actor in schedule.task_pe:
            return 1
        prefix = send_actor + "#"
        return sum(1 for task in schedule.task_pe if task.startswith(prefix))

    @classmethod
    def _plan_channels(
        cls,
        insertion: SpiInsertion,
        schedule: SelfTimedSchedule,
        sync_graph: SynchronizationGraph,
        config: SpiConfig,
        decisions: Optional[Dict[str, Dict[str, object]]] = None,
        batch: int = 1,
    ) -> Dict[str, ChannelPlan]:
        """Select protocol and capacity for every interprocessor edge.

        The BBS bound follows the feedback argument of paper eq. 2: the
        number of unconsumed messages on IPC edge ``e`` in self-timed
        execution never exceeds ``delay(e)`` plus the minimum total
        delay of a directed synchronization path from the receiver back
        to the sender (the path that throttles the sender).  When no
        such path exists — or the bound is impractically large — SPI
        falls back to UBS with an acknowledgment window.

        ``decisions`` replays previously cached per-channel decisions,
        skipping the all-pairs min-delay analysis entirely; channels
        missing from it (stale entry) fall back to the computed path.

        ``batch`` is the effective global blocking factor: a batched
        sender emits its whole burst before the receiver's batched
        accept frees a single slot, so every per-iteration term of the
        BBS bound scales by ``batch`` and the UBS ack window must admit
        at least one full burst.
        """
        rho: Optional[Dict[str, Dict[str, int]]] = (
            None if decisions is not None else sync_graph.min_delay_paths()
        )
        plans: Dict[str, ChannelPlan] = {}
        for origin_name, (ipc_edge, pair, dynamic) in insertion.channels.items():
            src_pe = insertion.partition.assignment[pair.send]
            dst_pe = insertion.partition.assignment[pair.recv]
            send_task, recv_task = cls._channel_tasks(
                schedule,
                ChannelPlan(
                    origin_edge_name=origin_name,
                    ipc_edge=ipc_edge,
                    send_actor=pair.send,
                    recv_actor=pair.recv,
                    src_pe=src_pe,
                    dst_pe=dst_pe,
                    dynamic=dynamic,
                    protocol=Protocol.UBS,
                    capacity_messages=1,
                    message_payload_bytes=1,
                    acks_enabled=False,
                ),
            )
            delay_msgs = ipc_edge.delay // max(1, ipc_edge.prod_rate)
            payload_bytes = ipc_edge.prod_rate * ipc_edge.token_bytes
            msgs_per_iter = cls._messages_per_iteration(schedule, pair.send)

            cached = decisions.get(origin_name) if decisions is not None else None
            if cached is not None:
                plans[origin_name] = ChannelPlan(
                    origin_edge_name=origin_name,
                    ipc_edge=ipc_edge,
                    send_actor=pair.send,
                    recv_actor=pair.recv,
                    src_pe=src_pe,
                    dst_pe=dst_pe,
                    dynamic=dynamic,
                    protocol=cached["protocol"],
                    capacity_messages=cached["capacity_messages"],
                    message_payload_bytes=payload_bytes,
                    acks_enabled=cached["acks_enabled"],
                )
                continue
            if rho is None:
                rho = sync_graph.min_delay_paths()
            feedback = rho.get(recv_task, {}).get(send_task)

            if (
                config.protocol_policy == "auto"
                and feedback is not None
                and 0
                < batch * msgs_per_iter * (feedback + 1) + delay_msgs
                <= config.max_bbs_messages
            ):
                # Sync-graph delays count *iterations* between the #0
                # invocations, while the bound counts *messages*: with a
                # feedback of f iterations the sender can run f + 1
                # iterations (of msgs_per_iter messages each) ahead of
                # the receiver's oldest unfreed slot, plus the initial
                # delay tokens.  The msgs_per_iter'th message of the
                # newest iteration doubles as the in-process +1 slack
                # (the message inside SPI_receive still occupies its
                # slot); for single-rate channels the formula reduces to
                # the familiar feedback + delay + 1.
                protocol = Protocol.BBS
                capacity = batch * msgs_per_iter * (feedback + 1) + delay_msgs
                acks = False
            else:
                protocol = Protocol.UBS
                capacity = max(config.ubs_window, batch * msgs_per_iter)
                acks = True
            plans[origin_name] = ChannelPlan(
                origin_edge_name=origin_name,
                ipc_edge=ipc_edge,
                send_actor=pair.send,
                recv_actor=pair.recv,
                src_pe=src_pe,
                dst_pe=dst_pe,
                dynamic=dynamic,
                protocol=protocol,
                capacity_messages=capacity,
                message_payload_bytes=payload_bytes,
                acks_enabled=acks,
            )
        return plans

    # -- execution ----------------------------------------------------------

    def run(
        self,
        iterations: int = 1,
        max_cycles: Optional[int] = None,
        trace: bool = False,
        metrics: bool = False,
        wakeups: str = "targeted",
        check_lost_wakeups: bool = False,
        steady_state: str = "off",
        compiled: Optional[bool] = None,
        queue: str = "heap",
    ) -> RunResult:
        """Simulate ``iterations`` graph iterations; returns the metrics.

        ``trace=True`` records every task execution interval into
        ``RunResult.trace`` (a :class:`TraceRecorder`) for Gantt/CSV
        inspection.  ``metrics=True`` additionally instruments the whole
        execution path (simulator kernel, transports, channels, sync
        pools) and fills ``RunResult.metrics`` with the validated
        metrics JSON document and ``RunResult.message_log`` with every
        inter-PE message — the inputs of the Chrome-trace and metrics
        exporters in :mod:`repro.observability`.

        ``wakeups`` selects the kernel's parking discipline
        (``"targeted"`` per-resource waitsets, ``"broadcast"`` the
        legacy retry sweep — kept for A/B benchmarking), and
        ``check_lost_wakeups=True`` arms the kernel's lost-wakeup audit
        (used by the conformance oracles).

        ``steady_state`` controls periodic-phase extrapolation (see
        :mod:`repro.platform.steady_state`): ``"off"`` simulates every
        iteration; ``"auto"`` arms detection when the system is
        eligible — state-determined timing (see
        :meth:`steady_state_opaque_actors`), no trace capture, and a
        run long enough to possibly warp — and silently runs
        interpreted otherwise; ``"on"`` forces arming and raises
        :class:`GraphError` for ineligible systems.  A warp requires
        an exact kernel-state recurrence confirmed over a full second
        period with identical counter deltas, so makespan, per-channel
        traffic, occupancy high-water marks and the iteration period
        of an extrapolated run are bit-identical to the fully
        interpreted run.  Kernel-effort counters (events, parks,
        wakeups) and the message log cover only the actually-simulated
        prefix and tail.

        ``compiled`` selects the computation-task implementation:
        ``None``/``True`` uses the pre-resolved
        :class:`~repro.platform.compiled.CompiledFiring` fast-lane
        (semantically identical), ``False`` the interpreted
        :class:`~repro.spi.actors.ComputationTask` (kept for A/B).
        ``queue`` selects the kernel event queue (``"heap"`` or
        ``"calendar"``).
        """
        if iterations < 1:
            raise GraphError("iterations must be >= 1")
        if steady_state not in ("off", "auto", "on"):
            raise GraphError(f"unknown steady_state mode {steady_state!r}")
        arm_steady = False
        if steady_state == "on":
            if trace:
                raise GraphError(
                    "steady_state='on' cannot produce a full trace "
                    "(extrapolated iterations record no task intervals)"
                )
            if self.batch > 1:
                raise GraphError(
                    "steady_state='on' is incompatible with batched "
                    "execution (the tracker's kernel-state recurrence "
                    "is keyed to single-iteration passes)"
                )
            opaque = self.steady_state_opaque_actors()
            if opaque:
                raise GraphError(
                    "steady_state='on' requires state-determined timing; "
                    "these actors have data-dependent timing and do not "
                    f"declare params['timing_periodic']: {sorted(opaque)}"
                )
            arm_steady = True
        elif steady_state == "auto":
            arm_steady = (
                not trace
                and self.batch == 1
                and iterations >= 3
                and not self.steady_state_opaque_actors()
            )
        use_compiled = compiled if compiled is not None else True
        hub = None
        if metrics:
            from repro.observability import ObservabilityHub

            hub = ObservabilityHub()
        sim = Simulator(
            wakeups=wakeups,
            check_lost_wakeups=check_lost_wakeups,
            queue=queue,
        )
        recorder = TraceRecorder() if trace else None
        interconnect = Interconnect(default_spec=self.config.link_spec)
        transport = self._build_transport(sim, interconnect, observer=hub)
        graph = self.insertion.graph

        channels: Dict[str, SpiChannel] = {}
        for plan in self.channel_plans.values():
            config = ProtocolConfig(
                protocol=plan.protocol,
                capacity_tokens=plan.capacity_messages,
                acks_enabled=plan.acks_enabled
                if plan.protocol == Protocol.UBS
                else False,
            )
            # One burst of physical slack: messages may arrive while
            # SPI_receive is still processing its predecessors (a
            # batched receive frees its bytes only at completion, so up
            # to ``batch`` messages are in process at once; batch is 1
            # for unbatched runs).
            capacity_bytes = (
                plan.capacity_messages + self.batch
            ) * plan.message_payload_bytes
            channels[plan.origin_edge_name] = SpiChannel(
                edge=plan.ipc_edge,
                src_pe=plan.src_pe,
                dst_pe=plan.dst_pe,
                config=config,
                dynamic=plan.dynamic,
                token_bytes=plan.ipc_edge.token_bytes,
                recv_capacity_bytes=capacity_bytes,
            )

        ipc_edge_ids = {plan.ipc_edge.edge_id for plan in self.channel_plans.values()}
        fifos: Dict[int, LocalFifo] = {
            edge.edge_id: LocalFifo(edge)
            for edge in graph.edges
            if edge.edge_id not in ipc_edge_ids
        }

        collective_groups = self.insertion.collective_sends
        send_plans = {
            plan.send_actor: plan
            for plan in self.channel_plans.values()
            if plan.send_actor not in collective_groups
        }
        recv_plans = {plan.recv_actor: plan for plan in self.channel_plans.values()}
        # A collective send actor owns several per-branch channels; match
        # each fanout member edge back to its channel via the plan's IPC
        # edge identity.
        channel_by_ipc_edge = {
            plan.ipc_edge.edge_id: channels[plan.origin_edge_name]
            for plan in self.channel_plans.values()
        }

        tasks_by_actor: Dict[str, object] = {}
        compiled_stats = None
        if use_compiled:
            from repro.platform.compiled import CompiledFiring, CompiledStats

            compiled_stats = CompiledStats()

        # Blocked-schedule plumbing: every task on every PE runs the
        # same per-macro-pass burst counts (lockstep), and the PE
        # objects must exist before their tasks so batched dispatches
        # can be accounted to the owning PE.
        batch_counts: Optional[List[int]] = None
        passes = iterations
        if self.batch > 1:
            batch_schedule = BatchSchedule(iterations, self.batch)
            batch_counts = batch_schedule.counts
            passes = batch_schedule.passes
        pe_objects: Dict[int, ProcessingElement] = {
            pe_index: ProcessingElement(
                pe_index, pe_class=self.partition.pe_class_of(pe_index)
            )
            for pe_index in range(self.partition.n_pes)
        }
        pe_assignment = self.insertion.partition.assignment

        def task_for(actor: Actor):
            if actor.name in tasks_by_actor:
                return tasks_by_actor[actor.name]
            owner = pe_objects[pe_assignment[actor.name]]
            batch_kwargs = dict(
                batch_counts=batch_counts,
                pe_class=owner.pe_class,
                pe=owner,
            )
            if actor.name in collective_groups:
                group = collective_groups[actor.name]
                in_edge = graph.in_edges(actor)[0]
                branches = []
                local_branches = []
                for member in graph.out_edges(actor):
                    if member.edge_id in fifos:
                        local_branches.append(fifos[member.edge_id])
                    else:
                        branches.append(
                            (member, channel_by_ipc_edge[member.edge_id])
                        )
                task = SpiCollectiveSendTask(
                    actor,
                    branches,
                    local_branches,
                    fifos[in_edge.edge_id],
                    sim,
                    interconnect,
                    transport=transport,
                    observer=hub,
                    group_key=f"{group.name}.collective",
                    **batch_kwargs,
                )
            elif actor.name in send_plans:
                plan = send_plans[actor.name]
                in_edge = graph.in_edges(actor)[0]
                task = SpiSendTask(
                    actor,
                    channels[plan.origin_edge_name],
                    fifos[in_edge.edge_id],
                    sim,
                    interconnect,
                    transport=transport,
                    observer=hub,
                    **batch_kwargs,
                )
            elif actor.name in recv_plans:
                plan = recv_plans[actor.name]
                out_edge = graph.out_edges(actor)[0]
                task = SpiReceiveTask(
                    actor,
                    channels[plan.origin_edge_name],
                    fifos[out_edge.edge_id],
                    sim,
                    interconnect,
                    observer=hub,
                    **batch_kwargs,
                )
            else:
                # A port may own several member fifos (gather/reduce
                # sinks, all-local broadcast sources) — accumulate lists.
                inputs: Dict[str, List[LocalFifo]] = {}
                for e in graph.in_edges(actor):
                    if e.edge_id in fifos:
                        inputs.setdefault(e.sink.name, []).append(
                            fifos[e.edge_id]
                        )
                outputs: Dict[str, List[LocalFifo]] = {}
                for e in graph.out_edges(actor):
                    if e.edge_id in fifos:
                        outputs.setdefault(e.source.name, []).append(
                            fifos[e.edge_id]
                        )
                if compiled_stats is not None:
                    task = CompiledFiring(
                        actor,
                        inputs,
                        outputs,
                        stats=compiled_stats,
                        **batch_kwargs,
                    )
                else:
                    task = ComputationTask(
                        actor, inputs, outputs, **batch_kwargs
                    )
            tasks_by_actor[actor.name] = task
            return task

        # Instantiate every task up front, then materialise the *added*
        # resynchronization edges as run-time sync-message channels (a
        # counting semaphore fed by zero-payload messages) wrapped
        # around the endpoint tasks.  Without this, disabling the acks
        # those edges made redundant would be unsound.
        for actor in graph.actors:
            task_for(actor)
        sync_pools: List[SyncTokenPool] = []
        if self.resync_result is not None:
            task_reps = self.task_repetitions()
            for added in self.resync_result.added:
                src_task = self.schedule.task_graph.get_actor(added.src)
                snk_task = self.schedule.task_graph.get_actor(added.snk)
                src_origin = src_task.params.get("origin", added.src)
                snk_origin = snk_task.params.get("origin", added.snk)
                src_pe = self.schedule.task_pe[added.src]
                snk_pe = self.schedule.task_pe[added.snk]
                pool = SyncTokenPool(
                    f"resync:{added.src}->{added.snk}", initial=added.delay
                )
                sync_pools.append(pool)
                link = interconnect.link(src_pe, snk_pe)
                tasks_by_actor[src_origin] = SyncedTask(
                    tasks_by_actor[src_origin],
                    sim,
                    notifications=[(pool, link, ACK_BYTES)],
                    phase=src_task.params.get("invocation", 0),
                    period=task_reps[src_origin],
                    observer=hub,
                )
                tasks_by_actor[snk_origin] = SyncedTask(
                    tasks_by_actor[snk_origin],
                    sim,
                    guards=[pool],
                    phase=snk_task.params.get("invocation", 0),
                    period=task_reps[snk_origin],
                )

        pes: List[ProcessingElement] = []
        sequencers: List[PESequencer] = []
        script = self.schedule.firing_script()
        for pe_index in range(self.partition.n_pes):
            entries = script.get(pe_index, [])
            if not entries:
                continue
            pe = pe_objects[pe_index]
            program: List[object] = [SpiInitTask(pe_index)]
            for _task_name, origin in entries:
                program.append(task_for(graph.get_actor(origin)))
            sequencer = PESequencer(
                sim, pe, program, passes, trace=recorder
            )
            pes.append(pe)
            sequencers.append(sequencer)

        if batch_counts is not None:
            # An actor with repetitions > 1 occupies several program
            # entries; its pass cursor must advance only after the last
            # one, so every entry of a macro-pass runs the same burst.
            for sequencer in sequencers:
                entry_counts: Dict[int, int] = {}
                for task in sequencer.program:
                    entry_counts[id(task)] = entry_counts.get(id(task), 0) + 1
                for task in sequencer.program:
                    if hasattr(task, "occurrences"):
                        task.occurrences = entry_counts[id(task)]

        tracker = None
        if arm_steady and sequencers:
            tracker = self._arm_steady_state(
                sim=sim,
                sequencers=sequencers,
                channels=channels,
                fifos=fifos,
                sync_pools=sync_pools,
                interconnect=interconnect,
                transport=transport,
                iterations=iterations,
            )

        for sequencer in sequencers:
            sequencer.begin()
        final = sim.run(max_cycles=max_cycles)

        unfinished = [s for s in sequencers if not s.done]
        if unfinished:
            raise GraphError(
                f"simulation ended with unfinished sequencers: "
                f"{[s.pe.name for s in unfinished]}"
            )

        steady_report = tracker.report if tracker is not None else None
        extra_cycles = (
            steady_report.extrapolated_cycles if steady_report is not None else 0
        )
        total_cycles = final + extra_cycles
        if (
            steady_report is not None
            and steady_report.detected_at is not None
            and not steady_report.hint_used
        ):
            self._store_period_hint(steady_report)

        data_messages = sum(c.stats.data_messages for c in channels.values())
        ack_messages = sum(c.stats.ack_messages for c in channels.values())
        payload_bytes = sum(c.stats.data_bytes for c in channels.values())
        header_bytes = sum(c.stats.header_bytes for c in channels.values())
        ack_bytes = sum(c.stats.ack_bytes for c in channels.values())
        buffer_high = {
            name: channel.recv_buffer.high_water_bytes
            for name, channel in channels.items()
        }
        fifo_high = {
            fifo.edge.name: fifo.high_water for fifo in fifos.values()
        }

        if iterations >= 4 and sequencers and self.batch == 1:
            # Under a warp the simulated finish of the last (reduced)
            # iteration is the true finish of iteration ``iterations``
            # minus the extrapolated cycles, and ``finish_times[1]``
            # predates the warp — so the reconstruction below uses the
            # same integer operands as a fully interpreted run and the
            # float result is bit-identical.
            times = sequencers[0].finish_times
            period = (times[-1] + extra_cycles - times[1]) / (iterations - 2)
        else:
            # batched runs finish in macro-passes, not iterations, so
            # the per-iteration finish-time reconstruction above does
            # not apply — report the plain average
            period = total_cycles / iterations

        result = RunResult(
            cycles=total_cycles,
            execution_time_us=self.config.clock.cycles_to_us(total_cycles),
            iterations=iterations,
            pe_stats=pes,
            data_messages=data_messages,
            ack_messages=ack_messages,
            payload_bytes=payload_bytes,
            header_bytes=header_bytes,
            ack_bytes=ack_bytes,
            buffer_high_water=buffer_high,
            fifo_high_water=fifo_high,
            iteration_period_cycles=period,
            resync_messages=sum(p.messages_sent for p in sync_pools),
            resync_bytes=ACK_BYTES
            * sum(p.messages_sent for p in sync_pools),
            trace=recorder,
            steady_state=steady_report,
            compiled_firings=(
                compiled_stats.compiled_firings
                if compiled_stats is not None
                else 0
            ),
            collective_messages=getattr(transport, "collective_messages", 0),
            fan_out_deliveries=getattr(transport, "fan_out_deliveries", 0),
            wire_bytes_saved=getattr(transport, "wire_bytes_saved", 0),
            batch=self.batch,
            batched_firings=sum(pe.batched_firings for pe in pes),
            batch_dispatches=sum(pe.batch_dispatches for pe in pes),
            amortized_dispatch_cycles_saved=sum(
                pe.amortized_dispatch_cycles_saved for pe in pes
            ),
        )
        if hub is not None:
            from repro.observability import (
                build_metrics_document,
                validate_metrics,
            )

            result.message_log = list(hub.messages)
            result.metrics = build_metrics_document(
                self,
                result,
                hub,
                channels=channels,
                transport=transport,
                sim=sim,
                sync_pools=sync_pools,
            )
            validate_metrics(result.metrics)
        return result

    def _arm_steady_state(
        self,
        sim: Simulator,
        sequencers: List[PESequencer],
        channels: Dict[str, SpiChannel],
        fifos: Dict[int, "LocalFifo"],
        sync_pools: List[SyncTokenPool],
        interconnect: Interconnect,
        transport,
        iterations: int,
    ):
        """Wire a :class:`SteadyStateTracker` into this run.

        The probes must cover *everything* that influences any future
        event time or counter — see DESIGN.md §4e for the composition
        argument (in particular why in-flight UBS acks and
        resynchronization deposits are part of the hash).  The meters
        must cover every counter a skipped period would have advanced.
        """
        from repro.platform.steady_state import (
            AttrMeter,
            MapMeter,
            ObjectMapMeter,
            SteadyStateTracker,
        )

        ref = sequencers[0]
        sorted_channels = [
            (name, channels[name]) for name in sorted(channels)
        ]
        sorted_fifos = [fifos[k] for k in sorted(fifos)]

        # SyncedTask wrappers and SpiInitTask instances hide modular /
        # one-shot state inside the per-PE programs; collect them once.
        synced: List[SyncedTask] = []
        inits: List[SpiInitTask] = []
        seen_ids = set()
        for sequencer in sequencers:
            for task in sequencer.program:
                while isinstance(task, SyncedTask):
                    if id(task) not in seen_ids:
                        seen_ids.add(id(task))
                        synced.append(task)
                    task = task.inner
                if isinstance(task, SpiInitTask) and id(task) not in seen_ids:
                    seen_ids.add(id(task))
                    inits.append(task)

        def sequencer_state(now: int):
            ref_iteration = ref.iteration
            return tuple(
                (
                    s.position,
                    s.iteration - ref_iteration,
                    s._running,
                    (s._busy_until - now)
                    if s._running and s._busy_until is not None
                    else -1,
                    s.parked,
                    s.parked_targeted,
                    s.wake_pending,
                    (now - s._blocked_since)
                    if s._blocked_since is not None
                    else -1,
                )
                for s in sequencers
            )

        def channel_state(now: int):
            return tuple(
                (
                    tuple(m.payload_bytes for m in ch.arrived),
                    ch.flow._credits if ch.flow.uses_credits else -1,
                    ch.recv_buffer.occupancy_bytes,
                )
                for _name, ch in sorted_channels
            )

        def fifo_state(now: int):
            return tuple(len(f.tokens) for f in sorted_fifos)

        def pool_state(now: int):
            return tuple(p.tokens for p in sync_pools)

        def synced_state(now: int):
            return tuple(t._count % t.period for t in synced)

        def init_state(now: int):
            return tuple(t._done for t in inits)

        def link_state(now: int):
            return tuple(
                sorted(
                    (link.src_pe, link.dst_pe, max(0, link.busy_until - now))
                    for link in interconnect.links
                )
            )

        def kernel_state(now: int):
            return (
                len(sim._wake_queue),
                sim._wake_scheduled,
                sim._retry_scheduled,
                len(sim._parked),
            )

        probes = [
            sequencer_state,
            channel_state,
            fifo_state,
            pool_state,
            synced_state,
            init_state,
            link_state,
            kernel_state,
            transport.capture_state,
        ]

        transport_fields = [
            "messages",
            "bytes",
            "collective_messages",
            "fan_out_deliveries",
            "wire_bytes_saved",
        ]
        if hasattr(transport, "fast_path_deliveries"):
            transport_fields.append("fast_path_deliveries")
        meters = []
        for sequencer in sequencers:
            pe = sequencer.pe
            meters.append(
                AttrMeter(
                    f"pe:{pe.index}",
                    pe,
                    ("busy_cycles", "firings", "blocked_events", "blocked_cycles"),
                )
            )
            meters.append(
                MapMeter(
                    f"pe:{pe.index}:blocked_by",
                    (lambda p=pe: p.blocked_by_task),
                )
            )
        for name, ch in sorted_channels:
            meters.append(
                AttrMeter(
                    f"channel:{name}",
                    ch.stats,
                    (
                        "data_messages",
                        "ack_messages",
                        "data_bytes",
                        "header_bytes",
                        "ack_bytes",
                    ),
                )
            )
            meters.append(
                AttrMeter(f"flow:{name}", ch.flow, ("sends", "acks_received"))
            )
        for pool in sync_pools:
            meters.append(
                AttrMeter(
                    f"pool:{pool.name}", pool, ("messages_sent", "empty_stalls")
                )
            )
        meters.append(AttrMeter("transport", transport, transport_fields))
        meters.append(
            ObjectMapMeter(
                "transport:channel",
                lambda: sorted(
                    transport.per_channel.items(), key=lambda kv: str(kv[0])
                ),
                ("messages", "bytes", "queueing_cycles", "contention_cycles"),
            )
        )
        meters.append(
            ObjectMapMeter(
                "link",
                lambda: [
                    ((link.src_pe, link.dst_pe), link)
                    for link in interconnect.links
                ],
                ("bytes_carried", "messages_carried"),
            )
        )

        hint = None
        if self._analysis_cache is not None:
            lookup = getattr(self._analysis_cache, "period_hint", None)
            if lookup is not None:
                hint = lookup(self._period_cache_key())

        tracker = SteadyStateTracker(
            sim=sim,
            sequencers=sequencers,
            probes=probes,
            meters=meters,
            target_iterations=iterations,
            hint=hint,
        )
        sim.state_probe = tracker
        ref.on_iteration = tracker.on_iteration_boundary
        return tracker

    def _period_cache_key(self) -> Optional[str]:
        """Content key for the cross-run period memo.

        Extends the analysis key with the *execution* knobs the analysis
        key deliberately omits — period cycles depend on the transport
        flavour and link timing, not just on the compile-time plans.
        """
        if self._analysis_key is None:
            return None
        import hashlib
        import json

        spec = self.config.link_spec
        payload = json.dumps(
            {
                "analysis": self._analysis_key,
                "transport": self.config.transport,
                "bus_arbitration_cycles": self.config.bus_arbitration_cycles,
                "setup_cycles": spec.setup_cycles,
                "word_bytes": spec.word_bytes,
                "cycles_per_word": spec.cycles_per_word,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _store_period_hint(self, report) -> None:
        """Memoise a freshly confirmed period for future runs."""
        if self._analysis_cache is None:
            return
        store = getattr(self._analysis_cache, "store_period", None)
        if store is None:
            return
        store(
            self._period_cache_key(),
            report.period_iterations,
            report.period_cycles,
        )

    def _build_transport(
        self, sim: Simulator, interconnect: Interconnect, observer=None
    ):
        """Instantiate the configured data transport for one run."""
        from repro.platform.transport import (
            OrderedBusTransport,
            PointToPointTransport,
            SharedBusTransport,
        )

        if self.config.transport == "p2p":
            return PointToPointTransport(sim, interconnect, observer=observer)
        if self.config.transport == "shared_bus":
            return SharedBusTransport(
                sim,
                spec=self.config.link_spec,
                arbitration_cycles=self.config.bus_arbitration_cycles,
                observer=observer,
            )
        return OrderedBusTransport(
            sim,
            order=self.transaction_order(),
            spec=self.config.link_spec,
            observer=observer,
        )

    def transaction_order(self) -> List[str]:
        """Compile-time bus-grant order for the ordered-transaction model.

        One entry (the channel's IPC edge name) per message per graph
        iteration, in the order the deterministic PASS fires the
        SPI_send actors — the same order the hardware's transaction
        controller would be programmed with.
        """
        from repro.dataflow.sdf import build_pass

        # A collective send actor fires once per group transfer: all of
        # its per-branch plans share ONE bus slot, keyed by the group.
        send_to_key = {
            plan.send_actor: (
                f"{self.insertion.collective_sends[plan.send_actor].name}"
                ".collective"
                if plan.send_actor in self.insertion.collective_sends
                else plan.ipc_edge.name
            )
            for plan in self.channel_plans.values()
        }
        order = [
            send_to_key[actor.name]
            for actor in build_pass(self.insertion.graph)
            if actor.name in send_to_key
        ]
        if not order:
            raise GraphError(
                "ordered-transaction transport needs at least one "
                "interprocessor channel"
            )
        return order

    # -- analysis -----------------------------------------------------------

    def steady_state_opaque_actors(self) -> List[str]:
        """Actors whose future timing the steady-state hash cannot see.

        The warp is exact only when every execution time and production
        volume is a function of the hashed kernel state.  An actor with
        integer cycles and static rates trivially qualifies.  An actor
        with a *callable* cycle model or :class:`DynamicRate` ports
        depends on token values (which the hash deliberately excludes),
        so it is opaque — unless it declares
        ``params["timing_periodic"] = True``, asserting that its
        execution times and production volumes are iteration-periodic
        (e.g. the LPC I/O interfaces, which cycle through a fixed frame
        list via ``firing_index % len(frames)``).  The particle filter
        makes no such declaration: its resampling exchange volumes
        depend on the evolving particle population, so it never warps.
        """
        opaque: List[str] = []
        for actor in self.source_graph.actors:
            if actor.params.get("timing_periodic"):
                continue
            if not isinstance(actor.cycles, int) or any(
                not isinstance(port.rate, int) for port in actor.ports
            ):
                opaque.append(actor.name)
        return opaque

    def task_repetitions(self) -> Dict[str, int]:
        """Repetitions vector of the SPI-inserted graph (memoised)."""
        if self._task_repetitions is None:
            from repro.dataflow.sdf import repetitions_vector

            def compute() -> Dict[str, int]:
                return repetitions_vector(self.insertion.graph)

            if self._analysis_cache is not None:
                self._task_repetitions = self._analysis_cache.repetitions(
                    self._structure_key, compute
                )
            else:
                self._task_repetitions = compute()
        return self._task_repetitions

    def mcm_result(self) -> McmResult:
        """Exact MCM of the post-resynchronization synchronization graph.

        Memoised, and served from the :class:`AnalysisCache` when one is
        attached; the result carries the critical-cycle witness (task
        names, total execution cycles, total delay) alongside the bound.
        Cache entries written before the witness existed degrade to a
        witness-less result.
        """
        if self._mcm_result is None:
            reference = (
                self.resync_result.graph
                if self.resync_result is not None
                else self.sync_graph
            )

            def compute() -> McmResult:
                return maximum_cycle_mean_result(reference)

            if self._analysis_cache is not None:
                self._mcm_result = self._analysis_cache.mcm(
                    self._analysis_key, compute
                )
            else:
                self._mcm_result = compute()
        return self._mcm_result

    def estimated_iteration_period_cycles(self) -> float:
        """MCM bound on the steady-state iteration period (memoised)."""
        return self.mcm_result().value

    def sync_cost_per_iteration(self) -> int:
        """Cross-PE synchronization edges after resynchronization."""
        reference = (
            self.resync_result.graph
            if self.resync_result is not None
            else self.sync_graph
        )
        return reference.sync_cost()

    def describe(self) -> str:
        """Human-readable compilation report.

        Everything the SPI methodology decided for this system: the
        per-PE self-timed orders, every channel's component
        (static/dynamic), protocol, capacity and ack status, and the
        resynchronization summary.
        """
        lines: List[str] = [
            f"SPI system: {self.source_graph.name!r} on "
            f"{self.partition.n_pes} PEs"
        ]
        if self.conversion is not None:
            converted = len(self.conversion.edge_info)
            lines.append(
                f"VTS conversion: {converted} dynamic edge(s) converted "
                f"to packed-token form"
            )
        if self.partition.has_accelerators or self.batch > 1:
            accel = sorted(
                pe
                for pe in range(self.partition.n_pes)
                if self.partition.pe_class_of(pe).is_accelerator
            )
            lines.append(
                f"heterogeneous platform: accelerator PE(s) "
                f"{accel if accel else 'none'}, blocking factor "
                f"{self.batch}"
                + (
                    f" (requested {self.partition.requested_batch})"
                    if self.batch != self.partition.requested_batch
                    else ""
                )
            )
        lines.append("self-timed schedule:")
        for pe in sorted(self.schedule.orders):
            order = self.schedule.orders[pe]
            if order:
                lines.append(f"  PE{pe}: {' -> '.join(order)}")
        if self.channel_plans:
            lines.append("interprocessor channels:")
            for name, plan in sorted(self.channel_plans.items()):
                flavour = "SPI_dynamic" if plan.dynamic else "SPI_static"
                acks = "acks on" if plan.acks_enabled else "ack-free"
                lines.append(
                    f"  {name}: PE{plan.src_pe}->PE{plan.dst_pe}, "
                    f"{flavour}, {plan.protocol} "
                    f"(capacity {plan.capacity_messages} msg, "
                    f"{plan.message_payload_bytes} B/msg, {acks})"
                )
        else:
            lines.append("interprocessor channels: none (single PE)")
        if self.resync_result is not None:
            rr = self.resync_result
            lines.append(
                f"resynchronization: {len(rr.removed)} sync/ack edge(s) "
                f"removed, {len(rr.added)} added; sync cost "
                f"{rr.cost_before} -> {rr.cost_after} per iteration"
            )
        result = self.mcm_result()
        lines.append(
            f"MCM bound on the iteration period: {result.value:.1f} cycles"
        )
        if result.cycle:
            lines.append(
                f"critical cycle: {' -> '.join(result.cycle)} "
                f"({result.total_cycles} cycles / "
                f"{result.total_delay} delay)"
            )
        return "\n".join(lines)

    # -- FPGA pricing ---------------------------------------------------------

    def spi_library_resources(self) -> ResourceVector:
        """Fabric cost of every SPI module in the compiled system."""
        total = ResourceVector()
        for plan in self.channel_plans.values():
            total = total + spi_resources.channel_cost(
                dynamic=plan.dynamic,
                buffer_bytes=plan.buffer_bytes,
                uses_acks=plan.acks_enabled,
            )
        for pe in self.partition.used_pes:
            total = total + spi_resources.init_module_cost()
        return total

    def computation_resources(self) -> ResourceVector:
        """Fabric cost of the application's computation actors.

        Actors declare their datapath cost in
        ``params["resources"]`` (a :class:`ResourceVector`); actors
        without one contribute nothing (e.g. purely structural models).
        """
        total = ResourceVector()
        for actor in self.source_graph.actors:
            vector = actor.params.get("resources")
            if vector is not None:
                total = total + vector
        return total

    def fpga_report(
        self,
        device: FpgaDevice = VIRTEX4_SX35,
        title: str = "",
    ) -> UtilizationReport:
        """Tables 1/2 shape: full-system and SPI-relative utilisation."""
        spi = self.spi_library_resources()
        full = self.computation_resources() + spi
        return UtilizationReport(
            device=device,
            full_system=full,
            spi_library=spi,
            title=title,
        )
