"""The SPI system: compile a dataflow application, execute it, report.

:class:`SpiSystem` is the public entry point of the reproduction.  It
performs the whole SPI methodology in one ``compile`` call:

1. **VTS conversion** when the application graph has dynamic-rate edges
   (paper §3) — dynamic edges become SPI_dynamic channels;
2. **SPI actor insertion** on every interprocessor edge (paper §2);
3. **self-timed schedule** construction (paper §2);
4. **IPC / synchronization graph** derivation (paper §4.1);
5. **protocol selection** per channel: BBS when the synchronization
   structure bounds the buffer, else UBS with an ack window (paper §4);
6. **resynchronization**: redundant synchronization/acknowledgment
   edges are pruned; channels whose ack edge proved redundant run
   ack-free (paper §4.1);

and then executes the compiled system cycle-by-cycle on the platform
simulator (``run``), or prices it on the FPGA resource model
(``fpga_report``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dataflow.graph import Actor, DataflowGraph, Edge, GraphError
from repro.dataflow.vts import VtsConversion, vts_convert
from repro.mapping.ipc_graph import build_ipc_graph
from repro.mapping.mcm import maximum_cycle_mean
from repro.mapping.partition import Partition
from repro.mapping.resync import ResynchronizationResult, resynchronize
from repro.mapping.selftimed import SelfTimedSchedule, build_selftimed_schedule
from repro.mapping.sync_graph import SynchronizationGraph, derive_sync_graph
from repro.mapping.timed_graph import EdgeKind, TimedEdge
from repro.platform.clock import DEFAULT_CLOCK, ClockDomain
from repro.platform.fpga import (
    FpgaDevice,
    ResourceVector,
    UtilizationReport,
    VIRTEX4_SX35,
)
from repro.platform.interconnect import Interconnect, LinkSpec
from repro.platform.pe import ProcessingElement
from repro.platform.simulator import PESequencer, Simulator
from repro.platform.trace import TraceRecorder
from repro.spi import resources as spi_resources
from repro.spi.actors import (
    ComputationTask,
    LocalFifo,
    SpiInitTask,
    SpiReceiveTask,
    SpiSendTask,
    SyncTokenPool,
    SyncedTask,
)
from repro.spi.message import ACK_BYTES
from repro.spi.channel import SpiChannel
from repro.spi.library import SpiInsertion, insert_spi_actors
from repro.spi.protocols import Protocol, ProtocolConfig

__all__ = ["SpiConfig", "ChannelPlan", "RunResult", "SpiSystem"]


@dataclass(frozen=True)
class SpiConfig:
    """Compile-time knobs of an SPI system."""

    clock: ClockDomain = DEFAULT_CLOCK
    link_spec: LinkSpec = field(default_factory=LinkSpec)
    #: apply resynchronization (redundant sync/ack pruning + additions)
    resynchronize: bool = True
    #: UBS acknowledgment window, in messages
    ubs_window: int = 4
    #: BBS is chosen only when the static bound is at most this many messages
    max_bbs_messages: int = 1024
    word_bytes: int = 4
    #: protocol policy: "auto" picks BBS whenever the synchronization
    #: structure bounds the buffer (paper §4); "always_ubs" forces the
    #: UBS protocol everywhere, which is how the resynchronization
    #: ablations expose acknowledgment traffic
    protocol_policy: str = "auto"
    #: data transport: "p2p" dedicated links (the SPI default),
    #: "shared_bus" FCFS-arbitrated single bus, "ordered_bus" the
    #: ordered-transaction model (grant order fixed at compile time).
    #: Control traffic (acks, resynchronization messages) always rides
    #: dedicated control links.
    transport: str = "p2p"
    #: per-transfer arbitration cost of the shared bus
    bus_arbitration_cycles: int = 2

    def __post_init__(self) -> None:
        if self.protocol_policy not in ("auto", "always_ubs"):
            raise ValueError(
                f"unknown protocol_policy {self.protocol_policy!r}"
            )
        if self.ubs_window < 1:
            raise ValueError("ubs_window must be >= 1")
        if self.transport not in ("p2p", "shared_bus", "ordered_bus"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.bus_arbitration_cycles < 0:
            raise ValueError("bus_arbitration_cycles must be >= 0")


@dataclass
class ChannelPlan:
    """Compile-time decisions for one interprocessor edge."""

    origin_edge_name: str
    ipc_edge: Edge
    send_actor: str
    recv_actor: str
    src_pe: int
    dst_pe: int
    dynamic: bool
    protocol: str
    capacity_messages: int
    message_payload_bytes: int
    acks_enabled: bool

    @property
    def buffer_bytes(self) -> int:
        return self.capacity_messages * self.message_payload_bytes


@dataclass
class RunResult:
    """Everything observable from one simulated execution."""

    cycles: int
    execution_time_us: float
    iterations: int
    pe_stats: List[ProcessingElement]
    data_messages: int
    ack_messages: int
    payload_bytes: int
    header_bytes: int
    ack_bytes: int
    buffer_high_water: Dict[str, int]
    fifo_high_water: Dict[str, int]
    iteration_period_cycles: float
    #: zero-payload messages carrying *added* resynchronization edges
    resync_messages: int = 0
    resync_bytes: int = 0
    #: populated when ``run(..., trace=True)``: every task execution
    #: interval, renderable as a Gantt chart or CSV
    trace: Optional["TraceRecorder"] = None
    #: populated when ``run(..., metrics=True)``: the full metrics JSON
    #: document (see :mod:`repro.observability.exporters` for its schema)
    metrics: Optional[Dict] = None
    #: populated when ``run(..., metrics=True)``: every inter-PE message
    #: (data / ack / resync) with request, wire-start and arrival times
    message_log: Optional[List] = None

    @property
    def sync_messages(self) -> int:
        """Messages whose only job is synchronization: acknowledgments
        plus the messages of added resynchronization edges."""
        return self.ack_messages + self.resync_messages

    @property
    def overhead_bytes(self) -> int:
        return self.header_bytes + self.ack_bytes + self.resync_bytes

    @property
    def wire_bytes(self) -> int:
        return (
            self.payload_bytes
            + self.header_bytes
            + self.ack_bytes
            + self.resync_bytes
        )

    def speedup_against(self, baseline: "RunResult") -> float:
        if self.execution_time_us == 0:
            raise ZeroDivisionError("zero execution time")
        return baseline.execution_time_us / self.execution_time_us


class SpiSystem:
    """A compiled SPI application, ready to simulate or to price."""

    def __init__(
        self,
        source_graph: DataflowGraph,
        partition: Partition,
        config: SpiConfig,
        conversion: Optional[VtsConversion],
        insertion: SpiInsertion,
        schedule: SelfTimedSchedule,
        sync_graph: SynchronizationGraph,
        channel_plans: Dict[str, ChannelPlan],
        resync_result: Optional[ResynchronizationResult],
        cache=None,
        analysis_key: Optional[str] = None,
        structure_key: Optional[str] = None,
    ) -> None:
        self.source_graph = source_graph
        self.partition = partition
        self.config = config
        self.conversion = conversion
        self.insertion = insertion
        self.schedule = schedule
        self.sync_graph = sync_graph
        self.channel_plans = channel_plans
        self.resync_result = resync_result
        #: optional repro.service AnalysisCache (duck-typed: anything
        #: with the same repetitions/mcm/resynchronize surface works)
        self._analysis_cache = cache
        self._analysis_key = analysis_key
        self._structure_key = structure_key
        self._task_repetitions: Optional[Dict[str, int]] = None
        self._mcm_bound: Optional[float] = None

    # -- compilation -------------------------------------------------------

    @classmethod
    def compile(
        cls,
        graph: DataflowGraph,
        partition: Partition,
        config: Optional[SpiConfig] = None,
        cache=None,
    ) -> "SpiSystem":
        """Run the full SPI methodology on ``graph`` + ``partition``.

        ``cache`` is an optional content-addressed analysis cache (see
        :class:`repro.service.AnalysisCache`): repetitions vectors,
        channel-plan decisions, resynchronization solutions and the MCM
        bound are looked up by graph content instead of recomputed.
        Graphs without canonical content (callable cycle models) bypass
        it transparently.
        """
        config = config or SpiConfig()
        graph.validate()

        analysis_key = structure_key = None
        if cache is not None:
            analysis_key = cache.key_for(graph, partition, config)
            structure_key = cache.structure_key_for(graph, partition, config)

        conversion: Optional[VtsConversion] = None
        static_graph = graph
        if graph.is_dynamic:
            conversion = vts_convert(graph)
            static_graph = conversion.graph

        static_partition = Partition(
            static_graph, partition.n_pes, dict(partition.assignment)
        )
        insertion = insert_spi_actors(
            static_graph,
            static_partition,
            conversion=conversion,
            word_bytes=config.word_bytes,
        )
        schedule = build_selftimed_schedule(insertion.graph, insertion.partition)
        ipc_graph = build_ipc_graph(schedule)
        sync_graph = derive_sync_graph(ipc_graph)

        decisions = None
        if cache is not None:
            decisions = cache.channel_decisions(analysis_key)
        channel_plans = cls._plan_channels(
            insertion, schedule, sync_graph, config, decisions=decisions
        )

        # UBS channels synchronize backwards through ack edges; add them to
        # the synchronization graph so resynchronization can judge them.
        # Only single-invocation channels qualify: sync-graph delays
        # count iterations between the #0 invocations, so a multirate
        # window of W *messages* (M > 1 per iteration) has no faithful
        # iteration-granularity edge — any delay large enough to be
        # implied by the ack protocol is too large to safely license its
        # removal.  Those channels simply keep their acks.
        judged_acks = set()
        for plan in channel_plans.values():
            if plan.protocol != Protocol.UBS:
                continue
            if cls._messages_per_iteration(schedule, plan.send_actor) != 1:
                continue
            send_task, recv_task = cls._channel_tasks(schedule, plan)
            sync_graph.add_edge(
                TimedEdge(
                    src=recv_task,
                    snk=send_task,
                    delay=plan.capacity_messages,
                    kind=EdgeKind.ACK,
                    origin_edge=plan.origin_edge_name,
                )
            )
            judged_acks.add(plan.origin_edge_name)

        resync_result: Optional[ResynchronizationResult] = None
        if config.resynchronize:
            if cache is not None:
                resync_result = cache.resynchronize(analysis_key, sync_graph)
            else:
                resync_result = resynchronize(sync_graph)
            surviving_acks = {
                e.origin_edge
                for e in resync_result.graph.edges
                if e.kind == EdgeKind.ACK
            }
            for plan in channel_plans.values():
                if (
                    plan.protocol == Protocol.UBS
                    and plan.origin_edge_name in judged_acks
                ):
                    plan.acks_enabled = plan.origin_edge_name in surviving_acks

        if cache is not None and decisions is None:
            # Store the *final* decisions (post-resync ack adjustment):
            # replaying them is only sound together with the cached
            # resynchronization solution, which shares this key.
            cache.store_channel_decisions(analysis_key, channel_plans)

        return cls(
            source_graph=graph,
            partition=partition,
            config=config,
            conversion=conversion,
            insertion=insertion,
            schedule=schedule,
            sync_graph=sync_graph,
            channel_plans=channel_plans,
            resync_result=resync_result,
            cache=cache,
            analysis_key=analysis_key,
            structure_key=structure_key,
        )

    @staticmethod
    def _channel_tasks(
        schedule: SelfTimedSchedule, plan: ChannelPlan
    ) -> Tuple[str, str]:
        """Task names of the channel's send/recv actors in the task graph.

        For multirate graphs the SPI actors expand into invocations; the
        ack-window constraint is attached between the first invocations
        (a conservative representative).
        """
        tasks = set(schedule.task_pe)
        if plan.send_actor in tasks:
            return plan.send_actor, plan.recv_actor
        return f"{plan.send_actor}#0", f"{plan.recv_actor}#0"

    @staticmethod
    def _messages_per_iteration(
        schedule: SelfTimedSchedule, send_actor: str
    ) -> int:
        """How many messages the channel carries per graph iteration.

        Each invocation of the SPI_send actor launches exactly one
        message, so the count equals the actor's HSDF repetition count
        (1 when the schedule kept the unexpanded name).
        """
        if send_actor in schedule.task_pe:
            return 1
        prefix = send_actor + "#"
        return sum(1 for task in schedule.task_pe if task.startswith(prefix))

    @classmethod
    def _plan_channels(
        cls,
        insertion: SpiInsertion,
        schedule: SelfTimedSchedule,
        sync_graph: SynchronizationGraph,
        config: SpiConfig,
        decisions: Optional[Dict[str, Dict[str, object]]] = None,
    ) -> Dict[str, ChannelPlan]:
        """Select protocol and capacity for every interprocessor edge.

        The BBS bound follows the feedback argument of paper eq. 2: the
        number of unconsumed messages on IPC edge ``e`` in self-timed
        execution never exceeds ``delay(e)`` plus the minimum total
        delay of a directed synchronization path from the receiver back
        to the sender (the path that throttles the sender).  When no
        such path exists — or the bound is impractically large — SPI
        falls back to UBS with an acknowledgment window.

        ``decisions`` replays previously cached per-channel decisions,
        skipping the all-pairs min-delay analysis entirely; channels
        missing from it (stale entry) fall back to the computed path.
        """
        rho: Optional[Dict[str, Dict[str, int]]] = (
            None if decisions is not None else sync_graph.min_delay_paths()
        )
        plans: Dict[str, ChannelPlan] = {}
        for origin_name, (ipc_edge, pair, dynamic) in insertion.channels.items():
            src_pe = insertion.partition.assignment[pair.send]
            dst_pe = insertion.partition.assignment[pair.recv]
            send_task, recv_task = cls._channel_tasks(
                schedule,
                ChannelPlan(
                    origin_edge_name=origin_name,
                    ipc_edge=ipc_edge,
                    send_actor=pair.send,
                    recv_actor=pair.recv,
                    src_pe=src_pe,
                    dst_pe=dst_pe,
                    dynamic=dynamic,
                    protocol=Protocol.UBS,
                    capacity_messages=1,
                    message_payload_bytes=1,
                    acks_enabled=False,
                ),
            )
            delay_msgs = ipc_edge.delay // max(1, ipc_edge.source.rate)
            payload_bytes = ipc_edge.source.rate * ipc_edge.token_bytes
            msgs_per_iter = cls._messages_per_iteration(schedule, pair.send)

            cached = decisions.get(origin_name) if decisions is not None else None
            if cached is not None:
                plans[origin_name] = ChannelPlan(
                    origin_edge_name=origin_name,
                    ipc_edge=ipc_edge,
                    send_actor=pair.send,
                    recv_actor=pair.recv,
                    src_pe=src_pe,
                    dst_pe=dst_pe,
                    dynamic=dynamic,
                    protocol=cached["protocol"],
                    capacity_messages=cached["capacity_messages"],
                    message_payload_bytes=payload_bytes,
                    acks_enabled=cached["acks_enabled"],
                )
                continue
            if rho is None:
                rho = sync_graph.min_delay_paths()
            feedback = rho.get(recv_task, {}).get(send_task)

            if (
                config.protocol_policy == "auto"
                and feedback is not None
                and 0
                < msgs_per_iter * (feedback + 1) + delay_msgs
                <= config.max_bbs_messages
            ):
                # Sync-graph delays count *iterations* between the #0
                # invocations, while the bound counts *messages*: with a
                # feedback of f iterations the sender can run f + 1
                # iterations (of msgs_per_iter messages each) ahead of
                # the receiver's oldest unfreed slot, plus the initial
                # delay tokens.  The msgs_per_iter'th message of the
                # newest iteration doubles as the in-process +1 slack
                # (the message inside SPI_receive still occupies its
                # slot); for single-rate channels the formula reduces to
                # the familiar feedback + delay + 1.
                protocol = Protocol.BBS
                capacity = msgs_per_iter * (feedback + 1) + delay_msgs
                acks = False
            else:
                protocol = Protocol.UBS
                capacity = config.ubs_window
                acks = True
            plans[origin_name] = ChannelPlan(
                origin_edge_name=origin_name,
                ipc_edge=ipc_edge,
                send_actor=pair.send,
                recv_actor=pair.recv,
                src_pe=src_pe,
                dst_pe=dst_pe,
                dynamic=dynamic,
                protocol=protocol,
                capacity_messages=capacity,
                message_payload_bytes=payload_bytes,
                acks_enabled=acks,
            )
        return plans

    # -- execution ----------------------------------------------------------

    def run(
        self,
        iterations: int = 1,
        max_cycles: Optional[int] = None,
        trace: bool = False,
        metrics: bool = False,
        wakeups: str = "targeted",
        check_lost_wakeups: bool = False,
    ) -> RunResult:
        """Simulate ``iterations`` graph iterations; returns the metrics.

        ``trace=True`` records every task execution interval into
        ``RunResult.trace`` (a :class:`TraceRecorder`) for Gantt/CSV
        inspection.  ``metrics=True`` additionally instruments the whole
        execution path (simulator kernel, transports, channels, sync
        pools) and fills ``RunResult.metrics`` with the validated
        metrics JSON document and ``RunResult.message_log`` with every
        inter-PE message — the inputs of the Chrome-trace and metrics
        exporters in :mod:`repro.observability`.

        ``wakeups`` selects the kernel's parking discipline
        (``"targeted"`` per-resource waitsets, ``"broadcast"`` the
        legacy retry sweep — kept for A/B benchmarking), and
        ``check_lost_wakeups=True`` arms the kernel's lost-wakeup audit
        (used by the conformance oracles).
        """
        if iterations < 1:
            raise GraphError("iterations must be >= 1")
        hub = None
        if metrics:
            from repro.observability import ObservabilityHub

            hub = ObservabilityHub()
        sim = Simulator(wakeups=wakeups, check_lost_wakeups=check_lost_wakeups)
        recorder = TraceRecorder() if trace else None
        interconnect = Interconnect(default_spec=self.config.link_spec)
        transport = self._build_transport(sim, interconnect, observer=hub)
        graph = self.insertion.graph

        channels: Dict[str, SpiChannel] = {}
        for plan in self.channel_plans.values():
            config = ProtocolConfig(
                protocol=plan.protocol,
                capacity_tokens=plan.capacity_messages,
                acks_enabled=plan.acks_enabled
                if plan.protocol == Protocol.UBS
                else False,
            )
            # One extra message of physical slack: a message may arrive
            # while SPI_receive is still processing its predecessor (the
            # predecessor's bytes are freed only at completion).
            capacity_bytes = (
                plan.capacity_messages + 1
            ) * plan.message_payload_bytes
            channels[plan.origin_edge_name] = SpiChannel(
                edge=plan.ipc_edge,
                src_pe=plan.src_pe,
                dst_pe=plan.dst_pe,
                config=config,
                dynamic=plan.dynamic,
                token_bytes=plan.ipc_edge.token_bytes,
                recv_capacity_bytes=capacity_bytes,
            )

        ipc_edge_ids = {plan.ipc_edge.edge_id for plan in self.channel_plans.values()}
        fifos: Dict[int, LocalFifo] = {
            edge.edge_id: LocalFifo(edge)
            for edge in graph.edges
            if edge.edge_id not in ipc_edge_ids
        }

        send_plans = {plan.send_actor: plan for plan in self.channel_plans.values()}
        recv_plans = {plan.recv_actor: plan for plan in self.channel_plans.values()}

        tasks_by_actor: Dict[str, object] = {}

        def task_for(actor: Actor):
            if actor.name in tasks_by_actor:
                return tasks_by_actor[actor.name]
            if actor.name in send_plans:
                plan = send_plans[actor.name]
                in_edge = graph.in_edges(actor)[0]
                task = SpiSendTask(
                    actor,
                    channels[plan.origin_edge_name],
                    fifos[in_edge.edge_id],
                    sim,
                    interconnect,
                    transport=transport,
                    observer=hub,
                )
            elif actor.name in recv_plans:
                plan = recv_plans[actor.name]
                out_edge = graph.out_edges(actor)[0]
                task = SpiReceiveTask(
                    actor,
                    channels[plan.origin_edge_name],
                    fifos[out_edge.edge_id],
                    sim,
                    interconnect,
                    observer=hub,
                )
            else:
                inputs = {
                    e.sink.name: fifos[e.edge_id]
                    for e in graph.in_edges(actor)
                    if e.edge_id in fifos
                }
                outputs = {
                    e.source.name: fifos[e.edge_id]
                    for e in graph.out_edges(actor)
                    if e.edge_id in fifos
                }
                task = ComputationTask(actor, inputs, outputs)
            tasks_by_actor[actor.name] = task
            return task

        # Instantiate every task up front, then materialise the *added*
        # resynchronization edges as run-time sync-message channels (a
        # counting semaphore fed by zero-payload messages) wrapped
        # around the endpoint tasks.  Without this, disabling the acks
        # those edges made redundant would be unsound.
        for actor in graph.actors:
            task_for(actor)
        sync_pools: List[SyncTokenPool] = []
        if self.resync_result is not None:
            task_reps = self.task_repetitions()
            for added in self.resync_result.added:
                src_task = self.schedule.task_graph.get_actor(added.src)
                snk_task = self.schedule.task_graph.get_actor(added.snk)
                src_origin = src_task.params.get("origin", added.src)
                snk_origin = snk_task.params.get("origin", added.snk)
                src_pe = self.schedule.task_pe[added.src]
                snk_pe = self.schedule.task_pe[added.snk]
                pool = SyncTokenPool(
                    f"resync:{added.src}->{added.snk}", initial=added.delay
                )
                sync_pools.append(pool)
                link = interconnect.link(src_pe, snk_pe)
                tasks_by_actor[src_origin] = SyncedTask(
                    tasks_by_actor[src_origin],
                    sim,
                    notifications=[(pool, link, ACK_BYTES)],
                    phase=src_task.params.get("invocation", 0),
                    period=task_reps[src_origin],
                    observer=hub,
                )
                tasks_by_actor[snk_origin] = SyncedTask(
                    tasks_by_actor[snk_origin],
                    sim,
                    guards=[pool],
                    phase=snk_task.params.get("invocation", 0),
                    period=task_reps[snk_origin],
                )

        pes: List[ProcessingElement] = []
        sequencers: List[PESequencer] = []
        for pe_index in range(self.partition.n_pes):
            order = self.schedule.orders.get(pe_index, [])
            if not order:
                continue
            pe = ProcessingElement(pe_index)
            program: List[object] = [SpiInitTask(pe_index)]
            for task_name in order:
                origin = (
                    self.schedule.task_graph.get_actor(task_name)
                    .params.get("origin", task_name)
                )
                program.append(task_for(graph.get_actor(origin)))
            sequencer = PESequencer(
                sim, pe, program, iterations, trace=recorder
            )
            pes.append(pe)
            sequencers.append(sequencer)

        for sequencer in sequencers:
            sequencer.begin()
        final = sim.run(max_cycles=max_cycles)

        unfinished = [s for s in sequencers if not s.done]
        if unfinished:
            raise GraphError(
                f"simulation ended with unfinished sequencers: "
                f"{[s.pe.name for s in unfinished]}"
            )

        data_messages = sum(c.stats.data_messages for c in channels.values())
        ack_messages = sum(c.stats.ack_messages for c in channels.values())
        payload_bytes = sum(c.stats.data_bytes for c in channels.values())
        header_bytes = sum(c.stats.header_bytes for c in channels.values())
        ack_bytes = sum(c.stats.ack_bytes for c in channels.values())
        buffer_high = {
            name: channel.recv_buffer.high_water_bytes
            for name, channel in channels.items()
        }
        fifo_high = {
            fifo.edge.name: fifo.high_water for fifo in fifos.values()
        }

        if iterations >= 4 and sequencers:
            times = sequencers[0].finish_times
            period = (times[-1] - times[1]) / (len(times) - 2)
        else:
            period = final / iterations

        result = RunResult(
            cycles=final,
            execution_time_us=self.config.clock.cycles_to_us(final),
            iterations=iterations,
            pe_stats=pes,
            data_messages=data_messages,
            ack_messages=ack_messages,
            payload_bytes=payload_bytes,
            header_bytes=header_bytes,
            ack_bytes=ack_bytes,
            buffer_high_water=buffer_high,
            fifo_high_water=fifo_high,
            iteration_period_cycles=period,
            resync_messages=sum(p.messages_sent for p in sync_pools),
            resync_bytes=ACK_BYTES
            * sum(p.messages_sent for p in sync_pools),
            trace=recorder,
        )
        if hub is not None:
            from repro.observability import (
                build_metrics_document,
                validate_metrics,
            )

            result.message_log = list(hub.messages)
            result.metrics = build_metrics_document(
                self,
                result,
                hub,
                channels=channels,
                transport=transport,
                sim=sim,
                sync_pools=sync_pools,
            )
            validate_metrics(result.metrics)
        return result

    def _build_transport(
        self, sim: Simulator, interconnect: Interconnect, observer=None
    ):
        """Instantiate the configured data transport for one run."""
        from repro.platform.transport import (
            OrderedBusTransport,
            PointToPointTransport,
            SharedBusTransport,
        )

        if self.config.transport == "p2p":
            return PointToPointTransport(sim, interconnect, observer=observer)
        if self.config.transport == "shared_bus":
            return SharedBusTransport(
                sim,
                spec=self.config.link_spec,
                arbitration_cycles=self.config.bus_arbitration_cycles,
                observer=observer,
            )
        return OrderedBusTransport(
            sim,
            order=self.transaction_order(),
            spec=self.config.link_spec,
            observer=observer,
        )

    def transaction_order(self) -> List[str]:
        """Compile-time bus-grant order for the ordered-transaction model.

        One entry (the channel's IPC edge name) per message per graph
        iteration, in the order the deterministic PASS fires the
        SPI_send actors — the same order the hardware's transaction
        controller would be programmed with.
        """
        from repro.dataflow.sdf import build_pass

        send_to_key = {
            plan.send_actor: plan.ipc_edge.name
            for plan in self.channel_plans.values()
        }
        order = [
            send_to_key[actor.name]
            for actor in build_pass(self.insertion.graph)
            if actor.name in send_to_key
        ]
        if not order:
            raise GraphError(
                "ordered-transaction transport needs at least one "
                "interprocessor channel"
            )
        return order

    # -- analysis -----------------------------------------------------------

    def task_repetitions(self) -> Dict[str, int]:
        """Repetitions vector of the SPI-inserted graph (memoised)."""
        if self._task_repetitions is None:
            from repro.dataflow.sdf import repetitions_vector

            def compute() -> Dict[str, int]:
                return repetitions_vector(self.insertion.graph)

            if self._analysis_cache is not None:
                self._task_repetitions = self._analysis_cache.repetitions(
                    self._structure_key, compute
                )
            else:
                self._task_repetitions = compute()
        return self._task_repetitions

    def estimated_iteration_period_cycles(self) -> float:
        """MCM bound on the steady-state iteration period (memoised)."""
        if self._mcm_bound is None:
            reference = (
                self.resync_result.graph
                if self.resync_result is not None
                else self.sync_graph
            )

            def compute() -> float:
                return maximum_cycle_mean(reference)

            if self._analysis_cache is not None:
                self._mcm_bound = self._analysis_cache.mcm(
                    self._analysis_key, compute
                )
            else:
                self._mcm_bound = compute()
        return self._mcm_bound

    def sync_cost_per_iteration(self) -> int:
        """Cross-PE synchronization edges after resynchronization."""
        reference = (
            self.resync_result.graph
            if self.resync_result is not None
            else self.sync_graph
        )
        return reference.sync_cost()

    def describe(self) -> str:
        """Human-readable compilation report.

        Everything the SPI methodology decided for this system: the
        per-PE self-timed orders, every channel's component
        (static/dynamic), protocol, capacity and ack status, and the
        resynchronization summary.
        """
        lines: List[str] = [
            f"SPI system: {self.source_graph.name!r} on "
            f"{self.partition.n_pes} PEs"
        ]
        if self.conversion is not None:
            converted = len(self.conversion.edge_info)
            lines.append(
                f"VTS conversion: {converted} dynamic edge(s) converted "
                f"to packed-token form"
            )
        lines.append("self-timed schedule:")
        for pe in sorted(self.schedule.orders):
            order = self.schedule.orders[pe]
            if order:
                lines.append(f"  PE{pe}: {' -> '.join(order)}")
        if self.channel_plans:
            lines.append("interprocessor channels:")
            for name, plan in sorted(self.channel_plans.items()):
                flavour = "SPI_dynamic" if plan.dynamic else "SPI_static"
                acks = "acks on" if plan.acks_enabled else "ack-free"
                lines.append(
                    f"  {name}: PE{plan.src_pe}->PE{plan.dst_pe}, "
                    f"{flavour}, {plan.protocol} "
                    f"(capacity {plan.capacity_messages} msg, "
                    f"{plan.message_payload_bytes} B/msg, {acks})"
                )
        else:
            lines.append("interprocessor channels: none (single PE)")
        if self.resync_result is not None:
            rr = self.resync_result
            lines.append(
                f"resynchronization: {len(rr.removed)} sync/ack edge(s) "
                f"removed, {len(rr.added)} added; sync cost "
                f"{rr.cost_before} -> {rr.cost_after} per iteration"
            )
        mcm = self.estimated_iteration_period_cycles()
        lines.append(f"MCM bound on the iteration period: {mcm:.1f} cycles")
        return "\n".join(lines)

    # -- FPGA pricing ---------------------------------------------------------

    def spi_library_resources(self) -> ResourceVector:
        """Fabric cost of every SPI module in the compiled system."""
        total = ResourceVector()
        for plan in self.channel_plans.values():
            total = total + spi_resources.channel_cost(
                dynamic=plan.dynamic,
                buffer_bytes=plan.buffer_bytes,
                uses_acks=plan.acks_enabled,
            )
        for pe in self.partition.used_pes:
            total = total + spi_resources.init_module_cost()
        return total

    def computation_resources(self) -> ResourceVector:
        """Fabric cost of the application's computation actors.

        Actors declare their datapath cost in
        ``params["resources"]`` (a :class:`ResourceVector`); actors
        without one contribute nothing (e.g. purely structural models).
        """
        total = ResourceVector()
        for actor in self.source_graph.actors:
            vector = actor.params.get("resources")
            if vector is not None:
                total = total + vector
        return total

    def fpga_report(
        self,
        device: FpgaDevice = VIRTEX4_SX35,
        title: str = "",
    ) -> UtilizationReport:
        """Tables 1/2 shape: full-system and SPI-relative utilisation."""
        spi = self.spi_library_resources()
        full = self.computation_resources() + spi
        return UtilizationReport(
            device=device,
            full_system=full,
            spi_library=spi,
            title=title,
        )
