"""Run-time state of one SPI interprocessor channel.

A channel materialises the link-side state of one cross-PE dataflow
edge: arrived-but-unprocessed messages, the receiver's buffer memory,
the protocol flow control, and traffic statistics.  The FIFOs feeding
SPI_send and draining SPI_receive are ordinary local edges of the
SPI-inserted graph (``x -> spi_send`` and ``spi_recv -> y``) and are
simulated as :class:`~repro.spi.actors.LocalFifo` objects like every
other same-PE edge — the channel itself only models what crosses the
link.

Data path (all stages simulated, none abstracted away)::

    producer -(local fifo)-> SPI_send =(link message)=> channel.arrived
        -(SPI_receive)-> local fifo -> consumer actor

Acknowledgments travel the reverse link as separate messages.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.dataflow.graph import Edge
from repro.platform.memory import BufferMemory
from repro.platform.simulator import Waitset
from repro.spi.message import Message, MessageKind
from repro.spi.protocols import ChannelFlowControl, ProtocolConfig

__all__ = ["SpiChannel", "ChannelStats"]


@dataclass
class ChannelStats:
    """Observable traffic counters of one channel."""

    data_messages: int = 0
    ack_messages: int = 0
    data_bytes: int = 0
    header_bytes: int = 0
    ack_bytes: int = 0

    @property
    def total_wire_bytes(self) -> int:
        return self.data_bytes + self.header_bytes + self.ack_bytes

    @property
    def total_messages(self) -> int:
        return self.data_messages + self.ack_messages

    @property
    def overhead_bytes(self) -> int:
        """Non-payload bytes: headers plus acknowledgments."""
        return self.header_bytes + self.ack_bytes


class SpiChannel:
    """Link-side state of one interprocessor edge."""

    def __init__(
        self,
        edge: Edge,
        src_pe: int,
        dst_pe: int,
        config: ProtocolConfig,
        dynamic: bool,
        token_bytes: int,
        recv_capacity_bytes: Optional[int],
    ) -> None:
        if src_pe == dst_pe:
            raise ValueError("SPI channels connect distinct PEs")
        self.edge = edge
        self.src_pe = src_pe
        self.dst_pe = dst_pe
        self.config = config
        self.dynamic = dynamic
        self.token_bytes = token_bytes
        self.flow = ChannelFlowControl(config)
        self.recv_buffer = BufferMemory(
            f"{edge.name}.recv", capacity_bytes=recv_capacity_bytes
        )
        #: messages that arrived on the link, awaiting SPI_receive
        self.arrived: Deque[Message] = deque()
        #: most messages ever queued at once — compared against the
        #: compile-time bound B(e) by the observability layer
        self.arrived_high_water = 0
        self.stats = ChannelStats()
        #: woken when a data message lands (unblocks SPI_receive)
        self.data_waitset = Waitset(f"{edge.name}.data")
        #: woken when an ack restores a send credit (unblocks SPI_send)
        self.space_waitset = Waitset(f"{edge.name}.space")

    def on_send(self) -> None:
        """Sender committed one message (credit accounting for UBS)."""
        self.flow.on_send()

    def deliver(self, message: Message) -> None:
        """A message finished its link transfer (data or ack)."""
        if message.kind == MessageKind.ACK:
            self.flow.on_ack()
            self.stats.ack_messages += 1
            self.stats.ack_bytes += message.wire_bytes
            self.space_waitset.wake()
            return
        self.recv_buffer.write(message.payload_bytes)
        self.arrived.append(message)
        if len(self.arrived) > self.arrived_high_water:
            self.arrived_high_water = len(self.arrived)
        self.stats.data_messages += 1
        self.stats.data_bytes += message.payload_bytes
        self.stats.header_bytes += message.header_bytes
        self.data_waitset.wake()

    def receive_ready(self) -> bool:
        """SPI_receive guard: a message is waiting."""
        return bool(self.arrived)

    def receive_ready_n(self, n: int) -> bool:
        """Batched SPI_receive guard: the whole burst has arrived."""
        if n < 1:
            raise ValueError("burst size must be >= 1")
        return len(self.arrived) >= n

    def accept(self) -> Message:
        """SPI_receive consumes one message, freeing its buffer bytes."""
        if not self.arrived:
            raise RuntimeError(
                f"channel {self.edge.name}: SPI_receive fired without a "
                f"message"
            )
        message = self.arrived.popleft()
        self.recv_buffer.read(message.payload_bytes)
        return message

    @property
    def protocol(self) -> str:
        return self.config.protocol

    def __repr__(self) -> str:
        return (
            f"SpiChannel({self.edge.name!r}, PE{self.src_pe}->PE{self.dst_pe}, "
            f"{self.protocol}, dynamic={self.dynamic})"
        )
