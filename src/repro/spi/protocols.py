"""SPI buffer-synchronization protocols: BBS and UBS (paper §4).

* **SPI_BBS** (bounded buffer synchronization) — used "if it can be
  guaranteed that a buffer will not exceed a predetermined size".  The
  guarantee comes from compile-time analysis (a feedback path in the
  schedule throttles the producer — the eq. 2 bound); at run time the
  sender writes into the receiver's circular buffer *without any
  reverse-direction message*.  The simulator still checks the guarantee:
  an overflow raises, because it would mean the static analysis (or the
  user-supplied capacity) was wrong, never that data was silently lost.

* **SPI_UBS** (unbounded buffer synchronization) — used "when it cannot
  be guaranteed statically that an IPC buffer will not overflow through
  any admissible sequence of send/receive operations".  The logical
  buffer is unbounded; the *physical* allocation is a window of
  ``window_tokens`` messages, and the receiver returns an
  **acknowledgment message** per consumed message so the sender never
  overruns the window.  These ack messages are exactly what the paper's
  resynchronization removes when they are redundant: a channel whose ack
  edge was proven redundant runs ack-free (``acks_enabled = False``)
  while keeping the same physical window, whose safety the redundancy
  proof guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Protocol", "ProtocolConfig", "ChannelFlowControl"]


class Protocol:
    """Protocol selector constants."""

    BBS = "SPI_BBS"
    UBS = "SPI_UBS"

    ALL = (BBS, UBS)


@dataclass(frozen=True)
class ProtocolConfig:
    """Per-channel protocol parameters resolved at compile time."""

    protocol: str
    capacity_tokens: int
    acks_enabled: bool

    def __post_init__(self) -> None:
        if self.protocol not in Protocol.ALL:
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.capacity_tokens < 1:
            raise ValueError("capacity_tokens must be >= 1")
        if self.protocol == Protocol.BBS and self.acks_enabled:
            raise ValueError(
                "BBS never sends acknowledgments (its bound is static)"
            )


class ChannelFlowControl:
    """Run-time flow-control state of one channel's sender side.

    For UBS with acks: ``credits`` counts the free window slots; a send
    consumes one, an ack restores one, and the SPI_send guard blocks at
    zero.  For BBS (and ack-free UBS) the sender never blocks on
    credits — safety is the static analysis' job, and the receive-side
    :class:`~repro.platform.memory.BufferMemory` enforces it.
    """

    def __init__(self, config: ProtocolConfig) -> None:
        self.config = config
        self._credits = config.capacity_tokens
        self.acks_received = 0
        self.sends = 0

    @property
    def uses_credits(self) -> bool:
        return self.config.protocol == Protocol.UBS and self.config.acks_enabled

    def can_send(self) -> bool:
        if not self.uses_credits:
            return True
        return self._credits > 0

    def can_send_n(self, n: int) -> bool:
        """Window room for a burst of ``n`` sends (batched dispatch)."""
        if n < 1:
            raise ValueError("burst size must be >= 1")
        if not self.uses_credits:
            return True
        return self._credits >= n

    def on_send(self) -> None:
        self.sends += 1
        if self.uses_credits:
            if self._credits <= 0:
                raise RuntimeError(
                    "protocol violation: send issued with zero credits"
                )
            self._credits -= 1

    def on_ack(self) -> None:
        self.acks_received += 1
        if self.uses_credits:
            if self._credits >= self.config.capacity_tokens:
                raise RuntimeError(
                    "protocol violation: more acks than outstanding sends"
                )
            self._credits += 1

    @property
    def credits(self) -> Optional[int]:
        return self._credits if self.uses_credits else None
