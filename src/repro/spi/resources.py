"""FPGA resource costs of the SPI library modules.

The paper's Tables 1 and 2 report the area of the SPI library relative
to the full system.  The costs below are structural estimates of the
HDL modules described in §5.1, built with the Virtex-4 rules of
:mod:`repro.platform.fpga`:

* **SPI_init** — a small one-shot FSM (pointer/link initialisation);
* **SPI_send** — header assembly (one ID word; dynamic adds the size
  word), a word-serialiser onto the link, and the UBS credit counter
  when acknowledgments are in play;
* **SPI_receive** — header decode, payload copy engine, the receive
  buffer itself (this is where the Block RAMs of the paper's tables
  come from — note Table 1's "50 %" BRAM share for the SPI library),
  and the ack generator for UBS channels.

No SPI module contains a multiplier, so the DSP48 column of the SPI
rows is structurally zero — matching both tables of the paper.
"""

from __future__ import annotations

from repro.platform.fpga import ResourceVector, estimate_datapath, estimate_fifo

__all__ = [
    "init_module_cost",
    "send_module_cost",
    "recv_module_cost",
    "channel_cost",
]


def init_module_cost() -> ResourceVector:
    """SPI_init: one-shot initialisation FSM per PE."""
    return estimate_datapath(registers_bits=8, logic_lut4=10)


def send_module_cost(dynamic: bool, uses_acks: bool = False) -> ResourceVector:
    """SPI_send: header assembly + serialiser (+ size field, + credits).

    These modules are deliberately tiny — a header register, a word
    serialiser and a few FSM states: the paper's entire point is that a
    compile-time-specialised interface needs almost no logic.
    """
    registers = 20  # edge-ID register, shift register, FSM state
    logic = 24
    if dynamic:
        registers += 8  # size-field register
        logic += 10  # size mux into the header stream
    if uses_acks:
        registers += 6  # credit counter
        logic += 8  # credit compare / block logic
    return estimate_datapath(registers_bits=registers, logic_lut4=logic)


def recv_module_cost(
    dynamic: bool,
    buffer_bytes: int,
    uses_acks: bool = False,
) -> ResourceVector:
    """SPI_receive: header decode + copy engine + receive buffer (+ acks).

    The receive buffer is dual-ported (link write port, consumer read
    port) and therefore maps to Block RAM regardless of depth — the
    fabric share of SPI stays tiny while its BRAM share is visible,
    matching the asymmetry of the paper's Table 1.
    """
    registers = 24
    logic = 30
    if dynamic:
        registers += 8  # received size register
        logic += 12  # length counter against the size field
    if uses_acks:
        registers += 4
        logic += 6  # ack message generator
    control = estimate_datapath(registers_bits=registers, logic_lut4=logic)
    storage = estimate_fifo(buffer_bytes, force_bram=True)
    return control + storage


def channel_cost(
    dynamic: bool,
    buffer_bytes: int,
    uses_acks: bool,
) -> ResourceVector:
    """Total SPI fabric for one interprocessor edge (send + receive)."""
    return send_module_cost(dynamic, uses_acks) + recv_module_cost(
        dynamic, buffer_bytes, uses_acks
    )
