"""MPI-like baseline message-passing layer (the comparison point for SPI)."""

from repro.mpi.baseline import MpiConfig, MpiSystem, mpi_engine_cost

__all__ = ["MpiConfig", "MpiSystem", "mpi_engine_cost"]
