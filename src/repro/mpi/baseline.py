"""Generic MPI-like message passing — the baseline SPI is measured against.

The paper's motivation (§1): MPI is portable but "cannot leverage
optimizations obtained by exploiting characteristics specific to this
application domain".  This module models a faithful software-style MPI
point-to-point layer on the same platform simulator, with the costs a
general-purpose implementation (e.g. TMD-MPI on FPGA, which the paper
cites) cannot avoid:

* a full **envelope** on every message — source rank, destination rank,
  tag, communicator, datatype, count — because the library cannot know
  at compile time what the application will send;
* receive-side **matching** of every arriving message against the
  posted-receive queue;
* the **eager / rendezvous** split: small messages are copied through
  bounce buffers (extra copy cost), large messages pay a
  request-to-send / clear-to-send round trip while both endpoints block;
* no dataflow knowledge: no static buffer bounds (so no BBS), no
  resynchronization (every transfer carries its full synchronization).

The same application graph, partition and self-timed schedule are used
as for SPI — the comparison isolates the communication layer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.dataflow.graph import Actor, DataflowGraph, Edge, GraphError
from repro.dataflow.vts import VtsConversion, vts_convert
from repro.mapping.partition import Partition
from repro.mapping.selftimed import SelfTimedSchedule, build_selftimed_schedule
from repro.platform.clock import DEFAULT_CLOCK, ClockDomain
from repro.platform.fpga import ResourceVector, estimate_datapath, estimate_fifo
from repro.platform.interconnect import Interconnect, LinkSpec
from repro.platform.pe import ProcessingElement
from repro.platform.simulator import PESequencer, Simulator, Waitset
from repro.spi.actors import ComputationTask, LocalFifo, payload_nbytes
from repro.spi.library import SpiInsertion, insert_spi_actors
from repro.spi.runtime import RunResult

__all__ = ["MpiConfig", "MpiSystem", "mpi_engine_cost"]


@dataclass(frozen=True)
class MpiConfig:
    """Cost parameters of the MPI-like baseline."""

    clock: ClockDomain = DEFAULT_CLOCK
    link_spec: LinkSpec = field(default_factory=LinkSpec)
    #: full MPI envelope: src, dst, tag, comm, datatype, count (6 words)
    envelope_bytes: int = 24
    #: payload at or below this size goes eager; above, rendezvous
    eager_threshold_bytes: int = 256
    #: software send-path cost per message (argument checks, envelope
    #: build, bounce-buffer copy setup)
    send_sw_cycles: int = 30
    #: receive-side queue matching per arriving message
    match_cycles: int = 40
    #: per-word copy cost through the library's buffers
    copy_cycles_per_word: int = 1
    word_bytes: int = 4


def mpi_engine_cost() -> ResourceVector:
    """Fabric cost of one per-PE MPI engine (matching queues, envelope
    processing, datatype handling) — what a TMD-MPI-style implementation
    instantiates next to every processing element."""
    control = estimate_datapath(registers_bits=420, logic_lut4=640)
    queues = estimate_fifo(depth_bytes=4096)  # unexpected/posted queues
    return control + queues


class _MpiChannel:
    """Run-time state of one MPI point-to-point flow (one edge)."""

    def __init__(
        self,
        edge: Edge,
        src_pe: int,
        dst_pe: int,
        token_bytes: int,
        rendezvous: bool,
    ) -> None:
        self.edge = edge
        self.src_pe = src_pe
        self.dst_pe = dst_pe
        self.token_bytes = token_bytes
        self.rendezvous = rendezvous
        self.arrived_data: Deque[tuple] = deque()  # (payload list, nbytes)
        self.arrived_rts: int = 0
        self.cts_pending: Deque[Callable[[], None]] = deque()
        #: a rendezvous receiver mid-handshake waiting for the payload
        self.data_pending: Deque[Callable[[], None]] = deque()
        self.unexpected_high_water = 0
        self.data_messages = 0
        self.control_messages = 0
        self.payload_bytes = 0
        self.envelope_bytes_total = 0
        #: woken when a message or RTS envelope lands (unblocks MPI_Recv)
        self.recv_waitset = Waitset(f"{edge.name}.mpi_recv")

    def deliver_data(self, payload: List, nbytes: int, envelope: int) -> None:
        self.arrived_data.append((payload, nbytes))
        self.data_messages += 1
        self.payload_bytes += nbytes
        self.envelope_bytes_total += envelope
        if len(self.arrived_data) > self.unexpected_high_water:
            self.unexpected_high_water = len(self.arrived_data)
        if self.data_pending:
            resume = self.data_pending.popleft()
            resume()
        self.recv_waitset.wake()

    def deliver_rts(self, envelope: int) -> None:
        self.arrived_rts += 1
        self.control_messages += 1
        self.envelope_bytes_total += envelope
        self.recv_waitset.wake()

    def deliver_cts(self, envelope: int) -> None:
        self.control_messages += 1
        self.envelope_bytes_total += envelope
        if self.cts_pending:
            resume = self.cts_pending.popleft()
            resume()


class _MpiSendTask:
    """MPI_Send: eager (buffered) or rendezvous (blocking handshake)."""

    def __init__(
        self,
        actor: Actor,
        channel: _MpiChannel,
        in_fifo: LocalFifo,
        sim: Simulator,
        interconnect: Interconnect,
        config: MpiConfig,
    ) -> None:
        self.actor = actor
        self.name = actor.name.replace("spi_send", "mpi_send")
        self.channel = channel
        self.in_fifo = in_fifo
        self.sim = sim
        self.interconnect = interconnect
        self.config = config
        self.rate = actor.port("in").rate
        self.complete_async: Optional[Callable[[], None]] = None
        self._staged: Optional[List] = None

    def ready(self, now: int) -> bool:
        return len(self.in_fifo) >= self.rate

    def blocked_reason(self, now: int) -> Optional[str]:
        """Why this send cannot start (None when it can)."""
        if len(self.in_fifo) < self.rate:
            return (
                f"starved on {self.in_fifo.edge.name!r} "
                f"(has {len(self.in_fifo)}, needs {self.rate})"
            )
        return None

    def wait_on(self, now: int) -> List[Waitset]:
        """Waitsets of the resources currently blocking the guard."""
        if len(self.in_fifo) < self.rate:
            return [self.in_fifo.waitset]
        return []

    def _copy_cycles(self, nbytes: int) -> int:
        words = (nbytes + self.config.word_bytes - 1) // self.config.word_bytes
        return words * self.config.copy_cycles_per_word

    def start(self, now: int) -> Optional[int]:
        tokens = self.in_fifo.pop(self.rate)
        self._staged = tokens
        nbytes = payload_nbytes(tokens, self.channel.token_bytes)
        if not self.channel.rendezvous:
            # Eager: envelope build + bounce-buffer copy, then the PE is
            # free; the library drains the buffer onto the link.
            return self.config.send_sw_cycles + self._copy_cycles(nbytes)
        # Rendezvous: the PE blocks through RTS -> CTS -> data injection.
        link = self.interconnect.link(self.channel.src_pe, self.channel.dst_pe)
        rts_cost = self.config.send_sw_cycles
        _, rts_arrival = link.reserve(
            now + rts_cost, self.config.envelope_bytes
        )
        channel = self.channel
        sim = self.sim
        config = self.config
        interconnect = self.interconnect

        def on_cts() -> None:
            data_link = interconnect.link(channel.src_pe, channel.dst_pe)
            inject_start = sim.now + self._copy_cycles(nbytes)
            _, data_arrival = data_link.reserve(
                inject_start, config.envelope_bytes + nbytes
            )
            payload = list(self._staged or [])

            def deliver() -> None:
                channel.deliver_data(payload, nbytes, config.envelope_bytes)
                sim.notify()

            sim.at(data_arrival, deliver)
            assert self.complete_async is not None
            # The sender unblocks once the payload has been injected.
            sim.at(inject_start, self.complete_async)

        def rts_arrive() -> None:
            channel.deliver_rts(config.envelope_bytes)
            channel.cts_pending.append(on_cts)
            sim.notify()

        sim.at(rts_arrival, rts_arrive)
        return None

    def finish(self, now: int) -> None:
        if self.channel.rendezvous:
            self._staged = None
            return
        tokens = self._staged or []
        self._staged = None
        nbytes = payload_nbytes(tokens, self.channel.token_bytes)
        link = self.interconnect.link(self.channel.src_pe, self.channel.dst_pe)
        _, arrival = link.reserve(now, self.config.envelope_bytes + nbytes)
        channel = self.channel
        sim = self.sim
        envelope = self.config.envelope_bytes

        def deliver() -> None:
            channel.deliver_data(tokens, nbytes, envelope)
            sim.notify()

        sim.at(arrival, deliver)


class _MpiCollectiveSendTask:
    """MPI_Bcast / MPI_Scatter: one library call serving every branch.

    The library still knows nothing about the dataflow graph, but the
    collective API lets it amortize the *software* send path: one
    argument check plus one bounce-buffer copy of the root payload,
    then one eager envelope+payload injection per destination.  On the
    wire nothing is shared — a point-to-point MPI fabric still carries
    one full message per rank, which is exactly what the SPI
    shared-payload transport improves on.  Collectives are always
    eager: the root cannot block on a rendezvous handshake with every
    rank inside one call.
    """

    def __init__(
        self,
        actor: Actor,
        branches: List[tuple],
        local_branches: List[LocalFifo],
        in_fifo: LocalFifo,
        sim: Simulator,
        interconnect: Interconnect,
        config: MpiConfig,
    ) -> None:
        self.actor = actor
        self.name = actor.name.replace("spi_send", "mpi_coll")
        #: (member IPC edge, _MpiChannel) per remote branch, branch order
        self.branches = sorted(
            branches, key=lambda item: item[0].branch_index
        )
        self.local_branches = sorted(
            local_branches, key=lambda fifo: fifo.edge.branch_index
        )
        self.in_fifo = in_fifo
        self.sim = sim
        self.interconnect = interconnect
        self.config = config
        self.rate = actor.port("in").rate
        self._staged: Optional[List] = None

    def ready(self, now: int) -> bool:
        return len(self.in_fifo) >= self.rate

    def blocked_reason(self, now: int) -> Optional[str]:
        if len(self.in_fifo) < self.rate:
            return (
                f"starved on {self.in_fifo.edge.name!r} "
                f"(has {len(self.in_fifo)}, needs {self.rate})"
            )
        return None

    def wait_on(self, now: int) -> List[Waitset]:
        if len(self.in_fifo) < self.rate:
            return [self.in_fifo.waitset]
        return []

    def _copy_cycles(self, nbytes: int) -> int:
        words = (nbytes + self.config.word_bytes - 1) // self.config.word_bytes
        return words * self.config.copy_cycles_per_word

    def start(self, now: int) -> Optional[int]:
        tokens = self.in_fifo.pop(self.rate)
        self._staged = tokens
        nbytes = payload_nbytes(tokens, self.in_fifo.edge.token_bytes)
        return self.config.send_sw_cycles + self._copy_cycles(nbytes)

    def finish(self, now: int) -> None:
        tokens = self._staged or []
        self._staged = None
        for fifo in self.local_branches:
            connection = fifo.edge.connection
            part = (
                connection.produced_tokens(fifo.edge, tokens)
                if connection is not None
                else list(tokens)
            )
            fifo.push(part)
        sim = self.sim
        envelope = self.config.envelope_bytes
        for member, channel in self.branches:
            connection = member.connection
            part = (
                connection.produced_tokens(member, tokens)
                if connection is not None
                else list(tokens)
            )
            nbytes = payload_nbytes(part, channel.token_bytes)
            link = self.interconnect.link(channel.src_pe, channel.dst_pe)
            _, arrival = link.reserve(now, envelope + nbytes)

            def deliver(
                ch=channel, payload=part, size=nbytes
            ) -> None:
                ch.deliver_data(payload, size, envelope)
                sim.notify()

            sim.at(arrival, deliver)


class _MpiRecvTask:
    """MPI_Recv: matching + copy-out (eager) or CTS handshake (rendezvous)."""

    def __init__(
        self,
        actor: Actor,
        channel: _MpiChannel,
        out_fifo: LocalFifo,
        sim: Simulator,
        interconnect: Interconnect,
        config: MpiConfig,
    ) -> None:
        self.actor = actor
        self.name = actor.name.replace("spi_recv", "mpi_recv")
        self.channel = channel
        self.out_fifo = out_fifo
        self.sim = sim
        self.interconnect = interconnect
        self.config = config
        self.complete_async: Optional[Callable[[], None]] = None

    def ready(self, now: int) -> bool:
        if self.channel.rendezvous:
            return self.channel.arrived_rts > 0
        return bool(self.channel.arrived_data)

    def blocked_reason(self, now: int) -> Optional[str]:
        """Why this receive cannot start (None when it can)."""
        if not self.ready(now):
            kind = "RTS envelope" if self.channel.rendezvous else "message"
            return (
                f"waiting for a {kind} on channel "
                f"{self.channel.edge.name!r}"
            )
        return None

    def wait_on(self, now: int) -> List[Waitset]:
        """Waitsets of the resources currently blocking the guard."""
        return [self.channel.recv_waitset]

    def _copy_cycles(self, nbytes: int) -> int:
        words = (nbytes + self.config.word_bytes - 1) // self.config.word_bytes
        return words * self.config.copy_cycles_per_word

    def start(self, now: int) -> Optional[int]:
        if not self.channel.rendezvous:
            _, nbytes = self.channel.arrived_data[0]
            return self.config.match_cycles + self._copy_cycles(nbytes)
        # Rendezvous: match the RTS, return CTS, block until the data has
        # arrived and been copied out.
        self.channel.arrived_rts -= 1
        link = self.interconnect.link(self.channel.dst_pe, self.channel.src_pe)
        _, cts_arrival = link.reserve(
            now + self.config.match_cycles, self.config.envelope_bytes
        )
        channel = self.channel
        sim = self.sim

        def cts_arrive() -> None:
            channel.deliver_cts(self.config.envelope_bytes)
            sim.notify()

        sim.at(cts_arrival, cts_arrive)

        def data_ready() -> None:
            _, nbytes = channel.arrived_data[0]
            assert self.complete_async is not None
            sim.after(self._copy_cycles(nbytes), self.complete_async)

        # The payload lands strictly after the CTS round trip; register
        # for its delivery instead of polling the channel every cycle.
        if channel.arrived_data:
            data_ready()
        else:
            channel.data_pending.append(data_ready)
        return None

    def finish(self, now: int) -> None:
        payload, _ = self.channel.arrived_data.popleft()
        self.out_fifo.push(list(payload))


class MpiSystem:
    """The application compiled against the MPI-like baseline layer."""

    def __init__(
        self,
        source_graph: DataflowGraph,
        partition: Partition,
        config: MpiConfig,
        conversion: Optional[VtsConversion],
        insertion: SpiInsertion,
        schedule: SelfTimedSchedule,
        channel_modes: Dict[str, bool],
    ) -> None:
        self.source_graph = source_graph
        self.partition = partition
        self.config = config
        self.conversion = conversion
        self.insertion = insertion
        self.schedule = schedule
        #: origin edge name -> uses rendezvous?
        self.channel_modes = channel_modes

    @classmethod
    def compile(
        cls,
        graph: DataflowGraph,
        partition: Partition,
        config: Optional[MpiConfig] = None,
    ) -> "MpiSystem":
        config = config or MpiConfig()
        graph.validate()
        conversion: Optional[VtsConversion] = None
        static_graph = graph
        if graph.is_dynamic:
            conversion = vts_convert(graph)
            static_graph = conversion.graph
        static_partition = Partition(
            static_graph, partition.n_pes, dict(partition.assignment)
        )
        insertion = insert_spi_actors(
            static_graph,
            static_partition,
            conversion=conversion,
            word_bytes=config.word_bytes,
        )
        schedule = build_selftimed_schedule(insertion.graph, insertion.partition)
        collective_origins = {
            origin
            for group in insertion.collective_sends.values()
            for origin in group.remote_origins
        }
        modes: Dict[str, bool] = {}
        for origin_name, (ipc_edge, _, _) in insertion.channels.items():
            payload = ipc_edge.prod_rate * ipc_edge.token_bytes
            # Collective branches are always eager: the root of an
            # MPI_Bcast cannot rendezvous with every rank in one call.
            modes[origin_name] = (
                payload > config.eager_threshold_bytes
                and origin_name not in collective_origins
            )
        return cls(
            source_graph=graph,
            partition=partition,
            config=config,
            conversion=conversion,
            insertion=insertion,
            schedule=schedule,
            channel_modes=modes,
        )

    def run(
        self,
        iterations: int = 1,
        max_cycles: Optional[int] = None,
        wakeups: str = "targeted",
        check_lost_wakeups: bool = False,
    ) -> RunResult:
        if iterations < 1:
            raise GraphError("iterations must be >= 1")
        sim = Simulator(wakeups=wakeups, check_lost_wakeups=check_lost_wakeups)
        interconnect = Interconnect(default_spec=self.config.link_spec)
        graph = self.insertion.graph

        channels: Dict[str, _MpiChannel] = {}
        for origin_name, (ipc_edge, pair, _) in self.insertion.channels.items():
            channels[origin_name] = _MpiChannel(
                edge=ipc_edge,
                src_pe=self.insertion.partition.assignment[pair.send],
                dst_pe=self.insertion.partition.assignment[pair.recv],
                token_bytes=ipc_edge.token_bytes,
                rendezvous=self.channel_modes[origin_name],
            )

        ipc_ids = {e.edge_id for e, _, _ in self.insertion.channels.values()}
        fifos = {
            edge.edge_id: LocalFifo(edge)
            for edge in graph.edges
            if edge.edge_id not in ipc_ids
        }
        collective_groups = self.insertion.collective_sends
        send_map = {
            pair.send: name
            for name, (_, pair, _) in self.insertion.channels.items()
            if pair.send not in collective_groups
        }
        recv_map = {
            pair.recv: name
            for name, (_, pair, _) in self.insertion.channels.items()
        }
        channel_by_ipc_edge = {
            ipc_edge.edge_id: channels[name]
            for name, (ipc_edge, _, _) in self.insertion.channels.items()
        }

        tasks: Dict[str, object] = {}

        def task_for(actor: Actor):
            if actor.name in tasks:
                return tasks[actor.name]
            if actor.name in collective_groups:
                branches = []
                local_branches = []
                for member in graph.out_edges(actor):
                    if member.edge_id in fifos:
                        local_branches.append(fifos[member.edge_id])
                    else:
                        branches.append(
                            (member, channel_by_ipc_edge[member.edge_id])
                        )
                task = _MpiCollectiveSendTask(
                    actor,
                    branches,
                    local_branches,
                    fifos[graph.in_edges(actor)[0].edge_id],
                    sim,
                    interconnect,
                    self.config,
                )
            elif actor.name in send_map:
                task = _MpiSendTask(
                    actor,
                    channels[send_map[actor.name]],
                    fifos[graph.in_edges(actor)[0].edge_id],
                    sim,
                    interconnect,
                    self.config,
                )
            elif actor.name in recv_map:
                task = _MpiRecvTask(
                    actor,
                    channels[recv_map[actor.name]],
                    fifos[graph.out_edges(actor)[0].edge_id],
                    sim,
                    interconnect,
                    self.config,
                )
            else:
                # A port may own several member fifos (gather/reduce
                # sinks, all-local broadcast sources) — accumulate lists.
                inputs: Dict[str, List[LocalFifo]] = {}
                for e in graph.in_edges(actor):
                    if e.edge_id in fifos:
                        inputs.setdefault(e.sink.name, []).append(
                            fifos[e.edge_id]
                        )
                outputs: Dict[str, List[LocalFifo]] = {}
                for e in graph.out_edges(actor):
                    if e.edge_id in fifos:
                        outputs.setdefault(e.source.name, []).append(
                            fifos[e.edge_id]
                        )
                task = ComputationTask(actor, inputs, outputs)
            tasks[actor.name] = task
            return task

        pes: List[ProcessingElement] = []
        sequencers: List[PESequencer] = []
        for pe_index in range(self.partition.n_pes):
            order = self.schedule.orders.get(pe_index, [])
            if not order:
                continue
            pe = ProcessingElement(pe_index)
            program = []
            for task_name in order:
                origin = (
                    self.schedule.task_graph.get_actor(task_name)
                    .params.get("origin", task_name)
                )
                program.append(task_for(graph.get_actor(origin)))
            sequencer = PESequencer(sim, pe, program, iterations)
            pes.append(pe)
            sequencers.append(sequencer)

        for sequencer in sequencers:
            sequencer.begin()
        final = sim.run(max_cycles=max_cycles)

        unfinished = [s for s in sequencers if not s.done]
        if unfinished:
            raise GraphError(
                f"MPI simulation ended with unfinished sequencers: "
                f"{[s.pe.name for s in unfinished]}"
            )

        data_messages = sum(c.data_messages for c in channels.values())
        control_messages = sum(c.control_messages for c in channels.values())
        payload_bytes = sum(c.payload_bytes for c in channels.values())
        envelope_bytes = sum(c.envelope_bytes_total for c in channels.values())

        if iterations >= 4 and sequencers:
            times = sequencers[0].finish_times
            period = (times[-1] - times[1]) / (len(times) - 2)
        else:
            period = final / iterations

        return RunResult(
            cycles=final,
            execution_time_us=self.config.clock.cycles_to_us(final),
            iterations=iterations,
            pe_stats=pes,
            data_messages=data_messages,
            ack_messages=control_messages,
            payload_bytes=payload_bytes,
            header_bytes=envelope_bytes,
            ack_bytes=0,
            buffer_high_water={
                name: c.unexpected_high_water for name, c in channels.items()
            },
            fifo_high_water={
                fifo.edge.name: fifo.high_water for fifo in fifos.values()
            },
            iteration_period_cycles=period,
        )

    def library_resources(self) -> ResourceVector:
        """One MPI engine per PE that communicates."""
        engines = len(
            {
                pe
                for name, (_, pair, _) in self.insertion.channels.items()
                for pe in (
                    self.insertion.partition.assignment[pair.send],
                    self.insertion.partition.assignment[pair.recv],
                )
            }
        )
        return mpi_engine_cost().scale(engines)
