"""Metric primitives: counters, gauges, histograms, and their registry.

The observability layer threads one :class:`MetricsRegistry` through a
simulated execution — the simulator kernel, the PE sequencers, the data
transports and the SPI channels all record into it.  Metrics are cheap
plain-Python accumulators (no locking: the discrete-event simulator is
single-threaded by construction) addressed by a name plus a frozen label
set, mirroring the Prometheus data model so the flat JSON export stays
familiar::

    registry.counter("transport.messages", channel="e0").inc()
    registry.gauge("channel.occupancy", channel="e0").set(3)
    registry.histogram("transport.queueing_cycles").observe(17)

``registry.as_dict()`` renders everything into the documented metrics
JSON shape (see :data:`METRICS_SCHEMA`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "METRICS_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: schema identifier stamped into every metrics JSON document
METRICS_SCHEMA = "repro.metrics/1"

LabelSet = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Dict[str, object]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing count (events, messages, bytes)."""

    name: str
    labels: LabelSet = ()
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only move forward")
        self.value += amount

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": "counter",
            "labels": dict(self.labels),
            "value": self.value,
        }


@dataclass
class Gauge:
    """An instantaneous level that also remembers its high-water mark."""

    name: str
    labels: LabelSet = ()
    value: float = 0
    high_water: float = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": "gauge",
            "labels": dict(self.labels),
            "value": self.value,
            "high_water": self.high_water,
        }


@dataclass
class Histogram:
    """Summary statistics of an observed distribution (delays, sizes)."""

    name: str
    labels: LabelSet = ()
    count: int = 0
    total: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": "histogram",
            "labels": dict(self.labels),
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


@dataclass
class MetricsRegistry:
    """All metrics of one run, addressed by (name, labels)."""

    _metrics: Dict[Tuple[str, str, LabelSet], object] = field(
        default_factory=dict
    )

    def _get(self, kind: str, factory, name: str, labels: Dict[str, object]):
        key = (kind, name, _freeze_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(name=name, labels=key[2])
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get("histogram", Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-ready rendering of every registered metric."""
        entries: List[Dict[str, object]] = [
            metric.as_dict()
            for _, metric in sorted(
                self._metrics.items(), key=lambda item: item[0]
            )
        ]
        return {"schema": METRICS_SCHEMA, "metrics": entries}
