"""Chrome/Perfetto ``trace_event`` export of a recorded execution.

Converts a :class:`~repro.platform.trace.TraceRecorder` (plus the
optional message log of an :class:`~repro.observability.collector
.ObservabilityHub`) into the Trace Event Format JSON that both
``chrome://tracing`` and https://ui.perfetto.dev load directly:

* one named thread per PE carrying complete (``ph: "X"``) slices for
  every task execution interval;
* one async (``ph: "b"``/``"e"``) pair per inter-PE message on a
  dedicated "interconnect" process, so data, acknowledgment and
  resynchronization traffic shows up as arrows-in-flight between the
  moment a sender commits a message and its arrival.

Timestamps are microseconds (the format's unit); simulation cycles are
converted through ``clock_mhz``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

__all__ = ["PE_PID", "INTERCONNECT_PID", "chrome_trace"]

#: pid carrying the per-PE task tracks
PE_PID = 1
#: pid carrying the async message (arrow) tracks
INTERCONNECT_PID = 2


def _cycles_to_us(cycles: float, clock_mhz: float) -> float:
    return cycles / clock_mhz


def chrome_trace(
    trace,
    messages: Optional[Iterable] = None,
    clock_mhz: float = 100.0,
    process_name: str = "SPI platform",
) -> Dict[str, object]:
    """Build a Trace Event Format document from a recorded run.

    ``trace`` is a :class:`~repro.platform.trace.TraceRecorder`;
    ``messages`` an optional iterable of :class:`~repro.observability
    .collector.MessageRecord`.  The result serialises with ``json.dump``
    and loads unmodified in Perfetto.
    """
    if clock_mhz <= 0:
        raise ValueError("clock_mhz must be positive")
    events: List[Dict[str, object]] = [
        {
            "ph": "M",
            "pid": PE_PID,
            "tid": 0,
            "ts": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for pe in sorted({e.pe for e in trace.events}):
        events.append(
            {
                "ph": "M",
                "pid": PE_PID,
                "tid": pe,
                "ts": 0,
                "name": "thread_name",
                "args": {"name": f"PE{pe}"},
            }
        )
    for event in trace.events:
        events.append(
            {
                "name": event.task,
                "cat": "task",
                "ph": "X",
                "ts": _cycles_to_us(event.start, clock_mhz),
                "dur": _cycles_to_us(event.duration, clock_mhz),
                "pid": PE_PID,
                "tid": event.pe,
                "args": {"iteration": event.iteration},
            }
        )

    message_list = list(messages) if messages is not None else []
    if message_list:
        events.append(
            {
                "ph": "M",
                "pid": INTERCONNECT_PID,
                "tid": 0,
                "ts": 0,
                "name": "process_name",
                "args": {"name": "interconnect"},
            }
        )
    for index, record in enumerate(message_list):
        name = f"{record.kind}:{record.channel}"
        common = {
            "name": name,
            "cat": "message",
            "id": index,
            "pid": INTERCONNECT_PID,
            "tid": 0,
            "args": {
                "channel": record.channel,
                "kind": record.kind,
                "src_pe": record.src_pe,
                "dst_pe": record.dst_pe,
                "nbytes": record.nbytes,
                "queueing_cycles": record.queueing_cycles,
            },
        }
        events.append(
            {**common, "ph": "b", "ts": _cycles_to_us(record.started, clock_mhz)}
        )
        events.append(
            {**common, "ph": "e", "ts": _cycles_to_us(record.arrived, clock_mhz)}
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock_mhz": clock_mhz, "time_unit_cycles": True},
    }
