"""Assemble, validate and write the run-level observability artefacts.

Two documents leave a simulated run:

* the **metrics JSON** (:func:`build_metrics_document`) — a flat,
  versioned snapshot of everything measured: simulator kernel counters,
  per-PE busy/blocked cycles with blocked-on-which-task attribution,
  per-channel traffic and occupancy against the compile-time bound
  ``B(e)``, transport queueing/contention, sync-token pools, and the
  data-vs-synchronization wire-byte split;
* the **Chrome trace JSON** (:mod:`repro.observability.perfetto`) —
  the same run as a timeline.

:func:`validate_metrics` is the schema gate the tests and the CI
benchmark-smoke job run against every produced document.

Metrics JSON schema (``repro.metrics/1``)::

    {
      "schema": "repro.metrics/1",
      "run": {"cycles", "iterations", "iteration_period_cycles",
              "execution_time_us", "mcm_bound_cycles",
              "critical_cycle":              # MCM witness (empty tasks =
                {"tasks", "total_cycles",    #  acyclic or witness-less
                 "total_delay"},             #  legacy cache entry)
              "batch"},                      # blocking factor (1 = unbatched)
      "simulator": {"events_processed", "parks", "retry_rounds",
                    "wakeup_policy", "queue_policy", "targeted_wakeups",
                    "broadcast_wakeups", "spurious_wakeups",
                    "total_wakeups", "steady_state_detected_at",
                    "extrapolated_iterations", "compiled_firings",
                    "batched_firings",       # firings run in burst dispatches
                    "batch_dispatches",      # dispatches covering > 1 firing
                    "amortized_dispatch_cycles_saved"},
      "pes": [{"index", "name", "busy_cycles", "blocked_cycles",
               "firings", "blocked_events", "utilization",
               "pe_class",                   # "gpp" | "accelerator"
               "batched_firings", "batch_dispatches",
               "amortized_dispatch_cycles_saved",
               "blocked_by_task": {task: cycles}}],
      "channels": [{"name", "protocol", "src_pe", "dst_pe",
                    "bound_messages",        # B(e), compile-time
                    "physical_slots",        # B(e) + batch in-flight slots
                    "occupancy_high_water_messages",
                    "capacity_bytes", "occupancy_high_water_bytes",
                    "data_messages", "ack_messages", "data_bytes",
                    "header_bytes", "ack_bytes",
                    "full_stall_cycles", "empty_stall_cycles"}],
      "transport": {"type", "messages", "bytes",
                    "fast_path_deliveries",
                    "collective_messages",    # wire transfers of collectives
                    "fan_out_deliveries",     # per-consumer deliveries
                    "wire_bytes_saved",       # logical - wire (shared payload)
                    "channels": [{"channel", "messages", "bytes",
                                  "queueing_cycles", "contention_cycles"}]},
      "sync_pools": [{"name", "messages_sent", "high_water"}],
      "wire_byte_split": {kind: bytes},
      "counters": <MetricsRegistry.as_dict()>
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.observability.metrics import METRICS_SCHEMA

__all__ = [
    "MetricsValidationError",
    "build_metrics_document",
    "validate_metrics",
    "write_json",
]


class MetricsValidationError(ValueError):
    """A metrics document violates its schema or a static bound."""


def _channel_stall_cycles(pes, task_names) -> int:
    """Total blocked cycles attributed to any of ``task_names``."""
    total = 0
    for pe in pes:
        for task, cycles in pe.blocked_by_task.items():
            base = task[5:] if task.startswith("sync:") else task
            if base in task_names:
                total += cycles
    return total


def build_metrics_document(
    system,
    result,
    hub,
    channels: Dict[str, object],
    transport,
    sim,
    sync_pools,
) -> Dict[str, object]:
    """Snapshot one finished run into the metrics JSON shape."""
    pes = result.pe_stats
    batch = getattr(result, "batch", 1)
    pe_entries: List[Dict[str, object]] = [
        {
            "index": pe.index,
            "name": pe.name,
            "busy_cycles": pe.busy_cycles,
            "blocked_cycles": pe.blocked_cycles,
            "firings": pe.firings,
            "blocked_events": pe.blocked_events,
            "utilization": pe.utilization(result.cycles),
            "pe_class": pe.pe_class.kind,
            "batched_firings": pe.batched_firings,
            "batch_dispatches": pe.batch_dispatches,
            "amortized_dispatch_cycles_saved": (
                pe.amortized_dispatch_cycles_saved
            ),
            "blocked_by_task": dict(pe.blocked_by_task),
        }
        for pe in pes
    ]

    channel_entries: List[Dict[str, object]] = []
    for name, plan in sorted(system.channel_plans.items()):
        channel = channels[name]
        stats = channel.stats
        channel_entries.append(
            {
                "name": name,
                "protocol": plan.protocol,
                "src_pe": plan.src_pe,
                "dst_pe": plan.dst_pe,
                "dynamic": plan.dynamic,
                "acks_enabled": plan.acks_enabled,
                "bound_messages": plan.capacity_messages,
                "physical_slots": plan.capacity_messages + batch,
                "occupancy_high_water_messages": channel.arrived_high_water,
                "capacity_bytes": channel.recv_buffer.capacity_bytes,
                "occupancy_high_water_bytes": (
                    channel.recv_buffer.high_water_bytes
                ),
                "message_payload_bytes": plan.message_payload_bytes,
                "data_messages": stats.data_messages,
                "ack_messages": stats.ack_messages,
                "data_bytes": stats.data_bytes,
                "header_bytes": stats.header_bytes,
                "ack_bytes": stats.ack_bytes,
                "full_stall_cycles": _channel_stall_cycles(
                    pes, {plan.send_actor}
                ),
                "empty_stall_cycles": _channel_stall_cycles(
                    pes, {plan.recv_actor}
                ),
            }
        )

    transport_entry: Dict[str, object] = {
        "type": type(transport).__name__,
        "messages": transport.messages,
        "bytes": transport.bytes,
        # point-to-point only; buses always schedule through the heap
        "fast_path_deliveries": getattr(
            transport, "fast_path_deliveries", 0
        ),
        "collective_messages": getattr(transport, "collective_messages", 0),
        "fan_out_deliveries": getattr(transport, "fan_out_deliveries", 0),
        "wire_bytes_saved": getattr(transport, "wire_bytes_saved", 0),
        "channels": [
            {
                "channel": str(key),
                "messages": traffic.messages,
                "bytes": traffic.bytes,
                "queueing_cycles": traffic.queueing_cycles,
                "contention_cycles": traffic.contention_cycles,
            }
            for key, traffic in sorted(
                transport.per_channel.items(), key=lambda kv: str(kv[0])
            )
        ],
    }

    mcm = system.mcm_result()
    return {
        "schema": METRICS_SCHEMA,
        "run": {
            "cycles": result.cycles,
            "iterations": result.iterations,
            "iteration_period_cycles": result.iteration_period_cycles,
            "execution_time_us": result.execution_time_us,
            "mcm_bound_cycles": mcm.value,
            "critical_cycle": {
                "tasks": list(mcm.cycle),
                "total_cycles": mcm.total_cycles,
                "total_delay": mcm.total_delay,
            },
            "batch": batch,
        },
        "simulator": {
            "events_processed": sim.events_processed,
            "parks": sim.parks,
            "retry_rounds": sim.retry_rounds,
            "wakeup_policy": sim.wakeups,
            "queue_policy": sim.queue_policy,
            "targeted_wakeups": sim.targeted_wakeups,
            "broadcast_wakeups": sim.broadcast_wakeups,
            "spurious_wakeups": sim.spurious_wakeups,
            "total_wakeups": sim.total_wakeups,
            "steady_state_detected_at": result.steady_state_detected_at,
            "extrapolated_iterations": result.extrapolated_iterations,
            "compiled_firings": result.compiled_firings,
            "batched_firings": result.batched_firings,
            "batch_dispatches": result.batch_dispatches,
            "amortized_dispatch_cycles_saved": (
                result.amortized_dispatch_cycles_saved
            ),
        },
        "pes": pe_entries,
        "channels": channel_entries,
        "transport": transport_entry,
        "sync_pools": [
            {
                "name": pool.name,
                "messages_sent": pool.messages_sent,
                "high_water": pool.high_water,
            }
            for pool in sync_pools
        ],
        "wire_byte_split": hub.byte_split() if hub is not None else {},
        "counters": (
            hub.registry.as_dict()
            if hub is not None
            else {"schema": METRICS_SCHEMA, "metrics": []}
        ),
    }


_REQUIRED_TOP_KEYS = (
    "schema",
    "run",
    "simulator",
    "pes",
    "channels",
    "transport",
    "sync_pools",
    "wire_byte_split",
    "counters",
)


def validate_metrics(document: Dict[str, object]) -> None:
    """Schema + soundness gate for one metrics document.

    Checks the document shape and — the paper-level invariant — that no
    channel's observed occupancy ever exceeded its compile-time bound:
    at most ``B(e)`` queued messages plus the one in flight through
    SPI_receive, and never more buffered bytes than the allocated
    capacity.  Raises :class:`MetricsValidationError` on any violation.
    """
    if document.get("schema") != METRICS_SCHEMA:
        raise MetricsValidationError(
            f"unknown metrics schema {document.get('schema')!r} "
            f"(expected {METRICS_SCHEMA})"
        )
    missing = [k for k in _REQUIRED_TOP_KEYS if k not in document]
    if missing:
        raise MetricsValidationError(f"missing top-level keys: {missing}")
    for channel in document["channels"]:
        name = channel.get("name", "<unnamed>")
        high = channel["occupancy_high_water_messages"]
        slots = channel["physical_slots"]
        if high > slots:
            raise MetricsValidationError(
                f"channel {name!r}: occupancy high-water {high} messages "
                f"exceeds the static bound of {slots} slots "
                f"(B(e) = {channel['bound_messages']} + the in-flight "
                f"burst)"
            )
        capacity = channel["capacity_bytes"]
        if (
            capacity is not None
            and channel["occupancy_high_water_bytes"] > capacity
        ):
            raise MetricsValidationError(
                f"channel {name!r}: buffered "
                f"{channel['occupancy_high_water_bytes']}B exceeds the "
                f"allocated {capacity}B"
            )
    for pe in document["pes"]:
        attributed = sum(pe["blocked_by_task"].values())
        if attributed > pe["blocked_cycles"]:
            raise MetricsValidationError(
                f"{pe['name']}: per-task blocked cycles ({attributed}) "
                f"exceed the PE total ({pe['blocked_cycles']})"
            )
    batch = document["run"].get("batch", 1)
    if batch < 1:
        raise MetricsValidationError(f"run: batch {batch} must be >= 1")
    witness = document["run"].get("critical_cycle")
    if witness is not None:
        bound = document["run"]["mcm_bound_cycles"]
        tasks = witness.get("tasks", [])
        total_cycles = witness.get("total_cycles", 0)
        total_delay = witness.get("total_delay", 0)
        if total_delay < 0 or total_cycles < 0:
            raise MetricsValidationError(
                f"run: negative critical-cycle sums ({total_cycles} "
                f"cycles / {total_delay} delay)"
            )
        if tasks and total_delay > 0:
            ratio = total_cycles / total_delay
            if abs(ratio - bound) > 1e-9 * max(1.0, abs(bound)):
                raise MetricsValidationError(
                    f"run: critical cycle ratio {ratio} disagrees with "
                    f"mcm_bound_cycles {bound}"
                )
        if tasks and total_delay == 0 and bound != float("inf"):
            raise MetricsValidationError(
                f"run: zero-delay critical cycle with finite MCM bound "
                f"{bound}"
            )
    sim = document["simulator"]
    batched = sim.get("batched_firings", 0)
    dispatches = sim.get("batch_dispatches", 0)
    saved = sim.get("amortized_dispatch_cycles_saved", 0)
    if dispatches == 0 and (batched or saved):
        raise MetricsValidationError(
            f"simulator: batched_firings {batched} / "
            f"amortized_dispatch_cycles_saved {saved} without any "
            f"batch_dispatches"
        )
    if batched < 2 * dispatches:
        raise MetricsValidationError(
            f"simulator: batched_firings {batched} below 2 x "
            f"batch_dispatches ({dispatches}) — every batched dispatch "
            f"covers at least two firings"
        )
    if batch == 1 and dispatches:
        raise MetricsValidationError(
            f"simulator: {dispatches} batch_dispatches in an unbatched "
            f"(batch = 1) run"
        )
    if "total_wakeups" in sim:
        split_sum = sim["targeted_wakeups"] + sim["broadcast_wakeups"]
        if sim["total_wakeups"] != split_sum:
            raise MetricsValidationError(
                f"simulator: total_wakeups {sim['total_wakeups']} != "
                f"targeted + broadcast ({split_sum})"
            )
        if sim["spurious_wakeups"] > sim["total_wakeups"]:
            raise MetricsValidationError(
                f"simulator: spurious_wakeups {sim['spurious_wakeups']} "
                f"exceed total_wakeups {sim['total_wakeups']}"
            )
    detected = sim.get("steady_state_detected_at")
    extrapolated = sim.get("extrapolated_iterations", 0)
    if detected is None and extrapolated:
        raise MetricsValidationError(
            f"simulator: {extrapolated} extrapolated iterations without a "
            f"detected steady state"
        )
    iterations = document["run"].get("iterations")
    if iterations is not None and extrapolated >= iterations:
        raise MetricsValidationError(
            f"simulator: extrapolated_iterations {extrapolated} must be "
            f"< run iterations {iterations} (the tail always simulates)"
        )
    transport_doc = document["transport"]
    collective = transport_doc.get("collective_messages", 0)
    fan_out = transport_doc.get("fan_out_deliveries", 0)
    saved = transport_doc.get("wire_bytes_saved", 0)
    if collective == 0 and (fan_out or saved):
        raise MetricsValidationError(
            f"transport: fan_out_deliveries {fan_out} / wire_bytes_saved "
            f"{saved} without any collective_messages"
        )
    if fan_out < collective:
        raise MetricsValidationError(
            f"transport: fan_out_deliveries {fan_out} below "
            f"collective_messages {collective} (every transfer delivers "
            f"to at least one consumer)"
        )
    logical_bytes = sum(
        channel["data_bytes"] + channel["header_bytes"]
        for channel in document["channels"]
    )
    if saved > logical_bytes:
        raise MetricsValidationError(
            f"transport: wire_bytes_saved {saved} exceeds the logical "
            f"channel traffic {logical_bytes}B it is saved from"
        )


def write_json(path, document: Dict[str, object]) -> Path:
    """Serialise ``document`` to ``path`` (parents created), return it."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return target
