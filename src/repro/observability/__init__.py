"""Observability: metrics, message logs, trace export, bench artefacts.

The measurement substrate of the reproduction.  A simulated run can be
instrumented end-to-end (``SpiSystem.run(..., metrics=True)``): the
simulator kernel, every PE sequencer, the data transports and the SPI
channels record into one :class:`ObservabilityHub`, and the results
export as

* a flat, versioned **metrics JSON** (:func:`build_metrics_document`,
  gated by :func:`validate_metrics`),
* a Chrome/Perfetto **trace JSON** (:func:`chrome_trace`) with one
  track per PE and async arrows for inter-PE messages,
* per-benchmark **BENCH_<name>.json** perf documents
  (:func:`write_bench_json`) consumed by CI.
"""

from repro.observability.bench import (
    BENCH_SCHEMA,
    BenchValidationError,
    bench_document,
    validate_bench,
    write_bench_json,
)
from repro.observability.collector import MessageRecord, ObservabilityHub
from repro.observability.exporters import (
    MetricsValidationError,
    build_metrics_document,
    validate_metrics,
    write_json,
)
from repro.observability.metrics import (
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.perfetto import (
    INTERCONNECT_PID,
    PE_PID,
    chrome_trace,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchValidationError",
    "METRICS_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "INTERCONNECT_PID",
    "MessageRecord",
    "MetricsRegistry",
    "MetricsValidationError",
    "ObservabilityHub",
    "PE_PID",
    "bench_document",
    "build_metrics_document",
    "chrome_trace",
    "validate_bench",
    "validate_metrics",
    "write_bench_json",
    "write_json",
]
