"""Per-benchmark perf artefacts: the ``BENCH_<name>.json`` feed.

Every benchmark can distil its run into one small JSON document —
makespan, simulated cycles per wall-clock second, channel traffic — that
the CI benchmark-smoke job uploads as an artifact.  Stacked over
commits, these files are the perf trajectory the growth loop gates on.

Schema (``repro.bench/1``)::

    {
      "schema": "repro.bench/1",
      "name": "<benchmark name>",
      "quick": bool,                  # reduced CI sweep?
      "makespan_cycles": int,
      "iteration_period_cycles": float,
      "wall_seconds": float,          # wall time of the measured unit
      "cycles_per_wall_second": float,
      "extra": {...}                  # benchmark-specific numbers
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

__all__ = [
    "BENCH_SCHEMA",
    "BenchValidationError",
    "bench_document",
    "validate_bench",
    "write_bench_json",
]

#: schema identifier stamped into every BENCH_*.json
BENCH_SCHEMA = "repro.bench/1"


class BenchValidationError(ValueError):
    """A bench document violates its schema."""


def bench_document(
    name: str,
    makespan_cycles: int,
    iteration_period_cycles: float,
    wall_seconds: float,
    quick: bool = False,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build one benchmark's perf document."""
    if wall_seconds < 0:
        raise ValueError("wall_seconds must be >= 0")
    throughput = makespan_cycles / wall_seconds if wall_seconds > 0 else 0.0
    return {
        "schema": BENCH_SCHEMA,
        "name": name,
        "quick": quick,
        "makespan_cycles": makespan_cycles,
        "iteration_period_cycles": iteration_period_cycles,
        "wall_seconds": wall_seconds,
        "cycles_per_wall_second": throughput,
        "extra": dict(extra or {}),
    }


_REQUIRED_KEYS = (
    "schema",
    "name",
    "quick",
    "makespan_cycles",
    "iteration_period_cycles",
    "wall_seconds",
    "cycles_per_wall_second",
    "extra",
)


def validate_bench(document: Dict[str, object]) -> None:
    """Schema gate for one bench document.

    A workload that declares itself periodic (``extra["periodic"]``
    truthy) must report a real, positive ``iteration_period_cycles`` —
    a 0.0 there means the producer forgot to compute the period (the
    historical BENCH_kernel.json bug) and is rejected.
    """
    if document.get("schema") != BENCH_SCHEMA:
        raise BenchValidationError(
            f"not a bench document (schema {document.get('schema')!r})"
        )
    missing = [k for k in _REQUIRED_KEYS if k not in document]
    if missing:
        raise BenchValidationError(f"missing bench keys: {missing}")
    if document["wall_seconds"] < 0:
        raise BenchValidationError("wall_seconds must be >= 0")
    period = document["iteration_period_cycles"]
    if document["extra"].get("periodic") and not period > 0:
        raise BenchValidationError(
            f"periodic workload {document['name']!r} reports "
            f"iteration_period_cycles={period!r}; a periodic workload "
            f"must report its detected period (> 0)"
        )


def write_bench_json(directory, document: Dict[str, object]) -> Path:
    """Write ``BENCH_<name>.json`` under ``directory`` and return the path."""
    validate_bench(document)
    target_dir = Path(directory)
    target_dir.mkdir(parents=True, exist_ok=True)
    path = target_dir / f"BENCH_{document['name']}.json"
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path
