"""The observability hub: one object threaded through a simulated run.

The hub bundles the :class:`~repro.observability.metrics.MetricsRegistry`
with the inter-PE message log.  Transports and SPI tasks call
:meth:`ObservabilityHub.message` whenever a message (data, acknowledgment
or resynchronization token) is committed to a link; the hub keeps the
full record — enough to draw async arrows in the Chrome trace and to
split wire traffic into data vs synchronization at any granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.observability.metrics import MetricsRegistry

__all__ = ["MessageRecord", "ObservabilityHub"]


@dataclass(frozen=True)
class MessageRecord:
    """One message's life on the interconnect.

    ``requested`` is when the sender handed the message to the
    transport, ``started`` when the wire actually began carrying it
    (later under contention), ``arrived`` when the last word landed.
    """

    channel: str
    kind: str  # "data" | "ack" | "resync"
    src_pe: int
    dst_pe: int
    nbytes: int
    requested: int
    started: int
    arrived: int

    @property
    def queueing_cycles(self) -> int:
        """Cycles the message waited before the wire accepted it."""
        return self.started - self.requested

    @property
    def transfer_cycles(self) -> int:
        return self.arrived - self.started


@dataclass
class ObservabilityHub:
    """Metrics registry + message log for one execution."""

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    messages: List[MessageRecord] = field(default_factory=list)

    def message(
        self,
        channel: str,
        kind: str,
        src_pe: int,
        dst_pe: int,
        nbytes: int,
        requested: int,
        started: int,
        arrived: int,
    ) -> None:
        """Record one committed link message and its derived metrics."""
        record = MessageRecord(
            channel=channel,
            kind=kind,
            src_pe=src_pe,
            dst_pe=dst_pe,
            nbytes=nbytes,
            requested=requested,
            started=started,
            arrived=arrived,
        )
        self.messages.append(record)
        registry = self.registry
        registry.counter("link.messages", channel=channel, kind=kind).inc()
        registry.counter("link.bytes", channel=channel, kind=kind).inc(nbytes)
        registry.histogram("link.queueing_cycles", channel=channel).observe(
            record.queueing_cycles
        )

    def messages_of(self, channel: str) -> List[MessageRecord]:
        return [m for m in self.messages if m.channel == channel]

    def byte_split(self) -> dict:
        """Total wire bytes by message kind (data vs synchronization)."""
        split: dict = {}
        for record in self.messages:
            split[record.kind] = split.get(record.kind, 0) + record.nbytes
        return split
