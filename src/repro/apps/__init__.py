"""Paper applications: LPC speech compression and particle-filter prognosis."""
