"""Graph builders for the LPC application.

Two systems, matching the paper's §5.2:

* :func:`build_adc_graph` — the full five-actor ADC pipeline of
  figure 2 (used functionally, and as the hardware/software co-design
  context of the experiment);
* :func:`build_parallel_error_graph` — the parallelised error-generation
  subsystem of figure 3: ``n`` hardware PEs each compute the prediction
  errors of one overlapping frame section; per-PE I/O interface actors
  (hosted on a shared I/O processor, PE 0) send the frame subsections
  and the predictor coefficients and receive the error values.  Frame
  size and model order are only known at run time, so every
  interprocessor edge is dynamic and handled by SPI_dynamic over VTS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.lpc.actors import (
    CoefficientSolver,
    ErrorGenerator,
    FrameReader,
    HuffmanEncoder,
    SpectralAnalyzer,
    error_unit_resources,
    fft_resources,
    huffman_resources,
    io_interface_resources,
    next_pow2,
    reader_resources,
    solver_resources,
)
from repro.apps.lpc.lpc import error_cycles, lpc_coefficients, prediction_error
from repro.dataflow.dynamic import DynamicRate
from repro.dataflow.graph import DataflowGraph
from repro.mapping.partition import Partition

__all__ = [
    "build_adc_graph",
    "AdcPipeline",
    "ParallelErrorSystem",
    "build_parallel_error_graph",
]

SAMPLE_BYTES = 2  # 16-bit audio samples
COEF_BYTES = 4  # 32-bit fixed-point predictor coefficients


@dataclass
class AdcPipeline:
    """The figure-2 graph plus handles to its stateful actors."""

    graph: DataflowGraph
    reader: FrameReader
    encoder: HuffmanEncoder
    solver: CoefficientSolver


def build_adc_graph(
    frames: Sequence[np.ndarray],
    order: int = 8,
) -> AdcPipeline:
    """The five-actor ADC pipeline A -> B -> C -> D -> E (paper fig. 2)."""
    frame_size = int(np.asarray(frames[0]).shape[0])
    graph = DataflowGraph("lpc_adc")
    reader = FrameReader(frames)
    analyzer = SpectralAnalyzer()
    solver = CoefficientSolver(order)
    error_gen = ErrorGenerator()
    encoder = HuffmanEncoder()

    frame_bytes = frame_size * SAMPLE_BYTES
    a = graph.actor("A", kernel=reader.kernel, cycles=reader.cycles,
                    params={"resources": reader_resources(frame_bytes)})
    b = graph.actor("B", kernel=analyzer.kernel, cycles=analyzer.cycles,
                    params={"resources": fft_resources(next_pow2(frame_size))})
    c = graph.actor("C", kernel=solver.kernel, cycles=solver.cycles,
                    params={"resources": solver_resources(order)})
    d = graph.actor("D", kernel=error_gen.kernel, cycles=error_gen.cycles,
                    params={"resources": error_unit_resources(order, frame_bytes)})
    e = graph.actor("E", kernel=encoder.kernel, cycles=encoder.cycles,
                    params={"resources": huffman_resources()})

    a.add_output("frame", token_bytes=frame_bytes)
    b.add_input("frame", token_bytes=frame_bytes)
    b.add_output("analyzed", token_bytes=frame_bytes)
    c.add_input("analyzed", token_bytes=frame_bytes)
    c.add_output("model", token_bytes=frame_bytes + order * COEF_BYTES)
    d.add_input("model", token_bytes=frame_bytes + order * COEF_BYTES)
    d.add_output("errors", token_bytes=frame_bytes)
    e.add_input("errors", token_bytes=frame_bytes)
    e.add_output("compressed", token_bytes=frame_bytes)
    graph.mark_interface(e.port("compressed"))

    graph.connect((a, "frame"), (b, "frame"))
    graph.connect((b, "analyzed"), (c, "analyzed"))
    graph.connect((c, "model"), (d, "model"))
    graph.connect((d, "errors"), (e, "errors"))
    graph.validate()
    return AdcPipeline(graph=graph, reader=reader, encoder=encoder, solver=solver)


class _IoSource:
    """One PE's I/O interface, send side: frame subsection + coefficients.

    Frames (and therefore chunk lengths and coefficient counts) may vary
    per iteration — this is the run-time variability that forces
    SPI_dynamic.
    """

    def __init__(
        self,
        frames: Sequence[np.ndarray],
        coefficient_sets: Sequence[np.ndarray],
        n_units: int,
        unit_index: int,
    ) -> None:
        self.frames = [np.asarray(f, dtype=np.float64) for f in frames]
        self.coefficient_sets = [
            np.asarray(c, dtype=np.float64) for c in coefficient_sets
        ]
        if len(self.frames) != len(self.coefficient_sets):
            raise ValueError("need one coefficient set per frame")
        self.n_units = n_units
        self.unit_index = unit_index

    def _bounds(self, frame_size: int, order: int) -> Tuple[int, int, int]:
        chunk = -(-frame_size // self.n_units)
        start = self.unit_index * chunk
        stop = min(frame_size, start + chunk)
        overlap = 0 if self.unit_index == 0 else order
        if start - overlap < 0:
            raise ValueError(
                f"frame of {frame_size} samples too short for unit "
                f"{self.unit_index} with order {order}"
            )
        return start, stop, overlap

    def kernel(self, firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        frame = self.frames[firing_index % len(self.frames)]
        coefs = self.coefficient_sets[firing_index % len(self.coefficient_sets)]
        start, stop, overlap = self._bounds(frame.shape[0], coefs.shape[0])
        chunk = [float(v) for v in frame[start - overlap : stop]]
        return {
            "chunk": chunk,
            "coefs": [float(v) for v in coefs],
        }

    def cycles(self, firing_index: int, inputs: Dict[str, list]) -> int:
        frame = self.frames[firing_index % len(self.frames)]
        coefs = self.coefficient_sets[firing_index % len(self.coefficient_sets)]
        start, stop, overlap = self._bounds(frame.shape[0], coefs.shape[0])
        # read the subsection and the coefficients out of frame memory
        return (stop - start + overlap) + coefs.shape[0]


class _ErrorUnit:
    """One hardware PE of the parallel error computation (actor D_i)."""

    def __init__(self, unit_index: int) -> None:
        self.unit_index = unit_index

    def kernel(self, firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        chunk = np.asarray(inputs["chunk"], dtype=np.float64)
        coefs = np.asarray(inputs["coefs"], dtype=np.float64)
        overlap = 0 if self.unit_index == 0 else coefs.shape[0]
        errors = prediction_error(chunk, coefs)[overlap:]
        return {"errors": [float(v) for v in errors]}

    def cycles(self, firing_index: int, inputs: Dict[str, list]) -> int:
        chunk = inputs.get("chunk") or []
        coefs = inputs.get("coefs") or []
        if not chunk or not coefs:
            return error_cycles(64, 8)
        overlap = 0 if self.unit_index == 0 else len(coefs)
        return error_cycles(len(chunk) - overlap, len(coefs))


class _IoSink:
    """One PE's I/O interface, receive side: collects the error values."""

    def __init__(self, collector: List[dict], unit_index: int) -> None:
        self.collector = collector
        self.unit_index = unit_index

    def kernel(self, firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        errors = list(inputs["errors"])
        self.collector.append(
            {
                "iteration": firing_index,
                "unit": self.unit_index,
                "errors": errors,
            }
        )
        return {}

    def cycles(self, firing_index: int, inputs: Dict[str, list]) -> int:
        return max(1, len(inputs.get("errors") or []))


@dataclass
class ParallelErrorSystem:
    """The figure-3 subsystem: graph, partition and result collector."""

    graph: DataflowGraph
    partition: Partition
    n_units: int
    collected: List[dict] = field(default_factory=list)

    def assembled_errors(self, iteration: int, frame_size: int) -> np.ndarray:
        """Reassemble one frame's error signal from the per-PE pieces."""
        pieces = sorted(
            (r for r in self.collected if r["iteration"] == iteration),
            key=lambda r: r["unit"],
        )
        if len(pieces) != self.n_units:
            raise ValueError(
                f"iteration {iteration}: have {len(pieces)} of "
                f"{self.n_units} sections"
            )
        flat: List[float] = []
        for piece in pieces:
            flat.extend(piece["errors"])
        return np.asarray(flat[:frame_size])


def build_parallel_error_graph(
    frames: Sequence[np.ndarray],
    order: int,
    n_units: int,
    max_frame_size: Optional[int] = None,
    max_order: Optional[int] = None,
) -> ParallelErrorSystem:
    """The paper's figure-3 system for ``n_units`` error PEs.

    PE 0 hosts the I/O interface actors (one source/sink pair per error
    unit, serialised on the shared interface — the serialization that
    bounds speedup); PEs ``1..n`` host the error-generation datapaths.
    Predictor coefficients are computed per frame up front (they come
    from the software side of the paper's hardware/software co-design).
    """
    if n_units < 1:
        raise ValueError("n_units must be >= 1")
    frames = [np.asarray(f, dtype=np.float64) for f in frames]
    max_n = max_frame_size or max(f.shape[0] for f in frames)
    max_m = max_order or order
    chunk_bound = -(-max_n // n_units) + max_m
    error_bound = -(-max_n // n_units)

    coefficient_sets = [lpc_coefficients(f, order) for f in frames]

    graph = DataflowGraph(f"lpc_parallel_d_{n_units}pe")
    collected: List[dict] = []
    assignment: Dict[str, int] = {}
    chunk_bytes = chunk_bound * SAMPLE_BYTES

    for unit in range(n_units):
        source = _IoSource(frames, coefficient_sets, n_units, unit)
        error_unit = _ErrorUnit(unit)
        sink = _IoSink(collected, unit)

        # timing_periodic: execution times and production volumes cycle
        # with the fixed frame list (firing_index % len(frames)), so the
        # steady-state warp is exact despite the callable cycle models
        # and dynamic rates.
        src_actor = graph.actor(
            f"io_src_{unit}", kernel=source.kernel, cycles=source.cycles,
            params={"resources": io_interface_resources(chunk_bytes),
                    "timing_periodic": True},
        )
        d_actor = graph.actor(
            f"D_{unit}", kernel=error_unit.kernel, cycles=error_unit.cycles,
            params={"resources": error_unit_resources(max_m, chunk_bytes),
                    "timing_periodic": True},
        )
        snk_actor = graph.actor(
            f"io_snk_{unit}", kernel=sink.kernel, cycles=sink.cycles,
            params={"resources": io_interface_resources(
                error_bound * SAMPLE_BYTES),
                    "timing_periodic": True},
        )

        src_actor.add_output(
            "chunk", rate=DynamicRate(chunk_bound), token_bytes=SAMPLE_BYTES
        )
        src_actor.add_output(
            "coefs", rate=DynamicRate(max_m), token_bytes=COEF_BYTES
        )
        d_actor.add_input(
            "chunk", rate=DynamicRate(chunk_bound), token_bytes=SAMPLE_BYTES
        )
        d_actor.add_input(
            "coefs", rate=DynamicRate(max_m), token_bytes=COEF_BYTES
        )
        d_actor.add_output(
            "errors", rate=DynamicRate(error_bound), token_bytes=SAMPLE_BYTES
        )
        snk_actor.add_input(
            "errors", rate=DynamicRate(error_bound), token_bytes=SAMPLE_BYTES
        )

        graph.connect((src_actor, "chunk"), (d_actor, "chunk"))
        graph.connect((src_actor, "coefs"), (d_actor, "coefs"))
        graph.connect((d_actor, "errors"), (snk_actor, "errors"))

        assignment[src_actor.name] = 0
        assignment[snk_actor.name] = 0
        assignment[d_actor.name] = unit + 1

    graph.validate()
    partition = Partition.manual(graph, assignment)
    return ParallelErrorSystem(
        graph=graph,
        partition=partition,
        n_units=n_units,
        collected=collected,
    )
