"""Radix-2 iterative FFT (own implementation, no numpy.fft).

Actor ``B`` of the paper's application 1 "implements Fast Fourier
transform (FFT) operation on the input samples".  We implement the
classic decimation-in-time radix-2 algorithm: bit-reversal permutation
followed by log2(N) butterfly stages — the same structure a System
Generator FFT core realises, which is also what the cycle model
(:func:`fft_cycles`) charges.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "fft",
    "fft_batch",
    "ifft",
    "power_spectrum",
    "power_spectrum_batch",
    "fft_cycles",
    "is_power_of_two",
]


def is_power_of_two(n: int) -> bool:
    """True for positive powers of two (1 counts)."""
    return n > 0 and (n & (n - 1)) == 0


def _bit_reverse_indices(n: int) -> np.ndarray:
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


def fft(samples: Sequence[complex]) -> np.ndarray:
    """Forward FFT of a power-of-two length sequence."""
    data = np.asarray(samples, dtype=np.complex128)
    n = data.shape[0]
    if not is_power_of_two(n):
        raise ValueError(f"FFT length must be a power of two, got {n}")
    if n == 1:
        return data.copy()
    out = data[_bit_reverse_indices(n)].copy()
    span = 2
    while span <= n:
        half = span // 2
        twiddles = np.exp(-2j * math.pi * np.arange(half) / span)
        for block in range(0, n, span):
            upper = out[block:block + half].copy()
            lower = out[block + half:block + span] * twiddles
            out[block:block + half] = upper + lower
            out[block + half:block + span] = upper - lower
        span *= 2
    return out


def fft_batch(frames: Sequence[Sequence[complex]]) -> np.ndarray:
    """Forward FFTs of ``(B, N)`` equal-length windows in one pass.

    The butterfly recursion is vectorized over the batch dimension
    *and* over same-stage blocks (a ``(B, N/span, span)`` reshape
    replaces the per-block Python loop).  Every element sees exactly
    the same operand pair in the same stage order as :func:`fft`, so
    each row is bit-identical to the scalar transform of that window.
    """
    data = np.atleast_2d(np.asarray(frames, dtype=np.complex128))
    b, n = data.shape
    if not is_power_of_two(n):
        raise ValueError(f"FFT length must be a power of two, got {n}")
    if n == 1:
        return data.copy()
    out = data[:, _bit_reverse_indices(n)].copy()
    span = 2
    while span <= n:
        half = span // 2
        twiddles = np.exp(-2j * math.pi * np.arange(half) / span)
        view = out.reshape(b, n // span, span)
        upper = view[:, :, :half].copy()
        lower = view[:, :, half:] * twiddles
        view[:, :, :half] = upper + lower
        view[:, :, half:] = upper - lower
        span *= 2
    return out


def ifft(spectrum: Sequence[complex]) -> np.ndarray:
    """Inverse FFT (conjugate trick over :func:`fft`)."""
    data = np.asarray(spectrum, dtype=np.complex128)
    return np.conj(fft(np.conj(data))) / data.shape[0]


def power_spectrum(samples: Sequence[float]) -> np.ndarray:
    """``|FFT|^2`` of a real signal — the spectral view actor B exports."""
    return np.abs(fft(samples)) ** 2


def power_spectrum_batch(frames: Sequence[Sequence[float]]) -> np.ndarray:
    """``|FFT|^2`` of a batch of real windows (rows match
    :func:`power_spectrum` bit-for-bit, see :func:`fft_batch`)."""
    return np.abs(fft_batch(frames)) ** 2


def fft_cycles(n: int, cycles_per_butterfly: int = 4) -> int:
    """Hardware cycle model: ``(N/2) log2(N)`` butterflies plus I/O.

    A streaming radix-2 core performs one butterfly per
    ``cycles_per_butterfly`` cycles and needs one pass of N cycles for
    load/unload.
    """
    if not is_power_of_two(n):
        raise ValueError(f"FFT length must be a power of two, got {n}")
    stages = int(math.log2(n)) if n > 1 else 0
    return (n // 2) * stages * cycles_per_butterfly + n
