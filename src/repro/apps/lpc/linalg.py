"""LU decomposition and linear solving (own implementation).

Actor ``C`` of the paper's application 1 "performs LU decomposition to
find predictor coefficients": the LPC normal equations ``R a = r`` are
solved by factoring the (Toeplitz) autocorrelation matrix.  We implement
Doolittle LU with partial pivoting plus the triangular substitutions —
no ``numpy.linalg``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = [
    "lu_decompose",
    "forward_substitute",
    "back_substitute",
    "lu_solve",
    "solve",
    "lu_cycles",
]


class SingularMatrixError(ValueError):
    """The matrix has no (numerically) non-zero pivot."""


def lu_decompose(
    matrix: np.ndarray, pivot_tolerance: float = 1e-12
) -> Tuple[np.ndarray, np.ndarray, List[int]]:
    """Doolittle LU with partial pivoting: ``P A = L U``.

    Returns ``(L, U, perm)`` where ``perm`` maps row ``i`` of the
    factorisation to row ``perm[i]`` of ``A``.
    """
    a = np.array(matrix, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"LU needs a square matrix, got shape {a.shape}")
    n = a.shape[0]
    perm = list(range(n))
    for k in range(n):
        pivot_row = k + int(np.argmax(np.abs(a[k:, k])))
        if abs(a[pivot_row, k]) < pivot_tolerance:
            raise SingularMatrixError(
                f"zero pivot in column {k}; matrix is singular"
            )
        if pivot_row != k:
            a[[k, pivot_row]] = a[[pivot_row, k]]
            perm[k], perm[pivot_row] = perm[pivot_row], perm[k]
        factors = a[k + 1:, k] / a[k, k]
        a[k + 1:, k] = factors
        a[k + 1:, k + 1:] -= np.outer(factors, a[k, k + 1:])
    lower = np.tril(a, -1) + np.eye(n)
    upper = np.triu(a)
    return lower, upper, perm


def forward_substitute(lower: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``L y = rhs`` for unit-lower-triangular ``L``."""
    n = lower.shape[0]
    y = np.zeros(n)
    for i in range(n):
        y[i] = rhs[i] - lower[i, :i] @ y[:i]
    return y


def back_substitute(upper: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``U x = rhs`` for upper-triangular ``U``."""
    n = upper.shape[0]
    x = np.zeros(n)
    for i in range(n - 1, -1, -1):
        x[i] = (rhs[i] - upper[i, i + 1:] @ x[i + 1:]) / upper[i, i]
    return x


def lu_solve(
    lower: np.ndarray, upper: np.ndarray, perm: List[int], rhs: np.ndarray
) -> np.ndarray:
    """Solve ``A x = rhs`` given the factorisation of :func:`lu_decompose`."""
    permuted = np.asarray(rhs, dtype=np.float64)[perm]
    return back_substitute(upper, forward_substitute(lower, permuted))


def solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """One-shot ``A x = b`` through LU."""
    lower, upper, perm = lu_decompose(matrix)
    return lu_solve(lower, upper, perm, np.asarray(rhs, dtype=np.float64))


def lu_cycles(order: int, cycles_per_mac: int = 1) -> int:
    """Hardware cycle model of an LU solve of size ``order``.

    Elimination is ~``n^3/3`` multiply-accumulates, the two triangular
    substitutions ~``n^2`` together; a pipelined MAC retires one per
    cycle.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    macs = order ** 3 // 3 + order ** 2
    return macs * cycles_per_mac + order  # +order for load/unload
