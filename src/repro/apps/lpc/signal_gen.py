"""Synthetic speech-like test signals.

The paper compresses acoustic data; real recordings are not available
offline, so we synthesise the signal class LPC is built for: an
autoregressive (all-pole) process — a pulse train (voiced excitation)
plus white noise driven through a resonant AR filter.  LPC analysis of
such a signal recovers the filter, so prediction gain is high, exactly
as with speech (substitution documented in DESIGN.md §2).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["SpeechLikeSource", "ar_filter", "frame_stream"]


def ar_filter(
    excitation: Sequence[float], coefficients: Sequence[float]
) -> np.ndarray:
    """All-pole filter: ``y[n] = e[n] + sum_k a[k] y[n-k]``."""
    a = np.asarray(coefficients, dtype=np.float64)
    e = np.asarray(excitation, dtype=np.float64)
    y = np.zeros_like(e)
    order = a.shape[0]
    for n in range(e.shape[0]):
        history = min(n, order)
        acc = e[n]
        if history:
            acc += a[:history] @ y[n - history : n][::-1]
        y[n] = acc
    return y


class SpeechLikeSource:
    """Deterministic generator of speech-like frames.

    Two formant-style resonances (stable pole pairs) are excited by a
    pitch-period pulse train plus low-level noise; amplitude is
    normalised into ``[-peak, peak]`` so the quantiser's full scale is
    meaningful.
    """

    def __init__(
        self,
        seed: int = 2008,
        pitch_period: int = 40,
        noise_level: float = 0.02,
        peak: float = 0.9,
    ) -> None:
        if pitch_period < 2:
            raise ValueError("pitch_period must be >= 2")
        self._rng = np.random.RandomState(seed)
        self.pitch_period = pitch_period
        self.noise_level = noise_level
        self.peak = peak
        # two resonances: r=0.95 @ 0.07*pi and r=0.9 @ 0.25*pi
        self.coefficients = self._pole_pairs_to_ar(
            [(0.95, 0.07 * np.pi), (0.90, 0.25 * np.pi)]
        )

    @staticmethod
    def _pole_pairs_to_ar(pole_pairs) -> np.ndarray:
        """Expand conjugate pole pairs into AR coefficients ``a[1..]``."""
        poly = np.array([1.0])
        for radius, angle in pole_pairs:
            pair = np.array([1.0, -2.0 * radius * np.cos(angle), radius ** 2])
            poly = np.convolve(poly, pair)
        return -poly[1:]

    def samples(self, count: int) -> np.ndarray:
        """Generate ``count`` samples of the signal."""
        if count < 1:
            raise ValueError("count must be >= 1")
        excitation = self.noise_level * self._rng.randn(count)
        excitation[:: self.pitch_period] += 1.0
        signal = ar_filter(excitation, self.coefficients)
        scale = np.max(np.abs(signal))
        if scale > 0:
            signal = signal * (self.peak / scale)
        return signal

    def frames(self, frame_size: int, count: int) -> List[np.ndarray]:
        """``count`` consecutive frames of ``frame_size`` samples."""
        stream = self.samples(frame_size * count)
        return [
            stream[i * frame_size : (i + 1) * frame_size]
            for i in range(count)
        ]


def frame_stream(
    total_samples: int, frame_size: int, seed: int = 2008
) -> List[np.ndarray]:
    """Split ``total_samples`` of synthetic speech into frames.

    This mirrors the paper's setup: "the input signal contains L
    samples, and these samples are divided into frames each of size N".
    A final partial frame is dropped (as any fixed-frame codec does).
    """
    if frame_size < 1:
        raise ValueError("frame_size must be >= 1")
    source = SpeechLikeSource(seed=seed)
    count = total_samples // frame_size
    if count == 0:
        raise ValueError("total_samples shorter than one frame")
    return source.frames(frame_size, count)
