"""Linear predictive coding: analysis, prediction error, quantisation.

The paper's application 1 is "LPC (linear predictive coding) based
acoustic data compression (ADC)": for each input frame, predictor
coefficients are generated, the prediction error (residual) is computed,
and the error plus coefficients are quantised — that quantised stream is
the compressed data.

The predictor solves the normal equations ``R a = r`` where ``R`` is the
Toeplitz autocorrelation matrix of the frame (via the LU actor —
:mod:`repro.apps.lpc.linalg`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.apps.lpc.linalg import SingularMatrixError, solve

__all__ = [
    "autocorrelation",
    "autocorrelation_batch",
    "normal_equations",
    "lpc_coefficients",
    "predict",
    "predict_batch",
    "prediction_error",
    "prediction_error_batch",
    "reconstruct",
    "Quantizer",
    "autocorr_cycles",
    "error_cycles",
]


def autocorrelation(frame: Sequence[float], lags: int) -> np.ndarray:
    """Biased autocorrelation ``r[0..lags]`` of one frame."""
    x = np.asarray(frame, dtype=np.float64)
    n = x.shape[0]
    if lags >= n:
        raise ValueError(f"need frame longer than {lags} samples, got {n}")
    return np.array([x[: n - k] @ x[k:] for k in range(lags + 1)])


def autocorrelation_batch(frames: np.ndarray, lags: int) -> np.ndarray:
    """Biased autocorrelation of a batch of equal-length frames.

    ``frames`` is ``(B, N)``; returns ``(B, lags + 1)``.  The batch
    dimension is vectorized (one einsum per lag over all B frames), so
    a batched accelerator dispatch prices B windows at one numpy-call
    overhead instead of B.  Each row equals
    :func:`autocorrelation` of that frame up to float summation order.
    """
    x = np.atleast_2d(np.asarray(frames, dtype=np.float64))
    n = x.shape[1]
    if lags >= n:
        raise ValueError(f"need frames longer than {lags} samples, got {n}")
    r = np.empty((x.shape[0], lags + 1))
    for k in range(lags + 1):
        r[:, k] = np.einsum("bi,bi->b", x[:, : n - k], x[:, k:])
    return r


def normal_equations(r: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Toeplitz system ``R a = rhs`` from autocorrelation ``r[0..M]``."""
    order = r.shape[0] - 1
    matrix = np.empty((order, order))
    for i in range(order):
        for j in range(order):
            matrix[i, j] = r[abs(i - j)]
    return matrix, r[1 : order + 1]


def lpc_coefficients(
    frame: Sequence[float], order: int, regularization: float = 1e-9
) -> np.ndarray:
    """Predictor coefficients ``a[1..M]`` of one frame via LU solve.

    A tiny diagonal regularisation keeps pathological (e.g. silent)
    frames solvable; a genuinely singular system falls back to the
    zero predictor (the residual then equals the signal, which is the
    correct degenerate behaviour).
    """
    r = autocorrelation(frame, order)
    matrix, rhs = normal_equations(r)
    matrix = matrix + regularization * np.eye(order) * max(1.0, r[0])
    try:
        return solve(matrix, rhs)
    except SingularMatrixError:
        return np.zeros(order)


def predict(frame: Sequence[float], coefficients: np.ndarray) -> np.ndarray:
    """Predicted value of each sample from its ``M`` predecessors.

    Samples with fewer than ``M`` predecessors use the available ones
    (the frame-initial transient).
    """
    x = np.asarray(frame, dtype=np.float64)
    order = coefficients.shape[0]
    predicted = np.zeros_like(x)
    for i in range(x.shape[0]):
        history = min(i, order)
        if history:
            predicted[i] = coefficients[:history] @ x[i - history : i][::-1]
    return predicted


def predict_batch(frames: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
    """:func:`predict` vectorized over a batch of frames.

    ``frames`` is ``(B, N)`` and ``coefficients`` ``(B, M)`` (one
    predictor per frame).  Per-lag accumulation replaces the per-sample
    Python loop: lag ``k`` contributes ``a[:, k-1] * x[:, :-k]`` to
    every sample at once, across the whole batch.  Agrees with the
    scalar :func:`predict` to within float summation order
    (``allclose``, not bit-identity).
    """
    x = np.atleast_2d(np.asarray(frames, dtype=np.float64))
    a = np.atleast_2d(np.asarray(coefficients, dtype=np.float64))
    if a.shape[0] != x.shape[0]:
        raise ValueError(
            f"batch mismatch: {x.shape[0]} frames, "
            f"{a.shape[0]} coefficient sets"
        )
    predicted = np.zeros_like(x)
    for k in range(1, min(a.shape[1], x.shape[1] - 1) + 1):
        predicted[:, k:] += a[:, k - 1 : k] * x[:, :-k]
    return predicted


def prediction_error(frame: Sequence[float], coefficients: np.ndarray) -> np.ndarray:
    """The residual actor D computes: ``e[i] = x[i] - x_hat[i]``."""
    x = np.asarray(frame, dtype=np.float64)
    return x - predict(x, coefficients)


def prediction_error_batch(
    frames: np.ndarray, coefficients: np.ndarray
) -> np.ndarray:
    """Residuals of a batch of frames in one vectorized pass."""
    x = np.atleast_2d(np.asarray(frames, dtype=np.float64))
    return x - predict_batch(x, coefficients)


def reconstruct(error: Sequence[float], coefficients: np.ndarray) -> np.ndarray:
    """Invert :func:`prediction_error`: rebuild the frame from residual."""
    e = np.asarray(error, dtype=np.float64)
    order = coefficients.shape[0]
    x = np.zeros_like(e)
    for i in range(e.shape[0]):
        history = min(i, order)
        predicted = 0.0
        if history:
            predicted = coefficients[:history] @ x[i - history : i][::-1]
        x[i] = e[i] + predicted
    return x


@dataclass(frozen=True)
class Quantizer:
    """Uniform mid-tread quantiser over ``[-full_scale, full_scale]``."""

    bits: int = 8
    full_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.bits < 2 or self.bits > 24:
            raise ValueError("bits must be in [2, 24]")
        if self.full_scale <= 0:
            raise ValueError("full_scale must be positive")

    @property
    def levels(self) -> int:
        return 1 << self.bits

    @property
    def step(self) -> float:
        return 2.0 * self.full_scale / (self.levels - 1)

    def quantize(self, values: Sequence[float]) -> np.ndarray:
        """Real values -> integer codes (clipped to range)."""
        x = np.clip(np.asarray(values, dtype=np.float64),
                    -self.full_scale, self.full_scale)
        return np.round((x + self.full_scale) / self.step).astype(np.int64)

    def dequantize(self, codes: Sequence[int]) -> np.ndarray:
        """Integer codes -> reconstruction values."""
        q = np.asarray(codes, dtype=np.float64)
        if np.any(q < 0) or np.any(q >= self.levels):
            raise ValueError("code out of range for this quantizer")
        return q * self.step - self.full_scale


def autocorr_cycles(frame_size: int, order: int, cycles_per_mac: int = 1) -> int:
    """Cycle model: ``(M+1)`` inner products of ~``N`` MACs each."""
    return (order + 1) * frame_size * cycles_per_mac + frame_size


def error_cycles(samples: int, order: int, cycles_per_mac: int = 1) -> int:
    """Cycle model of actor D on ``samples`` samples: ``M`` MACs each.

    This is the per-PE hardware datapath of the paper's §5.2: a
    pipelined MAC chain computing one predicted sample per ``M`` cycles
    plus the subtraction, with a small fixed pipeline fill.
    """
    return samples * order * cycles_per_mac + samples + 8
