"""Application 1: LPC-based acoustic data compression (paper §5.2)."""

from repro.apps.lpc.fft import fft, fft_cycles, ifft, power_spectrum
from repro.apps.lpc.huffman import HuffmanCode, build_huffman_code
from repro.apps.lpc.linalg import lu_decompose, lu_solve, solve
from repro.apps.lpc.lpc import (
    Quantizer,
    autocorrelation,
    lpc_coefficients,
    prediction_error,
    reconstruct,
)
from repro.apps.lpc.pipeline import (
    AdcPipeline,
    ParallelErrorSystem,
    build_adc_graph,
    build_parallel_error_graph,
)
from repro.apps.lpc.signal_gen import SpeechLikeSource, frame_stream

__all__ = [
    "fft", "fft_cycles", "ifft", "power_spectrum",
    "HuffmanCode", "build_huffman_code",
    "lu_decompose", "lu_solve", "solve",
    "Quantizer", "autocorrelation", "lpc_coefficients",
    "prediction_error", "reconstruct",
    "AdcPipeline", "ParallelErrorSystem",
    "build_adc_graph", "build_parallel_error_graph",
    "SpeechLikeSource", "frame_stream",
]
