"""Huffman coding (own implementation).

Actor ``E`` of the paper's application 1 "implements Huffman coding on
the error samples".  We build the optimal prefix code from symbol
frequencies with the classic two-queue/heap construction, encode to a
bit string, and decode back — the decode side is what the round-trip
tests use to prove losslessness.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence

__all__ = [
    "HuffmanCode",
    "build_huffman_code",
    "huffman_cycles",
    "pack_bits",
    "unpack_bits",
]


@dataclass(frozen=True)
class _Node:
    weight: int
    tiebreak: int
    symbol: Hashable = None
    left: "_Node" = None
    right: "_Node" = None

    def __lt__(self, other: "_Node") -> bool:
        return (self.weight, self.tiebreak) < (other.weight, other.tiebreak)


class HuffmanCode:
    """An immutable prefix code: encode/decode plus code-length stats."""

    def __init__(self, codebook: Dict[Hashable, str]) -> None:
        if not codebook:
            raise ValueError("empty codebook")
        self._codebook = dict(codebook)
        self._decode_tree: Dict[str, Hashable] = {
            code: symbol for symbol, code in codebook.items()
        }
        # prefix-freeness sanity check
        codes = sorted(codebook.values())
        for shorter, longer in zip(codes, codes[1:]):
            if longer.startswith(shorter) and shorter != longer:
                raise ValueError(
                    f"codebook is not prefix-free: {shorter!r} prefixes "
                    f"{longer!r}"
                )

    @property
    def codebook(self) -> Dict[Hashable, str]:
        return dict(self._codebook)

    def encode(self, symbols: Sequence[Hashable]) -> str:
        """Symbols -> '0'/'1' string."""
        try:
            return "".join(self._codebook[s] for s in symbols)
        except KeyError as exc:
            raise KeyError(f"symbol {exc.args[0]!r} not in codebook") from None

    def decode(self, bits: str) -> List[Hashable]:
        """'0'/'1' string -> symbols; raises on trailing garbage."""
        symbols: List[Hashable] = []
        current = ""
        for bit in bits:
            if bit not in "01":
                raise ValueError(f"invalid bit {bit!r}")
            current += bit
            if current in self._decode_tree:
                symbols.append(self._decode_tree[current])
                current = ""
        if current:
            raise ValueError(f"dangling bits {current!r} at end of stream")
        return symbols

    def encoded_bits(self, symbols: Sequence[Hashable]) -> int:
        return sum(len(self._codebook[s]) for s in symbols)

    def mean_code_length(self, frequencies: Dict[Hashable, int]) -> float:
        total = sum(frequencies.values())
        if total == 0:
            raise ValueError("empty frequency table")
        return (
            sum(
                len(self._codebook[s]) * count
                for s, count in frequencies.items()
            )
            / total
        )


def build_huffman_code(frequencies: Dict[Hashable, int]) -> HuffmanCode:
    """Optimal prefix code for the given symbol frequencies.

    A single-symbol alphabet gets the 1-bit code ``"0"`` (a zero-bit
    code cannot be decoded by counting).
    """
    if not frequencies:
        raise ValueError("empty frequency table")
    if any(count < 0 for count in frequencies.values()):
        raise ValueError("negative frequency")
    counter = itertools.count()
    heap: List[_Node] = [
        _Node(weight=max(1, count), tiebreak=next(counter), symbol=symbol)
        for symbol, count in sorted(frequencies.items(), key=lambda kv: str(kv[0]))
    ]
    if len(heap) == 1:
        return HuffmanCode({heap[0].symbol: "0"})
    heapq.heapify(heap)
    while len(heap) > 1:
        a = heapq.heappop(heap)
        b = heapq.heappop(heap)
        heapq.heappush(
            heap,
            _Node(
                weight=a.weight + b.weight,
                tiebreak=next(counter),
                left=a,
                right=b,
            ),
        )
    root = heap[0]
    codebook: Dict[Hashable, str] = {}

    def walk(node: _Node, prefix: str) -> None:
        if node.symbol is not None or (node.left is None and node.right is None):
            codebook[node.symbol] = prefix or "0"
            return
        walk(node.left, prefix + "0")
        walk(node.right, prefix + "1")

    walk(root, "")
    return HuffmanCode(codebook)


def pack_bits(bits: str) -> bytes:
    """Pack a '0'/'1' string into bytes with a 4-byte length prefix.

    The prefix carries the exact bit count so :func:`unpack_bits`
    recovers the stream without padding ambiguity — the on-disk /
    on-wire form of the compressed frames.
    """
    if any(bit not in "01" for bit in bits):
        raise ValueError("bit string must contain only '0' and '1'")
    length = len(bits)
    payload = bytearray(length.to_bytes(4, "big"))
    for start in range(0, length, 8):
        chunk = bits[start : start + 8].ljust(8, "0")
        payload.append(int(chunk, 2))
    return bytes(payload)


def unpack_bits(packed: bytes) -> str:
    """Invert :func:`pack_bits`."""
    if len(packed) < 4:
        raise ValueError("packed stream too short for its length prefix")
    length = int.from_bytes(packed[:4], "big")
    needed = 4 + (length + 7) // 8
    if len(packed) < needed:
        raise ValueError(
            f"packed stream truncated: need {needed} bytes, have "
            f"{len(packed)}"
        )
    bits = "".join(f"{byte:08b}" for byte in packed[4:needed])
    return bits[:length]


def huffman_cycles(samples: int, cycles_per_symbol: int = 2) -> int:
    """Cycle model of actor E: table lookup + bit packing per symbol."""
    return samples * cycles_per_symbol + 16
