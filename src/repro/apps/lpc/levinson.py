"""Levinson–Durbin recursion — the Toeplitz-aware alternative to LU.

The paper's actor C "performs LU decomposition to find predictor
coefficients" — an O(M^3) general solver.  The normal equations of LPC
are Toeplitz, so the Levinson–Durbin recursion solves them in O(M^2)
and additionally yields the reflection coefficients (useful for
stability checks and lattice realisations).  This module provides the
recursion so the ablation bench can quantify what the general-solver
choice costs; both paths produce the same predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["LevinsonResult", "levinson_durbin", "levinson_cycles"]


@dataclass(frozen=True)
class LevinsonResult:
    """Output of the recursion."""

    #: predictor coefficients a[1..M] (same convention as lpc_coefficients)
    coefficients: np.ndarray
    #: reflection (PARCOR) coefficients k[1..M]
    reflection: np.ndarray
    #: final prediction-error power
    error_power: float

    @property
    def is_minimum_phase(self) -> bool:
        """Stability: all reflection coefficients strictly inside (-1, 1)."""
        return bool(np.all(np.abs(self.reflection) < 1.0))


def levinson_durbin(
    autocorr: Sequence[float], order: int
) -> LevinsonResult:
    """Solve the LPC normal equations via Levinson–Durbin.

    ``autocorr`` holds ``r[0..order]`` (at least).  A degenerate frame
    (``r[0] <= 0``) yields the zero predictor, matching the LU path's
    degenerate behaviour.
    """
    r = np.asarray(autocorr, dtype=np.float64)
    if order < 1:
        raise ValueError("order must be >= 1")
    if r.shape[0] < order + 1:
        raise ValueError(
            f"need r[0..{order}], got {r.shape[0]} autocorrelation values"
        )
    if r[0] <= 0:
        return LevinsonResult(
            coefficients=np.zeros(order),
            reflection=np.zeros(order),
            error_power=0.0,
        )
    a = np.zeros(order + 1)
    a[0] = 1.0
    reflection = np.zeros(order)
    error = float(r[0])
    for m in range(1, order + 1):
        acc = r[m] + a[1:m] @ r[1:m][::-1]
        k = -acc / error
        reflection[m - 1] = k
        # a_new[i] = a[i] + k * a[m-i]
        a[1 : m + 1] = a[1 : m + 1] + k * a[m - 1 :: -1][: m]
        error *= 1.0 - k * k
        if error <= 0:
            error = 1e-12  # fully predictable frame
    # convert from prediction-polynomial to predictor convention
    return LevinsonResult(
        coefficients=-a[1:],
        reflection=reflection,
        error_power=error,
    )


def levinson_cycles(order: int, cycles_per_mac: int = 1) -> int:
    """Hardware cycle model: stage m costs ~2m MACs -> ~M^2 total."""
    if order < 1:
        raise ValueError("order must be >= 1")
    macs = order * (order + 1)  # sum of 2m
    return macs * cycles_per_mac + 4 * order  # divisions/updates
