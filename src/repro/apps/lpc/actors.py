"""Dataflow actors of the LPC speech-compression application (paper fig. 2).

* ``A`` reads a segment of input data (one frame per firing),
* ``B`` implements the FFT operation on the input samples,
* ``C`` performs LU decomposition to find the predictor coefficients,
* ``D`` generates the error on the samples (the parallelised actor),
* ``E`` implements Huffman coding on the error samples.

Each actor carries a functional kernel (real DSP on real tokens), a
hardware cycle model, and a Virtex-4 resource estimate; the three views
are what the timing benchmarks, functional tests and area tables use
respectively.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.apps.lpc.fft import (
    fft_cycles,
    is_power_of_two,
    power_spectrum,
    power_spectrum_batch,
)
from repro.apps.lpc.huffman import build_huffman_code, huffman_cycles
from repro.apps.lpc.linalg import lu_cycles
from repro.apps.lpc.lpc import (
    Quantizer,
    autocorr_cycles,
    error_cycles,
    lpc_coefficients,
    prediction_error,
)
from repro.platform.fpga import ResourceVector, estimate_datapath

__all__ = [
    "FrameReader",
    "SpectralAnalyzer",
    "CoefficientSolver",
    "ErrorGenerator",
    "HuffmanEncoder",
    "next_pow2",
    "reader_resources",
    "fft_resources",
    "solver_resources",
    "error_unit_resources",
    "huffman_resources",
    "io_interface_resources",
]


def next_pow2(n: int) -> int:
    """Smallest power of two >= n."""
    if n < 1:
        raise ValueError("n must be >= 1")
    power = 1
    while power < n:
        power *= 2
    return power


class FrameReader:
    """Actor A: emits one input frame per firing (cycling its frame list)."""

    def __init__(self, frames: Sequence[np.ndarray]) -> None:
        if not len(frames):
            raise ValueError("need at least one frame")
        self.frames = [np.asarray(f, dtype=np.float64) for f in frames]

    def kernel(self, firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        frame = self.frames[firing_index % len(self.frames)]
        return {"frame": [{"frame": frame}]}

    def cycles(self, firing_index: int, inputs: Dict[str, list]) -> int:
        frame = self.frames[firing_index % len(self.frames)]
        return frame.shape[0]  # one sample streamed in per cycle


class SpectralAnalyzer:
    """Actor B: FFT of the (zero-padded) frame; the frame passes through."""

    def kernel(self, firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        token = inputs["frame"][0]
        frame = token["frame"]
        padded = next_pow2(frame.shape[0])
        buffer = np.zeros(padded)
        buffer[: frame.shape[0]] = frame
        spectrum = power_spectrum(buffer)
        return {"analyzed": [{"frame": frame, "spectrum": spectrum}]}

    def cycles(self, firing_index: int, inputs: Dict[str, list]) -> int:
        token = inputs["frame"][0] if inputs.get("frame") else None
        n = next_pow2(token["frame"].shape[0]) if token else 256
        return fft_cycles(n)

    @staticmethod
    def analyze_batch(frames: np.ndarray) -> np.ndarray:
        """Power spectra of B equal-length windows in one vectorized pass.

        The host-side kernel of a batched accelerator dispatch: one
        zero-pad + one batched FFT replaces B scalar transforms.  Rows
        are bit-identical to the per-firing kernel's spectra.
        """
        frames = np.atleast_2d(np.asarray(frames, dtype=np.float64))
        padded = next_pow2(frames.shape[1])
        buffer = np.zeros((frames.shape[0], padded))
        buffer[:, : frames.shape[1]] = frames
        return power_spectrum_batch(buffer)


class CoefficientSolver:
    """Actor C: autocorrelation + LU solve -> predictor coefficients."""

    def __init__(self, order: int) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        self.order = order

    def kernel(self, firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        token = inputs["analyzed"][0]
        frame = token["frame"]
        coefficients = lpc_coefficients(frame, self.order)
        return {"model": [{"frame": frame, "coefficients": coefficients}]}

    def cycles(self, firing_index: int, inputs: Dict[str, list]) -> int:
        token = inputs["analyzed"][0] if inputs.get("analyzed") else None
        n = token["frame"].shape[0] if token else 256
        return autocorr_cycles(n, self.order) + lu_cycles(self.order)


class ErrorGenerator:
    """Actor D: prediction-error (residual) computation.

    ``section`` selects the slice this instance computes when several
    instances run in parallel (paper §5.2: the frame is "split into
    overlapping sections" and each PE finds the error values of its
    sections); the overlap provides the ``M`` samples of prediction
    history before the section start.
    """

    def __init__(self, n_units: int = 1, unit_index: int = 0) -> None:
        if not 0 <= unit_index < n_units:
            raise ValueError("unit_index must be in [0, n_units)")
        self.n_units = n_units
        self.unit_index = unit_index

    def section_bounds(self, frame_size: int) -> tuple:
        chunk = -(-frame_size // self.n_units)  # ceil division
        start = self.unit_index * chunk
        stop = min(frame_size, start + chunk)
        return start, stop

    def kernel(self, firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        token = inputs["model"][0]
        frame = token["frame"]
        coefficients = token["coefficients"]
        start, stop = self.section_bounds(frame.shape[0])
        order = coefficients.shape[0]
        overlap_start = max(0, start - order)
        section = frame[overlap_start:stop]
        errors = prediction_error(section, coefficients)[start - overlap_start :]
        return {"errors": [{"errors": errors, "start": start}]}

    def cycles(self, firing_index: int, inputs: Dict[str, list]) -> int:
        token = inputs["model"][0] if inputs.get("model") else None
        if token is None:
            return error_cycles(64, 8)
        start, stop = self.section_bounds(token["frame"].shape[0])
        return error_cycles(stop - start, token["coefficients"].shape[0])


class HuffmanEncoder:
    """Actor E: quantise the residual and Huffman-encode the codes.

    Collects the compressed frames in ``self.compressed`` so tests and
    examples can decode and verify losslessness.
    """

    def __init__(self, quantizer: Optional[Quantizer] = None) -> None:
        self.quantizer = quantizer or Quantizer(bits=8, full_scale=1.0)
        self.compressed: List[dict] = []

    def kernel(self, firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        token = inputs["errors"][0]
        errors = token["errors"]
        codes = self.quantizer.quantize(errors)
        frequencies: Dict[int, int] = {}
        for code in codes:
            frequencies[int(code)] = frequencies.get(int(code), 0) + 1
        huffman = build_huffman_code(frequencies)
        bitstream = huffman.encode([int(c) for c in codes])
        record = {
            "bits": bitstream,
            "codebook": huffman.codebook,
            "n_samples": int(codes.shape[0]),
        }
        self.compressed.append(record)
        return {"compressed": [record]}

    def cycles(self, firing_index: int, inputs: Dict[str, list]) -> int:
        token = inputs["errors"][0] if inputs.get("errors") else None
        n = token["errors"].shape[0] if token is not None else 256
        return huffman_cycles(n)


# -- Virtex-4 resource estimates of the hardware actors -----------------------


def reader_resources(frame_bytes: int) -> ResourceVector:
    """Actor A: input staging buffer + address generation."""
    return estimate_datapath(
        registers_bits=64, logic_lut4=48, state_bytes=frame_bytes
    )


def fft_resources(points: int) -> ResourceVector:
    """Actor B: radix-2 butterfly (4 mults) + twiddle ROM + ping-pong RAM."""
    if not is_power_of_two(points):
        raise ValueError("points must be a power of two")
    sample_bytes = 4  # complex 16+16 bit
    return estimate_datapath(
        multipliers=4,
        adders=6,
        registers_bits=256,
        logic_lut4=180,
        state_bytes=2 * points * sample_bytes,  # ping-pong working RAM
    ) + estimate_datapath(state_bytes=points * 2)  # twiddle ROM


def solver_resources(order: int) -> ResourceVector:
    """Actor C: autocorrelation MAC + LU elimination datapath."""
    matrix_bytes = 4 * order * order
    return estimate_datapath(
        multipliers=2,  # autocorr MAC + elimination MAC
        adders=3,
        registers_bits=320,
        logic_lut4=260,
        state_bytes=matrix_bytes + 4 * order,
    )


def error_unit_resources(max_order: int, chunk_bytes: int) -> ResourceVector:
    """Actor D (one PE's datapath): M-tap MAC array + section buffers.

    A fully-unrolled order-M predictor (one multiplier per tap), the
    coefficient register file, accumulate/subtract stages and a
    dual-ported (ping-pong) section buffer so the next subsection loads
    while the current one computes.
    """
    from repro.platform.fpga import estimate_fifo

    datapath = estimate_datapath(
        multipliers=max(2, max_order),  # one DSP48 per predictor tap
        adders=max_order + 2,
        registers_bits=48 * max_order + 256,  # pipeline + coef registers
        logic_lut4=90 * max_order // 2 + 320,
    )
    section_buffer = estimate_fifo(2 * chunk_bytes, force_bram=True)
    return datapath + section_buffer


def huffman_resources(alphabet: int = 256) -> ResourceVector:
    """Actor E: code table + bit packer."""
    return estimate_datapath(
        registers_bits=96,
        logic_lut4=140,
        state_bytes=alphabet * 4,  # code/length table
    )


def io_interface_resources(buffer_bytes: int) -> ResourceVector:
    """One I/O interface block: frame/coefficient staging memory (bus on
    one port, datapath on the other — Block RAM) plus address/burst
    control."""
    from repro.platform.fpga import estimate_fifo

    control = estimate_datapath(registers_bits=220, logic_lut4=260)
    staging = estimate_fifo(max(256, buffer_bytes), force_bram=True)
    return control + staging
