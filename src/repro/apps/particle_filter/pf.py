"""Sequential SIR particle filter — the single-processor reference.

The distributed implementation of :mod:`repro.apps.particle_filter
.pipeline` must produce statistically equivalent estimates; this module
is the golden model the integration tests compare against, and the
``n = 1`` point of the paper's figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.apps.particle_filter.model import CrackGrowthModel
from repro.apps.particle_filter.resampling import systematic_resample

__all__ = ["ParticleFilter", "FilterTrace"]


@dataclass
class FilterTrace:
    """Per-step outputs of a filter run."""

    estimates: List[float] = field(default_factory=list)
    effective_sample_sizes: List[float] = field(default_factory=list)

    def rmse_against(self, truth: Sequence[float]) -> float:
        truth_arr = np.asarray(truth, dtype=np.float64)
        est = np.asarray(self.estimates, dtype=np.float64)
        if truth_arr.shape != est.shape:
            raise ValueError(
                f"trace length {est.shape[0]} != truth length "
                f"{truth_arr.shape[0]}"
            )
        return float(np.sqrt(np.mean((truth_arr - est) ** 2)))


class ParticleFilter:
    """Sequential sampling-importance-resampling filter."""

    def __init__(
        self,
        model: CrackGrowthModel,
        n_particles: int,
        seed: int = 11,
    ) -> None:
        if n_particles < 2:
            raise ValueError("need at least 2 particles")
        self.model = model
        self.n_particles = n_particles
        self.rng = np.random.RandomState(seed)
        self.particles = model.initial_particles(n_particles, self.rng)
        self.weights = np.full(n_particles, 1.0 / n_particles)

    def estimate(self) -> float:
        """Weighted posterior-mean estimate of the crack length."""
        total = self.weights.sum()
        if total <= 0:
            return float(np.mean(self.particles))
        return float(self.particles @ self.weights / total)

    def effective_sample_size(self) -> float:
        total = self.weights.sum()
        if total <= 0:
            return 0.0
        normalised = self.weights / total
        return float(1.0 / np.sum(normalised ** 2))

    def step(self, observation: float) -> float:
        """One filter iteration: propagate, weight, estimate, resample."""
        self.particles = self.model.propagate(self.particles, self.rng)
        self.weights = self.model.likelihood(observation, self.particles)
        estimate = self.estimate()
        offset = float(self.rng.uniform())
        indices = systematic_resample(self.weights, self.n_particles, offset)
        self.particles = self.particles[indices]
        self.weights = np.full(self.n_particles, 1.0 / self.n_particles)
        return estimate

    def run(self, observations: Sequence[float]) -> FilterTrace:
        """Filter a whole observation sequence."""
        trace = FilterTrace()
        for observation in observations:
            self.particles = self.model.propagate(self.particles, self.rng)
            self.weights = self.model.likelihood(observation, self.particles)
            trace.estimates.append(self.estimate())
            trace.effective_sample_sizes.append(self.effective_sample_size())
            offset = float(self.rng.uniform())
            indices = systematic_resample(
                self.weights, self.n_particles, offset
            )
            self.particles = self.particles[indices]
            self.weights = np.full(self.n_particles, 1.0 / self.n_particles)
        return trace
