"""Application 2: particle filter for crack-length prognosis (paper §5.3)."""

from repro.apps.particle_filter.model import (
    CrackGrowthModel,
    simulate_crack_history,
)
from repro.apps.particle_filter.pf import FilterTrace, ParticleFilter
from repro.apps.particle_filter.pipeline import (
    DistributedParticleFilterSystem,
    build_particle_filter_graph,
    pf_pe_resources,
    resample_offset,
)
from repro.apps.particle_filter.resampling import (
    allocate_targets,
    local_resample,
    multinomial_resample,
    multiplicities,
    plan_exchanges,
    systematic_resample,
)

__all__ = [
    "CrackGrowthModel", "simulate_crack_history",
    "FilterTrace", "ParticleFilter",
    "DistributedParticleFilterSystem", "build_particle_filter_graph",
    "pf_pe_resources", "resample_offset",
    "allocate_targets", "local_resample", "multinomial_resample",
    "multiplicities", "plan_exchanges", "systematic_resample",
]
