"""Resampling: sequential and distributed (the paper's 3-phase scheme).

"In our scheme, the new samples selected are exact replicas of some of
the old samples, but occurring with multiplicities proportional to
their previous weights.  For distributed implementation, first
multiplicity factors for the particles of a given PE are calculated
locally (local [resampling]).  Then excess new particle values are
communicated to the other PEs to ensure that all PEs have the same
number of particles for the following iteration (intra-[resampling])."
(paper §5.3)

The distributed plan must be computed *identically* on every PE from
the exchanged partial weight sums — all functions here are
deterministic given their RNG, and :func:`allocate_targets` /
:func:`plan_exchanges` use only globally-shared information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "systematic_resample",
    "multinomial_resample",
    "multiplicities",
    "allocate_targets",
    "plan_exchanges",
    "local_resample",
]


def systematic_resample(
    weights: Sequence[float],
    count: int,
    offset: float,
) -> np.ndarray:
    """Systematic resampling: ``count`` indices from ``weights``.

    ``offset`` in ``[0, 1)`` is the single random number of the scheme;
    passing it explicitly keeps every PE's draw identical when they
    share a seeded RNG.
    """
    w = np.asarray(weights, dtype=np.float64)
    if count < 0:
        raise ValueError("count must be >= 0")
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    if w.ndim != 1 or w.shape[0] == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    if not 0.0 <= offset < 1.0:
        raise ValueError("offset must be in [0, 1)")
    total = w.sum()
    if total <= 0:
        # Degenerate: uniform selection.
        return np.arange(count, dtype=np.int64) % w.shape[0]
    positions = (offset + np.arange(count)) / count
    cumulative = np.cumsum(w) / total
    cumulative[-1] = 1.0  # guard against rounding
    return np.searchsorted(cumulative, positions).astype(np.int64)


def multinomial_resample(
    weights: Sequence[float],
    count: int,
    rng: np.random.RandomState,
) -> np.ndarray:
    """Multinomial resampling (the naive alternative, used in tests)."""
    w = np.asarray(weights, dtype=np.float64)
    total = w.sum()
    if total <= 0:
        return rng.randint(0, w.shape[0], size=count).astype(np.int64)
    return rng.choice(w.shape[0], size=count, p=w / total).astype(np.int64)


def multiplicities(indices: Sequence[int], population: int) -> np.ndarray:
    """Per-particle replica counts from resampled indices.

    Vectorized as one ``np.bincount`` — integer counting, so the result
    is exactly (not approximately) the per-element loop's; the loop
    survives as :func:`_multiplicities_loop` for the equivalence tests.
    """
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size and (idx.min() < 0 or idx.max() >= population):
        bad = idx[(idx < 0) | (idx >= population)][0]
        raise ValueError(f"index {bad} out of range")
    return np.bincount(idx, minlength=population).astype(np.int64)


def _multiplicities_loop(indices: Sequence[int], population: int) -> np.ndarray:
    """Reference per-element implementation of :func:`multiplicities`."""
    counts = np.zeros(population, dtype=np.int64)
    for index in indices:
        if not 0 <= index < population:
            raise ValueError(f"index {index} out of range")
        counts[index] += 1
    return counts


def allocate_targets(partial_sums: Sequence[float], total_count: int) -> List[int]:
    """Per-PE resampled-particle targets from the exchanged weight sums.

    Largest-remainder allocation of ``total_count`` particles
    proportional to each PE's share of the total weight.  Deterministic
    (ties broken by PE index), so every PE computes the same vector.
    """
    sums = np.asarray(partial_sums, dtype=np.float64)
    if np.any(sums < 0):
        raise ValueError("partial weight sums must be non-negative")
    n_pes = sums.shape[0]
    total = sums.sum()
    if total <= 0:
        base = total_count // n_pes
        targets = [base] * n_pes
        for i in range(total_count - base * n_pes):
            targets[i] += 1
        return targets
    shares = sums / total * total_count
    floors = np.floor(shares).astype(np.int64)
    remainder = total_count - int(floors.sum())
    order = sorted(
        range(n_pes), key=lambda i: (-(shares[i] - floors[i]), i)
    )
    targets = floors.tolist()
    for i in order[:remainder]:
        targets[i] += 1
    return [int(t) for t in targets]


@dataclass(frozen=True)
class ExchangePlan:
    """Who ships how many particles to whom (identical on every PE)."""

    #: per-PE number of locally-resampled particles kept locally
    kept: Tuple[int, ...]
    #: flows[src][dst] = particles PE ``src`` sends to PE ``dst``
    flows: Tuple[Tuple[int, ...], ...]

    def sent_by(self, pe: int) -> int:
        return sum(self.flows[pe])

    def received_by(self, pe: int) -> int:
        return sum(row[pe] for row in self.flows)


def plan_exchanges(targets: Sequence[int], capacity: int) -> ExchangePlan:
    """Match surplus PEs to deficit PEs (greedy in PE order).

    ``targets[i]`` is PE i's locally-resampled count, ``capacity`` the
    per-PE particle budget (N/n).  Deterministic, so every PE derives
    the same flow matrix from the same targets.
    """
    n_pes = len(targets)
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    if sum(targets) != capacity * n_pes:
        raise ValueError(
            f"targets {list(targets)} do not sum to {capacity * n_pes}"
        )
    kept = [min(t, capacity) for t in targets]
    surplus = {i: targets[i] - capacity for i in range(n_pes) if targets[i] > capacity}
    deficit = {i: capacity - targets[i] for i in range(n_pes) if targets[i] < capacity}
    flows = [[0] * n_pes for _ in range(n_pes)]
    deficit_queue = sorted(deficit.items())
    for src in sorted(surplus):
        remaining = surplus[src]
        while remaining > 0:
            if not deficit_queue:
                raise RuntimeError("exchange plan imbalance (internal error)")
            dst, need = deficit_queue[0]
            moved = min(remaining, need)
            flows[src][dst] += moved
            remaining -= moved
            if need - moved == 0:
                deficit_queue.pop(0)
            else:
                deficit_queue[0] = (dst, need - moved)
    return ExchangePlan(
        kept=tuple(kept),
        flows=tuple(tuple(row) for row in flows),
    )


def local_resample(
    particles: np.ndarray,
    weights: np.ndarray,
    target: int,
    offset: float,
) -> np.ndarray:
    """Resample ``target`` replicas from a PE's local population."""
    indices = systematic_resample(weights, target, offset)
    return np.asarray(particles, dtype=np.float64)[indices]
