"""Distributed particle filter dataflow (paper figs. 4 and 5).

For ``n`` PEs and ``N`` particles, each PE owns ``N/n`` particles and
runs the full chain **E** (estimate/propagate) → **U** (update weights
from the external observation) → **S** (selection/resampling), where S
is split into the paper's three phases:

1. **S1** — compute the partial (local) weight sum and communicate it to
   every other PE (*known length* → **SPI_static**);
2. **S2** — local resampling: replicate local particles with
   multiplicities proportional to their weights, against the globally
   agreed per-PE targets;
3. **S3** — intra-resampling: ship excess replicas to deficit PEs so
   every PE re-enters the next iteration with exactly ``N/n`` particles
   (*run-time varying length* → **SPI_dynamic**).

All PEs derive the same targets and exchange plan from the same partial
sums (deterministic :mod:`~repro.apps.particle_filter.resampling`
functions and a shared per-iteration resampling offset), which is what
makes the distributed filter's particle population a permutation of a
sequential filter's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.apps.particle_filter.model import CrackGrowthModel
from repro.apps.particle_filter.resampling import (
    allocate_targets,
    local_resample,
    plan_exchanges,
)
from repro.dataflow.dynamic import DynamicRate
from repro.dataflow.graph import DataflowGraph
from repro.mapping.partition import Partition
from repro.platform.fpga import ResourceVector, estimate_datapath

__all__ = [
    "DistributedParticleFilterSystem",
    "build_particle_filter_graph",
    "resample_offset",
    "pf_pe_resources",
]

PARTICLE_BYTES = 4  # 32-bit fixed-point crack length
WEIGHTED_BYTES = 8  # particle + weight
WSUM_BYTES = 8  # 64-bit weight accumulator

#: cycle costs per particle of the hardware datapaths
PROPAGATE_CYCLES_PER_PARTICLE = 24  # sqrt + pow + MACs + noise
LIKELIHOOD_CYCLES_PER_PARTICLE = 16  # diff, square, exp-LUT
SUM_CYCLES_PER_PARTICLE = 1
RESAMPLE_CYCLES_PER_PARTICLE = 2
ASSEMBLE_CYCLES_PER_PARTICLE = 1


def resample_offset(iteration: int) -> float:
    """Deterministic per-iteration systematic-resampling offset.

    Every PE evaluates the same function of the iteration index, so the
    distributed resampling uses one shared random number per iteration
    without any extra communication (a common trick: ship the seed, not
    the draws).
    """
    return (iteration * 0.6180339887498949) % 1.0


def pf_pe_resources(particles_per_pe: int) -> ResourceVector:
    """One PF processing element: E+U+S datapaths and particle memory.

    The propagate path needs sqrt/pow approximation (DSP-heavy), the
    update path an exponential LUT and multiplier, plus dual particle
    buffers — this is why "the computational requirement for the
    application 2 was relatively high and hence only 2 PEs could be
    accommodated" on the paper's device.
    """
    from repro.platform.fpga import estimate_fifo

    datapath = estimate_datapath(
        multipliers=26,  # sqrt/pow approximation, noise gen, exp, MACs
        adders=20,
        registers_bits=5600,
        logic_lut4=8200,
    )
    # function tables: exp() for the likelihood, sqrt/pow for Paris' law
    tables = estimate_datapath(state_bytes=8192)
    # dual-ported particle memories (current + next population)
    particle_memory = estimate_fifo(
        max(512, 2 * particles_per_pe * WEIGHTED_BYTES), force_bram=True
    )
    return datapath + tables + particle_memory


class _Estimator:
    """Actor E_i: propagate the PE's particles through the growth model."""

    def __init__(
        self, model: CrackGrowthModel, capacity: int, seed: int
    ) -> None:
        self.model = model
        self.capacity = capacity
        self.rng = np.random.RandomState(seed)

    def kernel(self, firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        particles = np.asarray(inputs["particles"], dtype=np.float64)
        predicted = self.model.propagate(particles, self.rng)
        return {"predicted": [float(v) for v in predicted]}

    def cycles(self, firing_index: int, inputs: Dict[str, list]) -> int:
        return self.capacity * PROPAGATE_CYCLES_PER_PARTICLE + 12


class _Updater:
    """Actor U_i: weight the particles against the external observation.

    Records the PE's partial estimate (weighted sum and weight total) in
    ``collector`` so the system can combine the global output of the
    paper's figure 4.
    """

    def __init__(
        self,
        model: CrackGrowthModel,
        observations: Sequence[float],
        capacity: int,
        pe_index: int,
        collector: List[dict],
    ) -> None:
        self.model = model
        self.observations = list(observations)
        self.capacity = capacity
        self.pe_index = pe_index
        self.collector = collector

    def kernel(self, firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        particles = np.asarray(inputs["predicted"], dtype=np.float64)
        observation = self.observations[firing_index % len(self.observations)]
        weights = self.model.likelihood(observation, particles)
        self.collector.append(
            {
                "iteration": firing_index,
                "pe": self.pe_index,
                "weighted_sum": float(particles @ weights),
                "weight_total": float(weights.sum()),
            }
        )
        weighted = [
            (float(p), float(w)) for p, w in zip(particles, weights)
        ]
        return {"weighted": weighted}

    def cycles(self, firing_index: int, inputs: Dict[str, list]) -> int:
        return self.capacity * LIKELIHOOD_CYCLES_PER_PARTICLE + 12


class _PartialSum:
    """Actor S1_i: local weight sum, broadcast to the other PEs.

    With ``collectives`` the sum leaves through ONE ``wsum`` port that a
    broadcast connection fans out (one shared-payload wire transfer per
    link); without it the actor keeps the legacy per-destination
    ``wsum_to_{j}`` ports (n-1 independent point-to-point copies).
    """

    def __init__(
        self,
        capacity: int,
        n_pes: int,
        pe_index: int,
        collectives: bool = False,
    ) -> None:
        self.capacity = capacity
        self.n_pes = n_pes
        self.pe_index = pe_index
        self.collectives = collectives

    def kernel(self, firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        weighted = list(inputs["weighted"])
        total = float(sum(w for _, w in weighted))
        outputs: Dict[str, list] = {"pass": weighted}
        if self.collectives:
            if self.n_pes > 1:
                outputs["wsum"] = [total]
        else:
            for other in range(self.n_pes):
                if other != self.pe_index:
                    outputs[f"wsum_to_{other}"] = [total]
        return outputs

    def cycles(self, firing_index: int, inputs: Dict[str, list]) -> int:
        return self.capacity * SUM_CYCLES_PER_PARTICLE + 8


class _LocalResampler:
    """Actor S2_i: local resampling against the global targets."""

    def __init__(self, capacity: int, n_pes: int, pe_index: int) -> None:
        self.capacity = capacity
        self.n_pes = n_pes
        self.pe_index = pe_index

    def kernel(self, firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        weighted = list(inputs["pass"])
        particles = np.array([p for p, _ in weighted])
        weights = np.array([w for _, w in weighted])
        sums = []
        for other in range(self.n_pes):
            if other == self.pe_index:
                sums.append(float(weights.sum()))
            else:
                sums.append(float(inputs[f"wsum_from_{other}"][0]))
        total_particles = self.capacity * self.n_pes
        targets = allocate_targets(sums, total_particles)
        plan = plan_exchanges(targets, self.capacity)
        replicas = local_resample(
            particles, weights, targets[self.pe_index],
            resample_offset(firing_index),
        )
        outputs: Dict[str, list] = {}
        cursor = plan.kept[self.pe_index]
        outputs["kept"] = [float(v) for v in replicas[:cursor]]
        for other in range(self.n_pes):
            if other == self.pe_index:
                continue
            shipped = plan.flows[self.pe_index][other]
            outputs[f"export_to_{other}"] = [
                float(v) for v in replicas[cursor : cursor + shipped]
            ]
            cursor += shipped
        if cursor != targets[self.pe_index]:
            raise RuntimeError("local resampling lost replicas")
        return outputs

    def cycles(self, firing_index: int, inputs: Dict[str, list]) -> int:
        return (
            self.capacity * RESAMPLE_CYCLES_PER_PARTICLE
            + self.n_pes * 8
            + 12
        )


class _Assembler:
    """Actor S3_i: merge kept + imported replicas into the next population."""

    def __init__(self, capacity: int, n_pes: int, pe_index: int) -> None:
        self.capacity = capacity
        self.n_pes = n_pes
        self.pe_index = pe_index

    def kernel(self, firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        population: List[float] = list(inputs["kept"])
        for other in range(self.n_pes):
            if other == self.pe_index:
                continue
            population.extend(inputs[f"import_from_{other}"])
        if len(population) != self.capacity:
            raise RuntimeError(
                f"PE {self.pe_index}: assembled {len(population)} particles, "
                f"expected {self.capacity}"
            )
        return {"particles": population}

    def cycles(self, firing_index: int, inputs: Dict[str, list]) -> int:
        return self.capacity * ASSEMBLE_CYCLES_PER_PARTICLE + 8


@dataclass
class DistributedParticleFilterSystem:
    """The figure-4/5 system: graph, partition, and estimate collector."""

    graph: DataflowGraph
    partition: Partition
    n_pes: int
    n_particles: int
    model: CrackGrowthModel
    observations: List[float]
    collected: List[dict] = field(default_factory=list)

    def estimates(self) -> List[float]:
        """Global per-iteration estimates combined from the PE partials."""
        by_iteration: Dict[int, List[dict]] = {}
        for record in self.collected:
            by_iteration.setdefault(record["iteration"], []).append(record)
        results: List[float] = []
        for iteration in sorted(by_iteration):
            records = by_iteration[iteration]
            if len(records) != self.n_pes:
                raise ValueError(
                    f"iteration {iteration}: partials from "
                    f"{len(records)} of {self.n_pes} PEs"
                )
            numerator = sum(r["weighted_sum"] for r in records)
            denominator = sum(r["weight_total"] for r in records)
            if denominator <= 0:
                results.append(float("nan"))
            else:
                results.append(numerator / denominator)
        return results


def build_particle_filter_graph(
    model: CrackGrowthModel,
    observations: Sequence[float],
    n_particles: int,
    n_pes: int,
    seed: int = 11,
    collectives: bool = True,
) -> DistributedParticleFilterSystem:
    """Build the n-PE distributed particle filter of the paper's §5.3.

    ``n_particles`` must be divisible by ``n_pes`` ("particles are
    equally distributed among PEs").

    ``collectives`` routes each S1 partial sum through one broadcast
    connection instead of n-1 point-to-point copies; ``False`` keeps
    the legacy fan-out for A/B comparison.  The S2 -> S3 particle
    exchange stays point-to-point either way: its rates are run-time
    varying and collective connections require static rates.
    """
    if n_pes < 1:
        raise ValueError("n_pes must be >= 1")
    if n_particles < 2 * n_pes:
        raise ValueError("need at least 2 particles per PE")
    if n_particles % n_pes:
        raise ValueError(
            f"{n_particles} particles do not divide over {n_pes} PEs"
        )
    capacity = n_particles // n_pes
    rng = np.random.RandomState(seed)
    initial = model.initial_particles(n_particles, rng)

    graph = DataflowGraph(f"particle_filter_{n_pes}pe")
    collected: List[dict] = []
    assignment: Dict[str, int] = {}
    pe_resources = pf_pe_resources(capacity)

    for pe in range(n_pes):
        estimator = _Estimator(model, capacity, seed=seed + 1 + pe)
        updater = _Updater(model, observations, capacity, pe, collected)
        partial = _PartialSum(capacity, n_pes, pe, collectives=collectives)
        resampler = _LocalResampler(capacity, n_pes, pe)
        assembler = _Assembler(capacity, n_pes, pe)

        e_actor = graph.actor(f"E_{pe}", kernel=estimator.kernel,
                              cycles=estimator.cycles,
                              params={"resources": pe_resources})
        u_actor = graph.actor(f"U_{pe}", kernel=updater.kernel,
                              cycles=updater.cycles)
        s1_actor = graph.actor(f"S1_{pe}", kernel=partial.kernel,
                               cycles=partial.cycles)
        s2_actor = graph.actor(f"S2_{pe}", kernel=resampler.kernel,
                               cycles=resampler.cycles)
        s3_actor = graph.actor(f"S3_{pe}", kernel=assembler.kernel,
                               cycles=assembler.cycles)

        e_actor.add_input("particles", rate=capacity, token_bytes=PARTICLE_BYTES)
        e_actor.add_output("predicted", rate=capacity, token_bytes=PARTICLE_BYTES)
        u_actor.add_input("predicted", rate=capacity, token_bytes=PARTICLE_BYTES)
        u_actor.add_output("weighted", rate=capacity, token_bytes=WEIGHTED_BYTES)
        s1_actor.add_input("weighted", rate=capacity, token_bytes=WEIGHTED_BYTES)
        s1_actor.add_output("pass", rate=capacity, token_bytes=WEIGHTED_BYTES)
        s2_actor.add_input("pass", rate=capacity, token_bytes=WEIGHTED_BYTES)
        s2_actor.add_output(
            "kept", rate=DynamicRate(capacity, minimum=0),
            token_bytes=PARTICLE_BYTES,
        )
        s3_actor.add_input(
            "kept", rate=DynamicRate(capacity, minimum=0),
            token_bytes=PARTICLE_BYTES,
        )
        s3_actor.add_output("particles", rate=capacity,
                            token_bytes=PARTICLE_BYTES)

        graph.connect((e_actor, "predicted"), (u_actor, "predicted"))
        graph.connect((u_actor, "weighted"), (s1_actor, "weighted"))
        graph.connect((s1_actor, "pass"), (s2_actor, "pass"))
        graph.connect((s2_actor, "kept"), (s3_actor, "kept"))
        feedback = graph.connect(
            (s3_actor, "particles"), (e_actor, "particles"), delay=capacity
        )
        feedback.set_initial_tokens(
            [float(v) for v in initial[pe * capacity : (pe + 1) * capacity]]
        )

        for name in ("E", "U", "S1", "S2", "S3"):
            assignment[f"{name}_{pe}"] = pe

    # Cross-PE exchanges: weight sums (static) and particles (dynamic).
    if collectives and n_pes > 1:
        # One broadcast connection per S1: one `wsum` output port fanned
        # out to every other PE's resampler (shared-payload transfers).
        for src in range(n_pes):
            graph.get_actor(f"S1_{src}").add_output(
                "wsum", rate=1, token_bytes=WSUM_BYTES
            )
            for dst in range(n_pes):
                if dst != src:
                    graph.get_actor(f"S2_{dst}").add_input(
                        f"wsum_from_{src}", rate=1, token_bytes=WSUM_BYTES
                    )
            graph.add_broadcast(
                f"S1_{src}.wsum",
                [
                    f"S2_{dst}.wsum_from_{src}"
                    for dst in range(n_pes)
                    if dst != src
                ],
                name=f"wsum_{src}",
            )
    for src in range(n_pes):
        for dst in range(n_pes):
            if src == dst:
                continue
            if not (collectives and n_pes > 1):
                s1_src = graph.get_actor(f"S1_{src}")
                s2_dst = graph.get_actor(f"S2_{dst}")
                s1_src.add_output(
                    f"wsum_to_{dst}", rate=1, token_bytes=WSUM_BYTES
                )
                s2_dst.add_input(
                    f"wsum_from_{src}", rate=1, token_bytes=WSUM_BYTES
                )
                graph.connect(
                    (s1_src, f"wsum_to_{dst}"), (s2_dst, f"wsum_from_{src}"),
                    name=f"wsum_{src}_to_{dst}",
                )

            s2_src = graph.get_actor(f"S2_{src}")
            s3_dst = graph.get_actor(f"S3_{dst}")
            s2_src.add_output(
                f"export_to_{dst}",
                rate=DynamicRate(capacity, minimum=0),
                token_bytes=PARTICLE_BYTES,
            )
            s3_dst.add_input(
                f"import_from_{src}",
                rate=DynamicRate(capacity, minimum=0),
                token_bytes=PARTICLE_BYTES,
            )
            graph.connect(
                (s2_src, f"export_to_{dst}"), (s3_dst, f"import_from_{src}"),
                name=f"particles_{src}_to_{dst}",
            )

    graph.validate()
    partition = Partition.manual(graph, assignment) if n_pes > 1 else (
        Partition.single_processor(graph)
    )
    return DistributedParticleFilterSystem(
        graph=graph,
        partition=partition,
        n_pes=n_pes,
        n_particles=n_particles,
        model=model,
        observations=list(observations),
        collected=collected,
    )
