"""Crack-growth state-space model for failure prognosis.

The paper's application 2 tracks "crack failure length in the blades of
a turbine engine" with a particle filter (Orchard et al.).  The
production test data is not available, so we implement the standard
Paris–Erdogan fatigue model that such prognosis systems use:

    dL/dN = C * (beta * sqrt(L))^m        (crack growth per load cycle)

discretised per filter step with lognormal process noise, observed
through additive Gaussian measurement noise.  The filter code paths
(propagate / weight / resample / exchange) are identical to the paper's;
only the physical constants differ (substitution documented in
DESIGN.md §2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["CrackGrowthModel", "simulate_crack_history"]


@dataclass(frozen=True)
class CrackGrowthModel:
    """Paris-law crack growth with Gaussian length observations.

    Parameters
    ----------
    paris_c, paris_m:
        Paris-law constants (growth scale and exponent).
    stress_factor:
        ``beta`` in ``delta_K = beta * sqrt(L)``.
    cycles_per_step:
        Load cycles elapsed between two filter updates.
    process_noise:
        Std-dev of the multiplicative (lognormal) growth disturbance.
    measurement_noise:
        Std-dev of the additive observation noise (same unit as L, mm).
    initial_length, initial_spread:
        Prior over the initial crack length.
    """

    paris_c: float = 1.5e-4
    paris_m: float = 2.2
    stress_factor: float = 1.0
    cycles_per_step: float = 100.0
    process_noise: float = 0.05
    measurement_noise: float = 0.25
    initial_length: float = 2.0
    initial_spread: float = 0.3

    def growth_rate(self, length: float) -> float:
        """Deterministic Paris-law growth per load cycle."""
        if length <= 0:
            raise ValueError("crack length must be positive")
        delta_k = self.stress_factor * math.sqrt(length)
        return self.paris_c * delta_k ** self.paris_m

    def propagate(self, lengths: np.ndarray, rng: np.random.RandomState) -> np.ndarray:
        """One prediction step for a particle population."""
        lengths = np.asarray(lengths, dtype=np.float64)
        if np.any(lengths <= 0):
            raise ValueError("crack lengths must be positive")
        delta_k = self.stress_factor * np.sqrt(lengths)
        growth = self.paris_c * delta_k ** self.paris_m * self.cycles_per_step
        noise = np.exp(self.process_noise * rng.randn(lengths.shape[0]))
        return lengths + growth * noise

    def likelihood(self, observation: float, lengths: np.ndarray) -> np.ndarray:
        """Unnormalised Gaussian observation likelihood per particle."""
        lengths = np.asarray(lengths, dtype=np.float64)
        sigma = self.measurement_noise
        z = (observation - lengths) / sigma
        return np.exp(-0.5 * z * z)

    def likelihood_batch(
        self, observations: np.ndarray, lengths: np.ndarray
    ) -> np.ndarray:
        """Likelihoods for a batch of observations in one vectorized pass.

        ``observations`` is ``(B,)`` and ``lengths`` ``(B, P)`` (one
        particle population per batched filter step); returns
        ``(B, P)``.  Row ``b`` is exactly
        ``likelihood(observations[b], lengths[b])`` — the expression is
        elementwise, so batching changes no summation order.
        """
        obs = np.asarray(observations, dtype=np.float64).reshape(-1, 1)
        lengths = np.atleast_2d(np.asarray(lengths, dtype=np.float64))
        if lengths.shape[0] != obs.shape[0]:
            raise ValueError(
                f"batch mismatch: {obs.shape[0]} observations, "
                f"{lengths.shape[0]} particle populations"
            )
        z = (obs - lengths) / self.measurement_noise
        return np.exp(-0.5 * z * z)

    def observe(self, length: float, rng: np.random.RandomState) -> float:
        """Draw a noisy measurement of the true length."""
        return length + self.measurement_noise * rng.randn()

    def initial_particles(
        self, count: int, rng: np.random.RandomState
    ) -> np.ndarray:
        """Sample the initial particle population from the prior."""
        if count < 1:
            raise ValueError("count must be >= 1")
        particles = self.initial_length + self.initial_spread * rng.randn(count)
        return np.clip(particles, 1e-3, None)


def simulate_crack_history(
    model: CrackGrowthModel,
    steps: int,
    seed: int = 7,
) -> Tuple[np.ndarray, np.ndarray]:
    """Ground-truth trajectory plus its noisy observations.

    Returns ``(true_lengths, observations)`` of ``steps`` entries each.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    rng = np.random.RandomState(seed)
    true_lengths = np.zeros(steps)
    observations = np.zeros(steps)
    length = model.initial_length
    for k in range(steps):
        length = float(model.propagate(np.array([length]), rng)[0])
        true_lengths[k] = length
        observations[k] = model.observe(length, rng)
    return true_lengths, observations
