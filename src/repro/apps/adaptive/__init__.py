"""Third application domain: multichannel LMS adaptive noise cancellation."""

from repro.apps.adaptive.lms import LmsFilter, fir_filter, lms_block_cycles
from repro.apps.adaptive.pipeline import (
    ChannelWorkload,
    MultichannelCancellerSystem,
    build_multichannel_canceller,
    canceller_resources,
    make_channel_workload,
)

__all__ = [
    "LmsFilter", "fir_filter", "lms_block_cycles",
    "ChannelWorkload", "MultichannelCancellerSystem",
    "build_multichannel_canceller", "canceller_resources",
    "make_channel_workload",
]
