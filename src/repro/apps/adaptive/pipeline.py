"""Multichannel adaptive noise cancellation over SPI.

``n_channels`` independent sensor channels each need an LMS noise
canceller; the cancellers are distributed over ``n_pes`` hardware PEs
while a shared I/O interface (PE 0) streams sample blocks in and
cleaned blocks out.  Block sizes are fixed, so — in contrast to the
paper's application 1 — every channel here is **SPI_static**: the
headers carry only the edge ID and the buffer bounds come straight from
SDF analysis, no VTS needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.apps.adaptive.lms import LmsFilter, fir_filter, lms_block_cycles
from repro.dataflow.graph import DataflowGraph
from repro.mapping.partition import Partition
from repro.platform.fpga import ResourceVector, estimate_datapath, estimate_fifo

__all__ = [
    "ChannelWorkload",
    "make_channel_workload",
    "MultichannelCancellerSystem",
    "build_multichannel_canceller",
    "canceller_resources",
]

SAMPLE_BYTES = 2


@dataclass
class ChannelWorkload:
    """The synthetic stimulus of one sensor channel."""

    clean: np.ndarray
    reference: np.ndarray
    primary: np.ndarray
    noise_path: np.ndarray


def make_channel_workload(
    samples: int,
    channel_index: int,
    taps: int = 8,
    snr_noise_gain: float = 1.5,
    seed: int = 99,
) -> ChannelWorkload:
    """Sinusoid buried in filtered broadband noise (per-channel seed)."""
    rng = np.random.RandomState(seed + channel_index)
    t = np.arange(samples)
    clean = 0.7 * np.sin(2 * np.pi * t * (0.02 + 0.003 * channel_index))
    reference = rng.randn(samples)
    noise_path = rng.uniform(-0.5, 0.5, size=taps)
    noise = snr_noise_gain * fir_filter(reference, noise_path)
    return ChannelWorkload(
        clean=clean,
        reference=reference,
        primary=clean + noise,
        noise_path=noise_path,
    )


class _ChannelSource:
    """I/O interface, send side: streams one block pair per firing."""

    def __init__(self, workload: ChannelWorkload, block: int) -> None:
        self.workload = workload
        self.block = block

    def kernel(self, firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        total = self.workload.reference.shape[0]
        start = (firing_index * self.block) % max(1, total - self.block + 1)
        stop = start + self.block
        return {
            "reference": [float(v) for v in self.workload.reference[start:stop]],
            "primary": [float(v) for v in self.workload.primary[start:stop]],
        }

    def cycles(self, firing_index: int, inputs: Dict[str, list]) -> int:
        return 2 * self.block + 4  # stream both blocks out of memory


class _Canceller:
    """One hardware LMS canceller (persistent weights across blocks)."""

    def __init__(self, taps: int, block: int) -> None:
        self.filter = LmsFilter(taps)
        self.block = block
        self.taps = taps

    def kernel(self, firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        cleaned = self.filter.process_block(
            inputs["reference"], inputs["primary"]
        )
        return {"cleaned": [float(v) for v in cleaned]}

    def cycles(self, firing_index: int, inputs: Dict[str, list]) -> int:
        return lms_block_cycles(self.block, self.taps)


class _ChannelSink:
    """I/O interface, receive side: collects cleaned blocks per channel."""

    def __init__(self, collector: List[dict], channel: int) -> None:
        self.collector = collector
        self.channel = channel

    def kernel(self, firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        self.collector.append(
            {
                "channel": self.channel,
                "iteration": firing_index,
                "cleaned": list(inputs["cleaned"]),
            }
        )
        return {}

    def cycles(self, firing_index: int, inputs: Dict[str, list]) -> int:
        return max(1, len(inputs.get("cleaned") or []))


def canceller_resources(taps: int, block: int) -> ResourceVector:
    """One LMS datapath: 3 MAC groups + weight/history memories."""
    datapath = estimate_datapath(
        multipliers=3 * max(1, taps // 2),  # folded FIR/power/update MACs
        adders=taps,
        registers_bits=32 * taps * 2 + 128,
        logic_lut4=60 * taps + 200,
    )
    buffers = estimate_fifo(2 * block * SAMPLE_BYTES, force_bram=True)
    return datapath + buffers


@dataclass
class MultichannelCancellerSystem:
    """Graph + partition + collected outputs + workloads."""

    graph: DataflowGraph
    partition: Partition
    n_channels: int
    block: int
    taps: int
    workloads: List[ChannelWorkload]
    collected: List[dict] = field(default_factory=list)

    def cleaned_stream(self, channel: int) -> np.ndarray:
        """Concatenated cleaned blocks of one channel, in order."""
        blocks = sorted(
            (r for r in self.collected if r["channel"] == channel),
            key=lambda r: r["iteration"],
        )
        flat: List[float] = []
        for record in blocks:
            flat.extend(record["cleaned"])
        return np.asarray(flat)

    def residual_noise_power(self, channel: int) -> Tuple[float, float]:
        """(before, after) noise power over the collected horizon.

        'before' is the raw primary's deviation from the clean signal;
        'after' the cancelled output's deviation, skipping the first
        half as LMS convergence transient.
        """
        cleaned = self.cleaned_stream(channel)
        n = cleaned.shape[0]
        workload = self.workloads[channel]
        clean = workload.clean[:n]
        primary = workload.primary[:n]
        half = n // 2
        before = float(np.mean((primary[half:] - clean[half:]) ** 2))
        after = float(np.mean((cleaned[half:] - clean[half:]) ** 2))
        return before, after


def build_multichannel_canceller(
    n_channels: int,
    n_pes: int,
    block: int = 32,
    taps: int = 8,
    samples: int = 4096,
    seed: int = 99,
) -> MultichannelCancellerSystem:
    """Build the multichannel system: PE 0 hosts the I/O interfaces,
    PEs 1..n host the cancellers round-robin."""
    if n_channels < 1:
        raise ValueError("n_channels must be >= 1")
    if n_pes < 1:
        raise ValueError("n_pes must be >= 1")
    graph = DataflowGraph(f"anc_{n_channels}ch_{n_pes}pe")
    collected: List[dict] = []
    assignment: Dict[str, int] = {}
    workloads = [
        make_channel_workload(samples, ch, taps=taps, seed=seed)
        for ch in range(n_channels)
    ]
    resources = canceller_resources(taps, block)

    for channel in range(n_channels):
        source = _ChannelSource(workloads[channel], block)
        canceller = _Canceller(taps, block)
        sink = _ChannelSink(collected, channel)

        src_actor = graph.actor(
            f"io_src_{channel}", kernel=source.kernel, cycles=source.cycles
        )
        lms_actor = graph.actor(
            f"lms_{channel}", kernel=canceller.kernel,
            cycles=canceller.cycles, params={"resources": resources},
        )
        snk_actor = graph.actor(
            f"io_snk_{channel}", kernel=sink.kernel, cycles=sink.cycles
        )
        src_actor.add_output("reference", rate=block, token_bytes=SAMPLE_BYTES)
        src_actor.add_output("primary", rate=block, token_bytes=SAMPLE_BYTES)
        lms_actor.add_input("reference", rate=block, token_bytes=SAMPLE_BYTES)
        lms_actor.add_input("primary", rate=block, token_bytes=SAMPLE_BYTES)
        lms_actor.add_output("cleaned", rate=block, token_bytes=SAMPLE_BYTES)
        snk_actor.add_input("cleaned", rate=block, token_bytes=SAMPLE_BYTES)

        graph.connect((src_actor, "reference"), (lms_actor, "reference"))
        graph.connect((src_actor, "primary"), (lms_actor, "primary"))
        graph.connect((lms_actor, "cleaned"), (snk_actor, "cleaned"))

        assignment[src_actor.name] = 0
        assignment[snk_actor.name] = 0
        if n_pes == 1:
            assignment[lms_actor.name] = 0
        else:
            assignment[lms_actor.name] = 1 + channel % (n_pes - 1) \
                if n_pes > 1 else 0

    graph.validate()
    partition = Partition(
        graph, max(assignment.values()) + 1, assignment
    )
    return MultichannelCancellerSystem(
        graph=graph,
        partition=partition,
        n_channels=n_channels,
        block=block,
        taps=taps,
        workloads=workloads,
        collected=collected,
    )
