"""Least-mean-squares adaptive filtering (own implementation).

The paper motivates SPI with the breadth of embedded signal-processing
workloads; adaptive filtering is the third application class of this
reproduction (after LPC coding and particle filtering).  The classic
LMS adaptive noise canceller:

* the *primary* input carries signal + filtered noise,
* the *reference* input carries correlated noise,
* an M-tap FIR filter driven by the NLMS update learns the noise path
  and subtracts its estimate, leaving the signal as the error output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["LmsFilter", "fir_filter", "lms_block_cycles"]


def fir_filter(signal: Sequence[float], taps: Sequence[float]) -> np.ndarray:
    """Causal FIR: ``y[n] = sum_k h[k] x[n-k]`` (zero initial state).

    Implemented as a truncated full convolution — identical to the
    direct-form loop, at vector speed.
    """
    x = np.asarray(signal, dtype=np.float64)
    h = np.asarray(taps, dtype=np.float64)
    if x.ndim != 1 or h.ndim != 1 or h.shape[0] == 0:
        raise ValueError("signal and taps must be non-empty 1-D arrays")
    return np.convolve(x, h)[: x.shape[0]]


@dataclass
class LmsFilter:
    """An M-tap normalised-LMS adaptive filter with persistent state.

    ``step_size`` is the NLMS mu (stable in (0, 2)); ``epsilon``
    regularises the power normalisation.
    """

    taps: int
    step_size: float = 0.5
    epsilon: float = 1e-6

    def __post_init__(self) -> None:
        if self.taps < 1:
            raise ValueError("need at least one tap")
        if not 0 < self.step_size < 2:
            raise ValueError("NLMS step size must be in (0, 2)")
        self.weights = np.zeros(self.taps)
        self._history = np.zeros(self.taps)

    def reset(self) -> None:
        self.weights = np.zeros(self.taps)
        self._history = np.zeros(self.taps)

    def process_sample(self, reference: float, primary: float) -> float:
        """One NLMS iteration; returns the error (cleaned) sample."""
        self._history = np.roll(self._history, 1)
        self._history[0] = reference
        estimate = float(self.weights @ self._history)
        error = primary - estimate
        power = float(self._history @ self._history) + self.epsilon
        self.weights = (
            self.weights + (self.step_size * error / power) * self._history
        )
        return error

    def process_block(
        self, reference: Sequence[float], primary: Sequence[float]
    ) -> np.ndarray:
        """Filter one block; state carries across blocks."""
        ref = np.asarray(reference, dtype=np.float64)
        pri = np.asarray(primary, dtype=np.float64)
        if ref.shape != pri.shape:
            raise ValueError(
                f"reference block {ref.shape} != primary block {pri.shape}"
            )
        return np.array(
            [self.process_sample(r, p) for r, p in zip(ref, pri)]
        )


def lms_block_cycles(block: int, taps: int, cycles_per_mac: int = 1) -> int:
    """Hardware cycle model: per sample, one FIR dot product (M MACs),
    the power accumulation (M MACs, shared adders) and the weight
    update (M MACs)."""
    if block < 1 or taps < 1:
        raise ValueError("block and taps must be >= 1")
    return block * (3 * taps) * cycles_per_mac + block + 12
