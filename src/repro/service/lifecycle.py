"""Run-lifecycle records: queued → running → done/failed, persisted.

Every unit of a campaign gets a :class:`RunRecord` that tracks its
state machine, wall time, the shard that executed it, summary metrics
and the paths of any artefacts it produced.  Records serialise to the
``repro.run/1`` JSON schema and a :class:`RunStore` persists one file
per run, which the CI campaign job uploads as artefacts — a failed
campaign leaves the per-run forensics on disk even when the process
that drove it is gone.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["LifecycleError", "RunRecord", "RunStore", "RUN_SCHEMA"]

#: schema identifier of persisted run records
RUN_SCHEMA = "repro.run/1"

#: legal state transitions of one run
_TRANSITIONS = {
    "queued": ("running",),
    "running": ("done", "failed"),
    "done": (),
    "failed": (),
}


class LifecycleError(RuntimeError):
    """An illegal run-state transition was attempted."""


@dataclass
class RunRecord:
    """One campaign unit's identity, state and outcome."""

    run_id: str
    operation: str
    params: Dict[str, object] = field(default_factory=dict)
    state: str = "queued"
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    shard: Optional[int] = None
    error: Optional[str] = None
    metrics: Dict[str, object] = field(default_factory=dict)
    artifacts: List[str] = field(default_factory=list)

    def _transition(self, target: str) -> None:
        allowed = _TRANSITIONS.get(self.state, ())
        if target not in allowed:
            raise LifecycleError(
                f"run {self.run_id!r}: illegal transition "
                f"{self.state!r} -> {target!r}"
            )
        self.state = target

    def mark_running(self, shard: Optional[int] = None) -> None:
        self._transition("running")
        self.shard = shard
        self.started_at = time.time()

    def mark_done(self, metrics: Optional[Dict[str, object]] = None) -> None:
        self._transition("done")
        self.finished_at = time.time()
        if metrics:
            self.metrics.update(metrics)

    def mark_failed(self, error: str) -> None:
        self._transition("failed")
        self.finished_at = time.time()
        self.error = error

    @property
    def wall_seconds(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": RUN_SCHEMA,
            "run_id": self.run_id,
            "operation": self.operation,
            "params": self.params,
            "state": self.state,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_seconds": self.wall_seconds,
            "shard": self.shard,
            "error": self.error,
            "metrics": self.metrics,
            "artifacts": self.artifacts,
        }

    @classmethod
    def from_json(cls, raw: Dict[str, object]) -> "RunRecord":
        if raw.get("schema") != RUN_SCHEMA:
            raise ValueError(
                f"unknown run-record schema {raw.get('schema')!r} "
                f"(expected {RUN_SCHEMA})"
            )
        record = cls(
            run_id=raw["run_id"],
            operation=raw["operation"],
            params=dict(raw.get("params", {})),
        )
        record.state = raw["state"]
        record.created_at = raw["created_at"]
        record.started_at = raw.get("started_at")
        record.finished_at = raw.get("finished_at")
        record.shard = raw.get("shard")
        record.error = raw.get("error")
        record.metrics = dict(raw.get("metrics", {}))
        record.artifacts = list(raw.get("artifacts", []))
        return record


class RunStore:
    """One JSON file per run record under a directory."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, record: RunRecord) -> Path:
        return self.directory / f"{record.run_id}.json"

    def save(self, record: RunRecord) -> Path:
        target = self.path_for(record)
        target.write_text(json.dumps(record.to_json(), indent=2) + "\n")
        return target

    def load(self, run_id: str) -> RunRecord:
        raw = json.loads((self.directory / f"{run_id}.json").read_text())
        return RunRecord.from_json(raw)

    def list(self) -> List[RunRecord]:
        return [
            RunRecord.from_json(json.loads(path.read_text()))
            for path in sorted(self.directory.glob("*.json"))
        ]
