"""Named, parameter-validated run operations.

Everything a campaign can execute — an oracle-stack seed check, an
instrumented app simulation, a figure measurement point, a resync
ablation — is an :class:`Operation`: a named callable with a
declarative parameter spec.  The spec validates a plain-JSON parameter
dict *before* any work starts, so malformed campaign units fail fast in
the parent process with a useful message instead of crashing a shard.

The registry keeps operations addressable by name, which is what lets
the shard pool ship ``(operation name, params)`` pairs across process
boundaries as plain picklable data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Operation",
    "OperationResult",
    "OperationSpec",
    "Param",
    "RegistryError",
    "RunContext",
    "get_operation",
    "list_operations",
    "register_operation",
    "run_operation",
]


class RegistryError(ValueError):
    """Unknown operation, or parameters that violate its spec."""


@dataclass(frozen=True)
class Param:
    """Declarative description of one operation parameter."""

    name: str
    type: type
    default: object = None
    required: bool = False
    minimum: Optional[int] = None
    choices: Optional[Tuple[object, ...]] = None
    help: str = ""

    def validate(self, value: object) -> object:
        # None means "use the default" for optional params whose default
        # IS None — this keeps spec.validate idempotent, so an already
        # defaulted dict (e.g. a campaign unit validated in the parent,
        # re-validated in the shard) passes unchanged.
        if value is None and not self.required and self.default is None:
            return None
        # bool is an int subclass; an explicit int param must reject it
        if self.type is int and isinstance(value, bool):
            raise RegistryError(
                f"parameter {self.name!r}: expected int, got bool"
            )
        if not isinstance(value, self.type):
            raise RegistryError(
                f"parameter {self.name!r}: expected "
                f"{self.type.__name__}, got {type(value).__name__}"
            )
        if self.minimum is not None and value < self.minimum:
            raise RegistryError(
                f"parameter {self.name!r}: {value} is below the "
                f"minimum {self.minimum}"
            )
        if self.choices is not None and value not in self.choices:
            raise RegistryError(
                f"parameter {self.name!r}: {value!r} not in "
                f"{list(self.choices)}"
            )
        return value


@dataclass(frozen=True)
class OperationSpec:
    """The full parameter contract of one operation."""

    params: Tuple[Param, ...] = ()

    def validate(self, values: Dict[str, object]) -> Dict[str, object]:
        """Return a complete, defaulted, validated parameter dict."""
        known = {param.name: param for param in self.params}
        unknown = sorted(set(values) - set(known))
        if unknown:
            raise RegistryError(
                f"unknown parameter(s) {unknown}; "
                f"expected {sorted(known)}"
            )
        resolved: Dict[str, object] = {}
        for param in self.params:
            if param.name in values:
                resolved[param.name] = param.validate(values[param.name])
            elif param.required:
                raise RegistryError(
                    f"missing required parameter {param.name!r}"
                )
            else:
                resolved[param.name] = param.default
        return resolved


@dataclass
class RunContext:
    """Per-process execution context handed to every operation."""

    #: optional :class:`repro.service.AnalysisCache`
    cache: object = None


@dataclass
class OperationResult:
    """What one operation execution produced."""

    status: str  # "completed" | "failed"
    payload: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "completed"


class Operation:
    """Base class: subclass, set ``name``/``spec``, implement ``execute``.

    ``execute`` receives the validated parameter dict and the context;
    it returns an :class:`OperationResult` whose payload must be plain
    JSON-serialisable data (it crosses process boundaries).
    """

    name: str = ""
    description: str = ""
    spec: OperationSpec = OperationSpec()

    def execute(
        self, params: Dict[str, object], context: RunContext
    ) -> OperationResult:
        raise NotImplementedError


_REGISTRY: Dict[str, Operation] = {}


def register_operation(cls: type) -> type:
    """Class decorator: instantiate and register an operation."""
    instance = cls()
    if not instance.name:
        raise RegistryError(f"operation class {cls.__name__} has no name")
    if instance.name in _REGISTRY:
        raise RegistryError(f"duplicate operation name {instance.name!r}")
    _REGISTRY[instance.name] = instance
    return cls


def get_operation(name: str) -> Operation:
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise RegistryError(
            f"unknown operation {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def list_operations() -> List[Operation]:
    _ensure_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def run_operation(
    name: str,
    params: Optional[Dict[str, object]] = None,
    context: Optional[RunContext] = None,
) -> OperationResult:
    """Validate ``params`` against the named spec and execute."""
    operation = get_operation(name)
    resolved = operation.spec.validate(dict(params or {}))
    return operation.execute(resolved, context or RunContext())


def _ensure_builtins() -> None:
    """Import the built-in operations exactly once (registration is a
    side effect of the module import)."""
    from repro.service import operations  # noqa: F401
