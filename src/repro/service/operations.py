"""Built-in run operations: conform, simulate, bench, ablate.

Each operation wraps one existing entry point of the reproduction
behind the registry's validated-parameter interface, returning plain
JSON payloads so campaign units can cross process boundaries.  The
conformance runner, the ``repro campaign`` CLI subcommand and the
figure benchmarks are all thin clients of these four.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.service.registry import (
    Operation,
    OperationResult,
    OperationSpec,
    Param,
    RunContext,
    register_operation,
)

__all__ = [
    "AblateResyncOperation",
    "BenchFigureOperation",
    "ConformSeedOperation",
    "SimulateAppOperation",
    "build_app_system",
]


def build_app_system(app: str, pes: int, iterations: int):
    """Build one of the example applications (shared with the CLI)."""
    if app == "lpc":
        from repro.apps.lpc import build_parallel_error_graph, frame_stream

        frames = frame_stream(total_samples=2 * 256, frame_size=256)
        return build_parallel_error_graph(frames, order=8, n_units=pes)
    if app == "pf":
        from repro.apps.particle_filter import (
            CrackGrowthModel,
            build_particle_filter_graph,
            simulate_crack_history,
        )

        model = CrackGrowthModel()
        _, observations = simulate_crack_history(
            model, steps=max(4, iterations)
        )
        return build_particle_filter_graph(
            model, observations, n_particles=100, n_pes=min(pes, 2)
        )
    if app == "chain":
        from repro.dataflow import DataflowGraph
        from repro.mapping import Partition, auto_pipeline

        graph = DataflowGraph("chain")
        stages = [("load", 400), ("transform", 500), ("store", 300)]
        actors = [graph.actor(name, cycles=c) for name, c in stages]
        for left, right in zip(actors, actors[1:]):
            out = left.add_output(f"to_{right.name}")
            inp = right.add_input(f"from_{left.name}")
            graph.connect(out, inp)
        result = auto_pipeline(graph, stages=min(pes, len(stages)))

        class _System:
            pass

        system = _System()
        system.graph = result.graph
        system.partition = Partition.manual(result.graph, result.stages)
        return system
    raise ValueError(f"unknown app {app!r}")


@register_operation
class ConformSeedOperation(Operation):
    """Run the differential oracle stack on one generated seed."""

    name = "conform.seed"
    description = (
        "generate the graph for one seed, run the oracle stack, "
        "optionally shrink a failure to a minimal spec"
    )
    spec = OperationSpec(
        params=(
            Param("seed", int, required=True, minimum=0,
                  help="generator seed to check"),
            Param("iterations", int, default=4, minimum=1,
                  help="graph iterations per oracle run"),
            Param("quick", bool, default=False,
                  help="skip the slow oracles"),
            Param("shrink", bool, default=True,
                  help="shrink failures to a minimal spec"),
            Param("max_cycles", int, default=5_000_000, minimum=1,
                  help="simulation cycle budget per run"),
            Param("shape", dict, default=None,
                  help="GraphShape field overrides"),
        )
    )

    def execute(
        self, params: Dict[str, object], context: RunContext
    ) -> OperationResult:
        from repro.conformance.generator import GraphShape, generate_spec
        from repro.conformance.oracles import (
            OracleReport,
            Violation,
            run_oracle_stack,
        )
        from repro.conformance.spec import SpecError, build_case

        seed = params["seed"]
        shape = GraphShape(**(params["shape"] or {}))
        spec = generate_spec(seed, shape)
        try:
            case = build_case(spec)
        except SpecError as exc:
            # a generator bug, not a semantics bug — still a failure
            report = OracleReport(seed=seed)
            report.violations.append(
                Violation("generator", "build", str(exc))
            )
        else:
            report = run_oracle_stack(
                case,
                iterations=params["iterations"],
                quick=params["quick"],
                max_cycles=params["max_cycles"],
                cache=context.cache,
            )

        payload: Dict[str, object] = {"case": report.to_json()}
        if not report.ok and params["shrink"]:
            shrunk = self._shrink(seed, report, shape, params)
            if shrunk is not None:
                payload["shrunk"] = shrunk
        cycles = sum(
            int(run.get("cycles", 0)) for run in report.runs.values()
        )
        return OperationResult(
            status="completed",
            payload=payload,
            metrics={"cycles": cycles, "ok": report.ok},
        )

    @staticmethod
    def _shrink(
        seed: int, report, shape, params: Dict[str, object]
    ) -> Optional[Dict[str, object]]:
        """Shrink the first violation to a minimal spec (uncached: the
        shrinker mutates structure, so the cache would only miss)."""
        from repro.conformance.generator import generate_spec
        from repro.conformance.shrinker import (
            oracle_failure_predicate,
            render_pytest_repro,
            shrink,
        )

        target = report.violations[0].oracle
        if target == "generator":
            return None
        predicate = oracle_failure_predicate(
            target,
            iterations=params["iterations"],
            quick=params["quick"],
            max_cycles=params["max_cycles"],
        )
        spec = generate_spec(seed, shape)
        if not predicate(spec):
            # flaky failure (should not happen: everything is seeded)
            return None
        result = shrink(spec, predicate)
        return {
            "oracle": target,
            "actors": len(result.spec.actors),
            "edges": len(result.spec.edges),
            "steps": result.steps,
            "attempts": result.attempts,
            "spec": result.spec.to_json(),
            "pytest_repro": render_pytest_repro(result.spec, target),
        }


@register_operation
class SimulateAppOperation(Operation):
    """Compile and simulate one example application."""

    name = "simulate.app"
    description = "compile + run an example app, report run statistics"
    spec = OperationSpec(
        params=(
            Param("app", str, required=True, choices=("lpc", "pf", "chain"),
                  help="example application to simulate"),
            Param("pes", int, default=3, minimum=1,
                  help="number of processing elements"),
            Param("iterations", int, default=5, minimum=1,
                  help="graph iterations to simulate"),
            Param(
                "transport",
                str,
                default="p2p",
                choices=("p2p", "shared_bus", "ordered_bus"),
                help="data-transport model",
            ),
        )
    )

    def execute(
        self, params: Dict[str, object], context: RunContext
    ) -> OperationResult:
        from repro.spi.runtime import SpiConfig, SpiSystem

        system = build_app_system(
            params["app"], params["pes"], params["iterations"]
        )
        compiled = SpiSystem.compile(
            system.graph,
            system.partition,
            SpiConfig(transport=params["transport"]),
            cache=context.cache,
        )
        result = compiled.run(iterations=params["iterations"])
        return OperationResult(
            status="completed",
            payload={
                "cycles": result.cycles,
                "iteration_period_cycles": result.iteration_period_cycles,
                "execution_time_us": result.execution_time_us,
                "data_messages": result.data_messages,
                "sync_messages": result.sync_messages,
                "wire_bytes": result.wire_bytes,
                "mcm_bound_cycles": (
                    compiled.estimated_iteration_period_cycles()
                ),
            },
            metrics={"cycles": result.cycles},
        )


@register_operation
class BenchFigureOperation(Operation):
    """Measure one point of the fig6/fig7 scaling series."""

    name = "bench.figure"
    description = "one (size, n) measurement point of figure 6 or 7"
    spec = OperationSpec(
        params=(
            Param("figure", str, required=True, choices=("fig6", "fig7"),
                  help="paper figure the point belongs to"),
            Param("size", int, required=True, minimum=1,
                  help="x-axis value: sample size (fig6) / particles (fig7)"),
            Param("n", int, required=True, minimum=1,
                  help="number of PEs"),
            Param("iterations", int, default=6, minimum=1,
                  help="graph iterations to simulate"),
        )
    )

    def execute(
        self, params: Dict[str, object], context: RunContext
    ) -> OperationResult:
        from repro.spi.runtime import SpiSystem

        if params["figure"] == "fig6":
            from repro.apps.lpc import build_parallel_error_graph, frame_stream

            frames = frame_stream(
                total_samples=2 * params["size"], frame_size=params["size"]
            )
            system = build_parallel_error_graph(
                frames, order=8, n_units=params["n"]
            )
        else:
            from repro.apps.particle_filter import (
                CrackGrowthModel,
                build_particle_filter_graph,
                simulate_crack_history,
            )

            model = CrackGrowthModel()
            _, observations = simulate_crack_history(
                model, steps=max(4, params["iterations"])
            )
            system = build_particle_filter_graph(
                model,
                observations,
                n_particles=params["size"],
                n_pes=params["n"],
            )
        compiled = SpiSystem.compile(
            system.graph, system.partition, cache=context.cache
        )
        result = compiled.run(iterations=params["iterations"])
        return OperationResult(
            status="completed",
            payload={
                "cycles": result.cycles,
                "iteration_period_cycles": result.iteration_period_cycles,
            },
            metrics={"cycles": result.cycles},
        )


@register_operation
class AblateResyncOperation(Operation):
    """Raw-UBS vs resynchronized run of one example application."""

    name = "ablate.resync"
    description = (
        "measure sync-message and wire-byte savings of resynchronization"
    )
    spec = OperationSpec(
        params=(
            Param("app", str, required=True, choices=("lpc", "pf", "chain"),
                  help="example application to ablate"),
            Param("pes", int, default=3, minimum=1,
                  help="number of processing elements"),
            Param("iterations", int, default=4, minimum=1,
                  help="graph iterations to simulate"),
        )
    )

    def execute(
        self, params: Dict[str, object], context: RunContext
    ) -> OperationResult:
        from repro.spi.runtime import SpiConfig, SpiSystem

        system = build_app_system(
            params["app"], params["pes"], params["iterations"]
        )
        raw = SpiSystem.compile(
            system.graph,
            system.partition,
            SpiConfig(protocol_policy="always_ubs", resynchronize=False),
            cache=context.cache,
        ).run(iterations=params["iterations"])
        optimised = SpiSystem.compile(
            system.graph,
            system.partition,
            SpiConfig(protocol_policy="always_ubs", resynchronize=True),
            cache=context.cache,
        ).run(iterations=params["iterations"])
        return OperationResult(
            status="completed",
            payload={
                "sync_messages_raw": raw.sync_messages,
                "sync_messages_resync": optimised.sync_messages,
                "wire_bytes_saved": raw.wire_bytes - optimised.wire_bytes,
            },
            metrics={"cycles": raw.cycles + optimised.cycles},
        )
