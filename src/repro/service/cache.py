"""Content-addressed cache for SPI compile-time analysis results.

Campaigns (the conformance fuzzer, the fig6/fig7 sweeps, ablations) run
the *same* graph through :meth:`repro.spi.runtime.SpiSystem.compile`
many times — across repeated seeds, across processes, across CI jobs —
and every run re-derives the same repetitions vector, channel plans
(protocol + ``B(e)``), resynchronization solution and MCM bound from
scratch.  Profiling puts resynchronization alone at ~97% of compile
time, so memoising these four analyses is where campaign throughput
comes from.

The cache is **content-addressed**: keys are SHA-256 digests over a
canonical JSON rendering of the graph structure, the partition and the
analysis-relevant :class:`~repro.spi.runtime.SpiConfig` fields.  Two
``DataflowGraph`` objects that describe the same application hash to
the same key no matter how or where they were built, which is what
makes the cache shareable across shard processes (via an optional disk
directory) and across repeated seeds of a campaign.

Correctness notes:

* graphs with *callable* ``Actor.cycles`` (data-dependent timing) have
  no canonical content, so :func:`graph_fingerprint` returns ``None``
  and every lookup silently bypasses the cache;
* ``SpiConfig.resynchronize`` is part of the analysis key — a cached
  channel plan records the *final* ``acks_enabled`` decision, which is
  only sound together with the resynchronization edges that licensed
  it;
* resynchronization solutions are stored as removed/added edge
  *descriptors* and replayed onto a freshly derived synchronization
  graph (``TimedEdge`` compares by value, not uid); any descriptor that
  no longer matches turns the lookup into a miss and the solution is
  recomputed.

Hit/miss counters are kept per analysis kind and can be flushed into a
:class:`repro.observability.metrics.MetricsRegistry` so cache
effectiveness flows through the standard metrics document.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.mapping.mcm import McmResult
from repro.mapping.resync import ResynchronizationResult, resynchronize
from repro.mapping.timed_graph import TimedEdge

__all__ = [
    "AnalysisCache",
    "CacheReplayError",
    "analysis_key",
    "graph_fingerprint",
]

#: SpiConfig fields that change the *analysis* outputs (channel plans,
#: sync graph, resync solution, MCM).  Transport/clock/link knobs only
#: affect execution, never the compile-time analyses, so they are
#: deliberately not part of the key — a p2p run and a shared-bus run of
#: the same graph share cache entries.
_ANALYSIS_CONFIG_FIELDS = (
    "resynchronize",
    "ubs_window",
    "max_bbs_messages",
    "protocol_policy",
    "word_bytes",
)


class CacheReplayError(ValueError):
    """A cached solution no longer applies to the given graph."""


def _canonical_rate(rate) -> object:
    if isinstance(rate, int):
        return rate
    # DynamicRate: bounded dynamic rate — canonical by its bounds
    return {"bound": rate.bound, "minimum": rate.minimum}


def graph_fingerprint(graph) -> Optional[str]:
    """SHA-256 digest of a graph's analysis-relevant content.

    Returns ``None`` when the graph has no canonical content (an actor
    with a callable cycle model); callers must then bypass the cache.
    The graph *name* is excluded on purpose: ``conform_seed17`` and
    ``conform_seed42`` with identical structure must collide.
    """
    actors = []
    for actor in sorted(graph.actors, key=lambda a: a.name):
        if not isinstance(actor.cycles, int):
            return None
        actors.append(
            {
                "name": actor.name,
                "cycles": actor.cycles,
                "ports": [
                    {
                        "name": port.name,
                        "direction": str(port.direction),
                        "rate": _canonical_rate(port.rate),
                        "token_bytes": port.token_bytes,
                    }
                    for port in sorted(actor.ports, key=lambda p: p.name)
                ],
            }
        )
    edges = sorted(
        (
            {
                "src": edge.source.qualified_name,
                "snk": edge.sink.qualified_name,
                "delay": edge.delay,
            }
            for edge in graph.edges
        ),
        key=lambda e: (e["src"], e["snk"], e["delay"]),
    )
    content = {"actors": actors, "edges": edges}
    # Collective connections change rate overrides, lowering, and the
    # B(e) accounting, so they must key the cache — but pure
    # point-to-point graphs keep their pre-collective fingerprints
    # (stable committed benchmark baselines).
    collectives = [
        {
            "kind": conn.kind,
            "members": [
                {
                    "src": edge.source.qualified_name,
                    "snk": edge.sink.qualified_name,
                }
                for edge in conn.edges
            ],
            "chunks": list(conn.chunks) if conn.chunks else None,
        }
        for conn in getattr(graph, "collective_connections", ())
    ]
    if collectives:
        content["collectives"] = collectives
    payload = json.dumps(content, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def _partition_content(partition) -> Dict[str, object]:
    content: Dict[str, object] = {
        "n_pes": partition.n_pes,
        "assignment": sorted(partition.assignment.items()),
    }
    # Heterogeneity keys enter the fingerprint only when they deviate
    # from the homogeneous default, so every pre-existing cache entry
    # (and committed baseline) keeps its key.
    pe_classes = getattr(partition, "pe_classes", None)
    if pe_classes:
        content["pe_classes"] = sorted(
            (
                pe,
                [
                    kind.kind,
                    kind.dispatch_cycles,
                    kind.cycles_per_element,
                    kind.resource_cost,
                ],
            )
            for pe, kind in pe_classes.items()
        )
    batch_size = getattr(partition, "batch_size", 1)
    if batch_size != 1:
        content["batch_size"] = batch_size
    return content


def _digest(parts: Dict[str, object]) -> str:
    payload = json.dumps(parts, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def analysis_key(graph, partition, config) -> Optional[str]:
    """Content key covering graph + partition + analysis config."""
    fingerprint = graph_fingerprint(graph)
    if fingerprint is None:
        return None
    return _digest(
        {
            "graph": fingerprint,
            "partition": _partition_content(partition),
            "config": {
                name: getattr(config, name)
                for name in _ANALYSIS_CONFIG_FIELDS
            },
        }
    )


def structure_key(graph, partition, config) -> Optional[str]:
    """Key for analyses that depend only on structure, not policy.

    The repetitions vector of the SPI-inserted graph is invariant under
    protocol policy / window / resynchronization choices, so it gets a
    coarser key and is shared across the whole oracle run matrix.
    """
    fingerprint = graph_fingerprint(graph)
    if fingerprint is None:
        return None
    return _digest(
        {
            "graph": fingerprint,
            "partition": _partition_content(partition),
            "word_bytes": config.word_bytes,
        }
    )


def _encode_edge(edge: TimedEdge) -> Dict[str, object]:
    return {
        "src": edge.src,
        "snk": edge.snk,
        "delay": edge.delay,
        "kind": edge.kind,
        "payload_bytes": edge.payload_bytes,
        "origin_edge": edge.origin_edge,
    }


def _decode_edge(raw: Dict[str, object]) -> TimedEdge:
    return TimedEdge(
        src=raw["src"],
        snk=raw["snk"],
        delay=raw["delay"],
        kind=raw["kind"],
        payload_bytes=raw["payload_bytes"],
        origin_edge=raw["origin_edge"],
    )


def _encode_resync(result: ResynchronizationResult) -> Dict[str, object]:
    return {
        "removed": [_encode_edge(e) for e in result.removed],
        "added": [_encode_edge(e) for e in result.added],
        "cost_before": result.cost_before,
        "cost_after": result.cost_after,
        "mcm_before": result.mcm_before,
        "mcm_after": result.mcm_after,
    }


def _replay_resync(sync_graph, raw: Dict[str, object]) -> ResynchronizationResult:
    """Apply a stored resynchronization solution to a fresh sync graph.

    Raises :class:`CacheReplayError` when any removed-edge descriptor
    fails to match an edge of ``sync_graph`` — the caller treats that
    as a miss and recomputes.
    """
    pruned = sync_graph.copy()
    removed: List[TimedEdge] = []
    for descriptor in raw["removed"]:
        candidate = _decode_edge(descriptor)
        if candidate not in pruned.edges:
            raise CacheReplayError(
                f"cached resync removal {candidate.src}->{candidate.snk} "
                f"does not match the derived synchronization graph"
            )
        pruned.remove_edge(candidate)
        removed.append(candidate)
    added = [_decode_edge(descriptor) for descriptor in raw["added"]]
    for edge in added:
        pruned.add_edge(edge)
    return ResynchronizationResult(
        graph=pruned,
        removed=removed,
        added=added,
        cost_before=raw["cost_before"],
        cost_after=raw["cost_after"],
        mcm_before=raw["mcm_before"],
        mcm_after=raw["mcm_after"],
    )


class AnalysisCache:
    """In-memory (optionally disk-backed) analysis memo with counters.

    ``path=None`` keeps everything in this process.  With a directory
    the cache also persists every entry as
    ``<path>/<key[:2]>/<key>.<kind>.json`` (written atomically via
    rename), which is how shard processes of one campaign share work.
    """

    KINDS = ("repetitions", "channel_plans", "resync", "mcm", "period")

    def __init__(self, path: Optional[os.PathLike] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._memory: Dict[str, object] = {}
        self.hits: Dict[str, int] = {kind: 0 for kind in self.KINDS}
        self.misses: Dict[str, int] = {kind: 0 for kind in self.KINDS}

    # -- keying ------------------------------------------------------------

    def key_for(self, graph, partition, config) -> Optional[str]:
        return analysis_key(graph, partition, config)

    def structure_key_for(self, graph, partition, config) -> Optional[str]:
        return structure_key(graph, partition, config)

    # -- storage -----------------------------------------------------------

    def _disk_file(self, key: str, kind: str) -> Path:
        assert self.path is not None
        return self.path / key[:2] / f"{key}.{kind}.json"

    def _load(self, key: str, kind: str) -> Optional[object]:
        entry = self._memory.get(f"{key}.{kind}")
        if entry is not None:
            return entry
        if self.path is None:
            return None
        target = self._disk_file(key, kind)
        try:
            entry = json.loads(target.read_text())
        except (OSError, ValueError):
            return None
        self._memory[f"{key}.{kind}"] = entry
        return entry

    def _store(self, key: str, kind: str, value: object) -> None:
        self._memory[f"{key}.{kind}"] = value
        if self.path is None:
            return
        target = self._disk_file(key, kind)
        target.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: concurrent shards may race on the same key,
        # but a rename never exposes a half-written file.
        fd, tmp = tempfile.mkstemp(
            dir=str(target.parent), suffix=".tmp", prefix=target.name
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(value, handle)
            os.replace(tmp, target)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _note(self, kind: str, hit: bool) -> None:
        if hit:
            self.hits[kind] += 1
        else:
            self.misses[kind] += 1

    # -- analyses ----------------------------------------------------------

    def repetitions(
        self, key: Optional[str], compute: Callable[[], Dict[str, int]]
    ) -> Dict[str, int]:
        """Repetitions vector of the SPI-inserted graph."""
        if key is None:
            return compute()
        cached = self._load(key, "repetitions")
        if cached is not None:
            self._note("repetitions", True)
            return dict(cached)
        self._note("repetitions", False)
        value = compute()
        self._store(key, "repetitions", dict(value))
        return dict(value)

    def mcm(
        self, key: Optional[str], compute: Callable[[], McmResult]
    ) -> McmResult:
        """MCM of the (resynchronized) sync graph, with witness.

        The stored payload carries the critical-cycle witness alongside
        the bound; entries written before the witness existed (bare
        ``{"value": ...}``) still load, as witness-less results.
        """
        if key is None:
            return compute()
        cached = self._load(key, "mcm")
        if cached is not None:
            self._note("mcm", True)
            return McmResult.from_dict(cached)
        self._note("mcm", False)
        result = compute()
        self._store(key, "mcm", result.to_dict())
        return result

    def channel_decisions(
        self, key: Optional[str]
    ) -> Optional[Dict[str, Dict[str, object]]]:
        """Stored per-channel (protocol, capacity, acks) decisions."""
        if key is None:
            return None
        cached = self._load(key, "channel_plans")
        self._note("channel_plans", cached is not None)
        return cached

    def store_channel_decisions(self, key: Optional[str], plans) -> None:
        """Record the *final* decisions of every channel plan."""
        if key is None:
            return
        self._store(
            key,
            "channel_plans",
            {
                name: {
                    "protocol": plan.protocol,
                    "capacity_messages": plan.capacity_messages,
                    "acks_enabled": plan.acks_enabled,
                }
                for name, plan in plans.items()
            },
        )

    def period_hint(self, key: Optional[str]) -> Optional[Tuple[int, int]]:
        """Observed steady-state period ``(iterations, cycles)`` of a
        previous run of the same system (same graph + execution knobs).

        The hint is advisory: the steady-state tracker still requires an
        exact kernel-state recurrence with matching period before it
        warps, so a stale or wrong hint costs nothing but the shortcut.
        """
        if key is None:
            return None
        cached = self._load(key, "period")
        self._note("period", cached is not None)
        if cached is None:
            return None
        return (int(cached["iterations"]), int(cached["cycles"]))

    def store_period(
        self, key: Optional[str], period_iterations: int, period_cycles: int
    ) -> None:
        """Record a confirmed steady-state period for future runs."""
        if key is None:
            return
        self._store(
            key,
            "period",
            {"iterations": period_iterations, "cycles": period_cycles},
        )

    def resynchronize(self, key: Optional[str], sync_graph) -> ResynchronizationResult:
        """Replay the cached resynchronization solution, or compute it."""
        if key is None:
            return resynchronize(sync_graph)
        raw = self._load(key, "resync")
        if raw is not None:
            try:
                result = _replay_resync(sync_graph, raw)
            except CacheReplayError:
                pass
            else:
                self._note("resync", True)
                return result
        self._note("resync", False)
        result = resynchronize(sync_graph)
        self._store(key, "resync", _encode_resync(result))
        return result

    # -- reporting ---------------------------------------------------------

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    def hit_rate(self) -> float:
        total = self.total_hits + self.total_misses
        return self.total_hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        return {
            "hits": self.total_hits,
            "misses": self.total_misses,
            "hit_rate": self.hit_rate(),
            "by_kind": {
                kind: {"hits": self.hits[kind], "misses": self.misses[kind]}
                for kind in self.KINDS
            },
        }

    def counters_into(self, registry) -> None:
        """Flush the hit/miss counts into a ``MetricsRegistry``."""
        for kind in self.KINDS:
            registry.counter("service.cache.hits", kind=kind).inc(
                self.hits[kind]
            )
            registry.counter("service.cache.misses", kind=kind).inc(
                self.misses[kind]
            )
