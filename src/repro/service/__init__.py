"""Run service: operation registry, shard pool, analysis cache, campaigns.

The service layer turns one-shot runs into *campaigns*: named,
parameter-validated operations (:mod:`repro.service.registry`,
:mod:`repro.service.operations`) executed across a work-stealing
multiprocess shard pool (:mod:`repro.service.shards`) with per-run
lifecycle records (:mod:`repro.service.lifecycle`) and a
content-addressed analysis cache (:mod:`repro.service.cache`) so each
distinct graph is analysed once per campaign, not once per run.
"""

from repro.service.cache import (
    AnalysisCache,
    CacheReplayError,
    analysis_key,
    graph_fingerprint,
)
from repro.service.campaign import (
    CAMPAIGN_SCHEMA,
    CampaignPlan,
    run_service_campaign,
)
from repro.service.lifecycle import (
    RUN_SCHEMA,
    LifecycleError,
    RunRecord,
    RunStore,
)
from repro.service.registry import (
    Operation,
    OperationResult,
    OperationSpec,
    Param,
    RegistryError,
    RunContext,
    get_operation,
    list_operations,
    register_operation,
    run_operation,
)
from repro.service.shards import ShardPool, UnitResult

__all__ = [
    "AnalysisCache",
    "CAMPAIGN_SCHEMA",
    "CacheReplayError",
    "CampaignPlan",
    "LifecycleError",
    "Operation",
    "OperationResult",
    "OperationSpec",
    "Param",
    "RegistryError",
    "RUN_SCHEMA",
    "RunContext",
    "RunRecord",
    "RunStore",
    "ShardPool",
    "UnitResult",
    "analysis_key",
    "get_operation",
    "graph_fingerprint",
    "list_operations",
    "register_operation",
    "run_operation",
    "run_service_campaign",
]
