"""Campaign engine: fan validated operation units across shard pools.

A :class:`CampaignPlan` is a list of parameter dicts for one registered
operation plus execution policy (worker count, cache sharing, record
persistence).  :func:`run_service_campaign` turns every unit into a
:class:`~repro.service.lifecycle.RunRecord`, executes the units through
the :class:`~repro.service.shards.ShardPool` (inline when
``workers=1``), and aggregates the outcome into a ``repro.campaign/1``
report embedding the standard bench document and the cache hit/miss
counters rendered through the observability metrics registry.

Cache topology: each shard process holds one in-memory
:class:`~repro.service.cache.AnalysisCache`; when the plan names a
``cache_dir`` the shards additionally share entries through the disk
tier, so a graph analysed once is analysed once per *campaign*, not
once per shard.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.observability.bench import bench_document
from repro.observability.metrics import MetricsRegistry
from repro.service.cache import AnalysisCache
from repro.service.lifecycle import RunRecord, RunStore
from repro.service.registry import RunContext, get_operation, run_operation
from repro.service.shards import ShardPool, UnitResult

__all__ = ["CampaignPlan", "run_service_campaign", "CAMPAIGN_SCHEMA"]

#: schema identifier of service campaign reports
CAMPAIGN_SCHEMA = "repro.campaign/1"


@dataclass
class CampaignPlan:
    """Everything needed to execute one campaign."""

    operation: str
    units: List[Dict[str, object]]
    workers: int = 1
    use_cache: bool = True
    #: disk tier shared by all shards (None: per-process memory only)
    cache_dir: Optional[str] = None
    #: directory for persisted run-lifecycle records (None: in-memory)
    runs_dir: Optional[str] = None
    #: bench-document flavour flag
    quick: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        if not self.units:
            raise ValueError("a campaign needs at least one unit")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    @property
    def label(self) -> str:
        return self.name or self.operation.replace(".", "_")


#: per-process cache instances, keyed by campaign token so repeated
#: campaigns in one process (tests, notebooks) stay independent
_PROCESS_CACHES: Dict[str, AnalysisCache] = {}


def _campaign_worker(unit) -> Dict[str, object]:
    """Execute one (operation, params) unit in the current process."""
    token, operation, params, cache_dir, use_cache = unit
    cache: Optional[AnalysisCache] = None
    if use_cache:
        cache = _PROCESS_CACHES.get(token)
        if cache is None:
            cache = AnalysisCache(path=cache_dir)
            _PROCESS_CACHES[token] = cache
    before_hits = cache.total_hits if cache else 0
    before_misses = cache.total_misses if cache else 0
    before_kind = (
        {k: (cache.hits[k], cache.misses[k]) for k in cache.KINDS}
        if cache
        else {}
    )
    result = run_operation(operation, params, RunContext(cache=cache))
    delta: Dict[str, object] = {
        "hits": (cache.total_hits - before_hits) if cache else 0,
        "misses": (cache.total_misses - before_misses) if cache else 0,
        "by_kind": {
            kind: {
                "hits": cache.hits[kind] - before_kind[kind][0],
                "misses": cache.misses[kind] - before_kind[kind][1],
            }
            for kind in (cache.KINDS if cache else ())
        },
    }
    return {
        "status": result.status,
        "payload": result.payload,
        "metrics": result.metrics,
        "cache": delta,
    }


def run_service_campaign(plan: CampaignPlan) -> Dict[str, object]:
    """Execute the plan; returns the ``repro.campaign/1`` report."""
    operation = get_operation(plan.operation)
    # Validate every unit up front: a malformed unit is a caller bug
    # and should fail the campaign before any shard is spawned.
    validated = [operation.spec.validate(dict(unit)) for unit in plan.units]

    store = RunStore(plan.runs_dir) if plan.runs_dir else None
    records = [
        RunRecord(
            run_id=f"{plan.label}-{index:05d}",
            operation=plan.operation,
            params=params,
        )
        for index, params in enumerate(validated)
    ]
    if store is not None:
        for record in records:
            store.save(record)

    def on_start(index: int, shard: int) -> None:
        records[index].mark_running(shard=shard)
        if store is not None:
            store.save(records[index])

    def on_result(result: UnitResult) -> None:
        record = records[result.index]
        if record.state == "queued":
            # Crash recovery can deliver a failure for a unit whose
            # "start" event was lost with its shard.
            record.mark_running(shard=result.shard)
        if result.ok and result.value["status"] == "completed":
            record.mark_done(metrics=result.value.get("metrics", {}))
        else:
            record.mark_failed(
                result.error or str(result.value.get("payload", ""))
            )
        if store is not None:
            store.save(record)

    token = uuid.uuid4().hex
    units = [
        (token, plan.operation, params, plan.cache_dir, plan.use_cache)
        for params in validated
    ]
    pool = ShardPool(workers=plan.workers)
    started = time.monotonic()
    results = pool.run(
        _campaign_worker, units, on_start=on_start, on_result=on_result
    )
    wall = time.monotonic() - started
    _PROCESS_CACHES.pop(token, None)

    cache_stats = _aggregate_cache(results)
    failures = [
        {"index": r.index, "run_id": records[r.index].run_id, "error": r.error}
        for r in results
        if not r.ok
    ]
    total_cycles = sum(
        int(r.value["metrics"].get("cycles", 0)) for r in results if r.ok
    )

    registry = MetricsRegistry()
    registry.counter("service.campaign.units").inc(len(results))
    registry.counter("service.campaign.completed").inc(
        len(results) - len(failures)
    )
    registry.counter("service.campaign.failed").inc(len(failures))
    for kind, counts in cache_stats["by_kind"].items():
        registry.counter("service.cache.hits", kind=kind).inc(counts["hits"])
        registry.counter("service.cache.misses", kind=kind).inc(
            counts["misses"]
        )

    bench = bench_document(
        name=f"campaign_{plan.label}",
        makespan_cycles=total_cycles,
        iteration_period_cycles=0.0,
        wall_seconds=wall,
        quick=plan.quick,
        extra={
            "operation": plan.operation,
            "units": len(results),
            "workers": plan.workers,
            "failed": len(failures),
        },
    )
    return {
        "schema": CAMPAIGN_SCHEMA,
        "operation": plan.operation,
        "units": len(results),
        "workers": plan.workers,
        "completed": len(results) - len(failures),
        "failures": failures,
        "results": [r.value if r.ok else None for r in results],
        "cache": cache_stats,
        "counters": registry.as_dict(),
        "records": [record.to_json() for record in records],
        "bench": bench,
    }


def _aggregate_cache(results: List[UnitResult]) -> Dict[str, object]:
    """Sum the per-unit cache deltas reported by the shards."""
    by_kind: Dict[str, Dict[str, int]] = {
        kind: {"hits": 0, "misses": 0} for kind in AnalysisCache.KINDS
    }
    hits = misses = 0
    for result in results:
        if not result.ok:
            continue
        delta = result.value.get("cache", {})
        hits += delta.get("hits", 0)
        misses += delta.get("misses", 0)
        for kind, counts in delta.get("by_kind", {}).items():
            bucket = by_kind.setdefault(kind, {"hits": 0, "misses": 0})
            bucket["hits"] += counts.get("hits", 0)
            bucket["misses"] += counts.get("misses", 0)
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / total if total else 0.0,
        "by_kind": by_kind,
    }
