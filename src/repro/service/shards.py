"""Multiprocess shard pool: work stealing, per-shard failure isolation.

The pool fans a list of picklable work units across ``workers``
processes.  Scheduling is *pull-based*: every shard takes its next unit
from one shared queue the moment it goes idle, so a shard that drew
only cheap units automatically steals the work a slow shard would
otherwise serialise — classic work stealing without any balancing
logic in the parent.

Failure isolation is two-layered:

* an **exception** inside a unit is caught in the shard, reported as a
  failed :class:`UnitResult`, and the shard moves on;
* a **crashed shard** (hard exit, ``os._exit``, OOM kill) is detected
  by the parent via process liveness, its in-flight unit is marked
  failed, and a replacement shard is spawned (bounded by a respawn
  budget so a poison unit cannot respawn forever).

``workers=1`` executes everything inline in the calling process — no
fork, fully deterministic, and the right default on single-core CI
runners.
"""

from __future__ import annotations

import multiprocessing
import queue
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

__all__ = ["ShardPool", "UnitResult"]


@dataclass
class UnitResult:
    """Outcome of one work unit."""

    index: int
    ok: bool
    value: object = None
    error: Optional[str] = None
    shard: int = 0
    wall_seconds: float = 0.0


def _shard_main(shard: int, worker, tasks, results) -> None:
    """Shard process body: pull units until the queue is drained."""
    while True:
        try:
            item = tasks.get(timeout=0.05)
        except queue.Empty:
            continue
        if item is None:
            results.put(("exit", shard, None))
            return
        index, unit = item
        results.put(("start", shard, index))
        started = time.monotonic()
        try:
            value = worker(unit)
        except Exception as exc:
            results.put(
                (
                    "result",
                    shard,
                    UnitResult(
                        index=index,
                        ok=False,
                        error=(
                            f"{type(exc).__name__}: {exc}\n"
                            + traceback.format_exc(limit=8)
                        ),
                        shard=shard,
                        wall_seconds=time.monotonic() - started,
                    ),
                )
            )
        else:
            results.put(
                (
                    "result",
                    shard,
                    UnitResult(
                        index=index,
                        ok=True,
                        value=value,
                        shard=shard,
                        wall_seconds=time.monotonic() - started,
                    ),
                )
            )


class ShardPool:
    """Run picklable units through ``workers`` shard processes."""

    def __init__(self, workers: int = 1, max_respawns: int = 4) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.max_respawns = max_respawns

    def run(
        self,
        worker: Callable[[object], object],
        units: Sequence[object],
        on_start: Optional[Callable[[int, int], None]] = None,
        on_result: Optional[Callable[[UnitResult], None]] = None,
    ) -> List[UnitResult]:
        """Execute every unit; returns results ordered by unit index.

        ``on_start(index, shard)`` and ``on_result(result)`` fire in
        the parent as the campaign progresses (lifecycle bookkeeping).
        """
        if self.workers == 1:
            return self._run_inline(worker, units, on_start, on_result)
        return self._run_sharded(worker, units, on_start, on_result)

    def _run_inline(self, worker, units, on_start, on_result) -> List[UnitResult]:
        results: List[UnitResult] = []
        for index, unit in enumerate(units):
            if on_start is not None:
                on_start(index, 0)
            started = time.monotonic()
            try:
                value = worker(unit)
            except Exception as exc:
                result = UnitResult(
                    index=index,
                    ok=False,
                    error=(
                        f"{type(exc).__name__}: {exc}\n"
                        + traceback.format_exc(limit=8)
                    ),
                    wall_seconds=time.monotonic() - started,
                )
            else:
                result = UnitResult(
                    index=index,
                    ok=True,
                    value=value,
                    wall_seconds=time.monotonic() - started,
                )
            if on_result is not None:
                on_result(result)
            results.append(result)
        return results

    def _run_sharded(self, worker, units, on_start, on_result) -> List[UnitResult]:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context("spawn")
        tasks = ctx.Queue()
        results_q = ctx.Queue()
        for index, unit in enumerate(units):
            tasks.put((index, unit))
        n_shards = min(self.workers, max(1, len(units)))
        for _ in range(n_shards):
            tasks.put(None)

        def spawn(shard_id: int):
            process = ctx.Process(
                target=_shard_main,
                args=(shard_id, worker, tasks, results_q),
                daemon=True,
            )
            process.start()
            return process

        shards: Dict[int, object] = {i: spawn(i) for i in range(n_shards)}
        in_flight: Dict[int, int] = {}  # shard -> unit index
        collected: Dict[int, UnitResult] = {}
        respawns = 0
        next_shard_id = n_shards

        def deliver(result: UnitResult) -> None:
            collected[result.index] = result
            if on_result is not None:
                on_result(result)

        while len(collected) < len(units) and shards:
            try:
                kind, shard, payload = results_q.get(timeout=0.2)
            except queue.Empty:
                # No progress: check for crashed shards and recover
                # their in-flight unit.
                dead = [
                    sid
                    for sid, process in shards.items()
                    if not process.is_alive()
                ]
                for sid in dead:
                    process = shards.pop(sid)
                    lost = in_flight.pop(sid, None)
                    if lost is not None and lost not in collected:
                        deliver(
                            UnitResult(
                                index=lost,
                                ok=False,
                                error=(
                                    f"shard {sid} crashed "
                                    f"(exit code {process.exitcode}) "
                                    f"while running unit {lost}"
                                ),
                                shard=sid,
                            )
                        )
                    if respawns < self.max_respawns:
                        respawns += 1
                        shards[next_shard_id] = spawn(next_shard_id)
                        next_shard_id += 1
                continue
            if kind == "start":
                in_flight[shard] = payload
                if on_start is not None:
                    on_start(payload, shard)
            elif kind == "result":
                in_flight.pop(shard, None)
                deliver(payload)
            elif kind == "exit":
                process = shards.pop(shard, None)
                if process is not None:
                    process.join(timeout=5)

        for process in shards.values():
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - stuck shard
                process.terminate()

        # Anything never delivered (all shards died, respawn budget
        # exhausted) is a failed unit, not a hang.
        for index in range(len(units)):
            if index not in collected:
                deliver(
                    UnitResult(
                        index=index,
                        ok=False,
                        error="unit was never executed (shard pool drained "
                        "after repeated shard crashes)",
                    )
                )
        return [collected[index] for index in range(len(units))]
