"""Bounded dynamic-rate ports.

SDF forbids run-time variation of production/consumption rates.  The paper
handles a useful class of dynamic behaviour by *bounding* the variation:
a dynamic port declares an upper bound on its rate, and the VTS conversion
(:mod:`repro.dataflow.vts`) turns the varying rate into a *fixed* rate of
one variable-size packed token per firing.

This module provides the :class:`DynamicRate` annotation plus helpers to
sample admissible rate sequences, which the token-level simulator and the
property-based tests use to exercise dynamic behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

__all__ = ["DynamicRate", "RateOracle"]


@dataclass(frozen=True)
class DynamicRate:
    """A run-time varying token rate with a compile-time upper bound.

    Parameters
    ----------
    bound:
        Inclusive upper bound on the number of raw tokens produced or
        consumed in one firing.  Required: the paper's bounded-memory
        guarantee (eq. 1) depends on it.
    minimum:
        Inclusive lower bound (defaults to 1; a firing that moves zero
        tokens would break SDF-style precedence reasoning, so it is
        disallowed by default but may be enabled by passing ``minimum=0``
        for modelling purposes).
    """

    bound: int
    minimum: int = 1

    def __post_init__(self) -> None:
        if self.bound < 1:
            raise ValueError(f"DynamicRate bound must be >= 1, got {self.bound}")
        if not 0 <= self.minimum <= self.bound:
            raise ValueError(
                f"DynamicRate minimum must be in [0, bound], got "
                f"minimum={self.minimum}, bound={self.bound}"
            )

    def admits(self, rate: int) -> bool:
        """True when ``rate`` is an admissible instantaneous rate."""
        return self.minimum <= rate <= self.bound

    def clamp(self, rate: int) -> int:
        """Clamp an arbitrary integer into the admissible range."""
        return max(self.minimum, min(self.bound, rate))

    def __repr__(self) -> str:
        return f"DynamicRate(bound={self.bound}, minimum={self.minimum})"


class RateOracle:
    """Deterministic generator of admissible rate sequences.

    A rate oracle answers "how many raw tokens does firing *k* of this
    port move?".  It is used by:

    * the token-level simulator, to model data-dependent behaviour
      without requiring a full functional kernel;
    * the VTS soundness tests, to drive occupancy up against the computed
      bounds.

    Parameters
    ----------
    spec:
        The :class:`DynamicRate` this oracle must respect.
    sequence:
        Explicit rate sequence (cycled when exhausted), or ``None``.
    function:
        ``function(firing_index) -> rate``; mutually exclusive with
        ``sequence``.  When both are ``None`` the oracle always answers
        the upper bound (the conservative worst case).
    """

    def __init__(
        self,
        spec: DynamicRate,
        sequence: Optional[Sequence[int]] = None,
        function: Optional[Callable[[int], int]] = None,
    ) -> None:
        if sequence is not None and function is not None:
            raise ValueError("pass either sequence or function, not both")
        if sequence is not None:
            if not sequence:
                raise ValueError("rate sequence must be non-empty")
            bad = [r for r in sequence if not spec.admits(r)]
            if bad:
                raise ValueError(
                    f"rates {bad} are outside the admissible range "
                    f"[{spec.minimum}, {spec.bound}]"
                )
        self.spec = spec
        self._sequence = list(sequence) if sequence is not None else None
        self._function = function

    def rate(self, firing_index: int) -> int:
        """Admissible rate for firing ``firing_index`` (0-based)."""
        if self._sequence is not None:
            value = self._sequence[firing_index % len(self._sequence)]
        elif self._function is not None:
            value = self._function(firing_index)
            if not self.spec.admits(value):
                raise ValueError(
                    f"rate function returned {value} for firing "
                    f"{firing_index}, outside [{self.spec.minimum}, "
                    f"{self.spec.bound}]"
                )
        else:
            value = self.spec.bound
        return value

    def rates(self, count: int) -> Iterator[int]:
        """First ``count`` rates as an iterator."""
        return (self.rate(k) for k in range(count))

    @classmethod
    def constant(cls, spec: DynamicRate, value: int) -> "RateOracle":
        """Oracle that always answers ``value``."""
        return cls(spec, sequence=[value])

    @classmethod
    def worst_case(cls, spec: DynamicRate) -> "RateOracle":
        """Oracle that always answers the upper bound."""
        return cls(spec)
