"""Coarse-grain dataflow graph data structures.

This module provides the basic vocabulary used throughout the SPI
reproduction: actors with rate-annotated ports, edges with initial delays
(tokens), and the :class:`DataflowGraph` container that the SDF analyses,
the VTS conversion, the multiprocessor mapping and the SPI library all
operate on.

The model follows the conventions of Lee/Messerschmitt SDF and of Sriram &
Bhattacharyya's *Embedded Multiprocessors* book, which the paper builds on:

* an **actor** is a coarse-grain functional block that *fires* atomically,
  consuming a fixed number of tokens from each input port and producing a
  fixed number of tokens on each output port;
* an **edge** is a conceptually unbounded FIFO connecting one output port
  to one input port, optionally carrying ``delay`` initial tokens;
* a **connection** generalises the edge to a hyperedge (after
  Liu/Barford/Bhattacharyya's generalized graph connections): a
  point-to-point FIFO is the degenerate one-branch case, while
  broadcast/scatter fan one producer port out to k consumer ports and
  gather/reduce fan k producer ports into one consumer port.  Every
  connection *lowers* to one member :class:`Edge` per branch, so all
  edge-based analyses (repetitions vector, PASS, HSDF, IPC graph) keep
  working unchanged — they only need to read the per-branch
  ``Edge.prod_rate`` / ``Edge.cons_rate`` instead of the raw port rates;
* a **port rate** is an integer for static (SDF) ports, or a
  :class:`~repro.dataflow.dynamic.DynamicRate` bound for dynamic ports
  (see :mod:`repro.dataflow.dynamic`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.dataflow.dynamic import DynamicRate

__all__ = [
    "Direction",
    "Port",
    "Actor",
    "Edge",
    "Connection",
    "DataflowGraph",
    "GraphError",
]


class GraphError(ValueError):
    """Raised on structurally invalid graph construction or queries."""


class Direction:
    """Port direction constants (plain strings keep reprs readable)."""

    INPUT = "input"
    OUTPUT = "output"


Rate = Union[int, DynamicRate]


@dataclass
class Port:
    """A rate-annotated connection point on an actor.

    Parameters
    ----------
    name:
        Port name, unique within its actor.
    direction:
        ``Direction.INPUT`` or ``Direction.OUTPUT``.
    rate:
        Tokens consumed/produced per firing.  An ``int`` for SDF ports, a
        :class:`DynamicRate` for dynamic ports that will be subjected to
        VTS conversion.
    token_bytes:
        Size in bytes of one *raw* (unpacked) token flowing through this
        port.  Used by the VTS bound computation (paper eq. 1) and by the
        platform's communication-cost model.
    """

    name: str
    direction: str
    rate: Rate = 1
    token_bytes: int = 4
    actor: Optional["Actor"] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.direction not in (Direction.INPUT, Direction.OUTPUT):
            raise GraphError(f"invalid port direction {self.direction!r}")
        if isinstance(self.rate, bool) or (
            isinstance(self.rate, int) and self.rate <= 0
        ):
            raise GraphError(
                f"port {self.name!r}: static rate must be a positive int, "
                f"got {self.rate!r}"
            )
        if not isinstance(self.rate, (int, DynamicRate)):
            raise GraphError(
                f"port {self.name!r}: rate must be int or DynamicRate, "
                f"got {type(self.rate).__name__}"
            )
        if self.token_bytes <= 0:
            raise GraphError(
                f"port {self.name!r}: token_bytes must be positive"
            )

    @property
    def is_dynamic(self) -> bool:
        """True when this port has a run-time varying rate."""
        return isinstance(self.rate, DynamicRate)

    @property
    def is_input(self) -> bool:
        return self.direction == Direction.INPUT

    @property
    def is_output(self) -> bool:
        return self.direction == Direction.OUTPUT

    @property
    def max_rate(self) -> int:
        """Upper bound on the port rate (the rate itself for SDF ports)."""
        if isinstance(self.rate, DynamicRate):
            return self.rate.bound
        return self.rate

    @property
    def qualified_name(self) -> str:
        owner = self.actor.name if self.actor is not None else "<detached>"
        return f"{owner}.{self.name}"


class Actor:
    """A coarse-grain dataflow actor.

    An actor owns a set of named ports, an optional functional *kernel*
    (used by the token-level simulator to compute real output values) and
    a *cycle model* (used by the platform simulator to charge execution
    time).

    Parameters
    ----------
    name:
        Unique actor name within its graph.
    kernel:
        ``kernel(firing_index, inputs) -> outputs`` where ``inputs`` maps
        input-port name to the list of consumed tokens and ``outputs``
        must map every output-port name to the list of produced tokens.
        ``None`` makes the actor purely structural (token values are
        opaque placeholders).
    cycles:
        Either an ``int`` (cycles per firing) or a callable
        ``cycles(firing_index, inputs) -> int`` for data-dependent time.
    params:
        Free-form parameter dictionary (model order, frame size, ...).
    """

    def __init__(
        self,
        name: str,
        kernel: Optional[Callable[[int, Dict[str, list]], Dict[str, list]]] = None,
        cycles: Union[int, Callable[..., int]] = 1,
        params: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not name:
            raise GraphError("actor name must be non-empty")
        self.name = name
        self.kernel = kernel
        self.cycles = cycles
        self.params: Dict[str, Any] = dict(params or {})
        self._ports: Dict[str, Port] = {}
        self.graph: Optional["DataflowGraph"] = None

    # -- port management -------------------------------------------------

    def add_port(self, port: Port) -> Port:
        """Attach ``port`` to this actor; returns the port for chaining."""
        if port.name in self._ports:
            raise GraphError(
                f"actor {self.name!r} already has a port {port.name!r}"
            )
        port.actor = self
        self._ports[port.name] = port
        return port

    def add_input(self, name: str, rate: Rate = 1, token_bytes: int = 4) -> Port:
        """Convenience: create and attach an input port."""
        return self.add_port(Port(name, Direction.INPUT, rate, token_bytes))

    def add_output(self, name: str, rate: Rate = 1, token_bytes: int = 4) -> Port:
        """Convenience: create and attach an output port."""
        return self.add_port(Port(name, Direction.OUTPUT, rate, token_bytes))

    def port(self, name: str) -> Port:
        try:
            return self._ports[name]
        except KeyError:
            raise GraphError(
                f"actor {self.name!r} has no port {name!r}; "
                f"known ports: {sorted(self._ports)}"
            ) from None

    @property
    def ports(self) -> Tuple[Port, ...]:
        return tuple(self._ports.values())

    @property
    def input_ports(self) -> Tuple[Port, ...]:
        return tuple(p for p in self._ports.values() if p.is_input)

    @property
    def output_ports(self) -> Tuple[Port, ...]:
        return tuple(p for p in self._ports.values() if p.is_output)

    @property
    def is_dynamic(self) -> bool:
        """True if any port of this actor has a dynamic rate."""
        return any(p.is_dynamic for p in self._ports.values())

    # -- execution helpers ------------------------------------------------

    def execution_cycles(self, firing_index: int, inputs: Optional[dict] = None) -> int:
        """Cycles charged for one firing (evaluates a callable model)."""
        if callable(self.cycles):
            value = self.cycles(firing_index, inputs or {})
        else:
            value = self.cycles
        if value < 0:
            raise GraphError(
                f"actor {self.name!r}: negative execution time {value}"
            )
        return int(value)

    def fire(self, firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        """Run the functional kernel for one firing.

        Structural actors (``kernel is None``) produce ``rate`` copies of
        ``None`` on each output port, which is sufficient for pure timing
        simulations.
        """
        if self.kernel is None:
            return {
                p.name: [None] * p.max_rate for p in self.output_ports
            }
        outputs = self.kernel(firing_index, inputs)
        missing = {p.name for p in self.output_ports} - set(outputs)
        if missing:
            raise GraphError(
                f"actor {self.name!r} kernel did not produce outputs for "
                f"ports {sorted(missing)}"
            )
        return outputs

    def __repr__(self) -> str:
        return f"Actor({self.name!r})"


class Edge:
    """A FIFO channel between an output port and an input port.

    ``delay`` is the number of initial tokens on the channel (unit-delay
    feedback edges are how SDF expresses iteration boundaries).
    """

    _ids = itertools.count()

    def __init__(
        self,
        source: Port,
        sink: Port,
        delay: int = 0,
        name: Optional[str] = None,
    ) -> None:
        if not source.is_output:
            raise GraphError(
                f"edge source {source.qualified_name} is not an output port"
            )
        if not sink.is_input:
            raise GraphError(
                f"edge sink {sink.qualified_name} is not an input port"
            )
        if delay < 0:
            raise GraphError("edge delay (initial tokens) must be >= 0")
        self.source = source
        self.sink = sink
        self.delay = delay
        self.edge_id = next(Edge._ids)
        self.name = name or (
            f"{source.qualified_name}->{sink.qualified_name}"
        )
        #: optional concrete values for the ``delay`` initial tokens; when
        #: None the functional simulator uses ``None`` placeholders
        self.initial_tokens: Optional[list] = None
        #: owning :class:`Connection` (every edge belongs to exactly one;
        #: a plain ``connect()`` wraps the edge in a degenerate FIFO
        #: connection) and this edge's position among its branches
        self.connection: Optional["Connection"] = None
        self.branch_index: int = 0
        #: scatter/gather chunk sizes: a scatter branch produces fewer
        #: tokens than its (shared) source port rate, a gather branch
        #: consumes fewer than its (shared) sink port rate
        self.prod_rate_override: Optional[int] = None
        self.cons_rate_override: Optional[int] = None

    @property
    def prod_rate(self) -> "Rate":
        """Tokens produced on this edge per source-actor firing."""
        if self.prod_rate_override is not None:
            return self.prod_rate_override
        return self.source.rate

    @property
    def cons_rate(self) -> "Rate":
        """Tokens consumed from this edge per sink-actor firing."""
        if self.cons_rate_override is not None:
            return self.cons_rate_override
        return self.sink.rate

    @property
    def max_prod_rate(self) -> int:
        if self.prod_rate_override is not None:
            return self.prod_rate_override
        return self.source.max_rate

    @property
    def max_cons_rate(self) -> int:
        if self.cons_rate_override is not None:
            return self.cons_rate_override
        return self.sink.max_rate

    def set_initial_tokens(self, values: list) -> None:
        """Provide concrete values for the initial (delay) tokens."""
        if len(values) != self.delay:
            raise GraphError(
                f"edge {self.name}: {len(values)} initial values for "
                f"delay {self.delay}"
            )
        self.initial_tokens = list(values)

    @property
    def src_actor(self) -> Actor:
        assert self.source.actor is not None
        return self.source.actor

    @property
    def snk_actor(self) -> Actor:
        assert self.sink.actor is not None
        return self.sink.actor

    @property
    def is_dynamic(self) -> bool:
        """True if either endpoint has a dynamic rate."""
        return self.source.is_dynamic or self.sink.is_dynamic

    @property
    def is_selfloop(self) -> bool:
        return self.src_actor is self.snk_actor

    @property
    def token_bytes(self) -> int:
        """Bytes per token travelling on this edge.

        The producer defines the token layout; a mismatch with the
        consumer's declared token size is rejected at graph validation.
        """
        return self.source.token_bytes

    def __repr__(self) -> str:
        return (
            f"Edge({self.src_actor.name}.{self.source.name} -> "
            f"{self.snk_actor.name}.{self.sink.name}, delay={self.delay})"
        )


def _elementwise_add(branches: List[list]) -> list:
    """Default reduce combine: position-wise sum, tolerating ``None``.

    Structural actors circulate ``None`` placeholder tokens; a reduce
    over placeholders must stay a placeholder rather than crash.
    """
    out = []
    for values in zip(*branches):
        concrete = [v for v in values if v is not None]
        if not concrete:
            out.append(None)
            continue
        acc = concrete[0]
        for value in concrete[1:]:
            acc = acc + value
        out.append(acc)
    return out


class Connection:
    """A (hyper)edge owning one member :class:`Edge` per branch.

    Kinds
    -----
    ``fifo``
        The degenerate point-to-point case: exactly one branch.  Every
        :meth:`DataflowGraph.connect` edge is wrapped in one.
    ``broadcast``
        One producer port, k consumer ports; every consumer receives a
        full copy of the produced tokens (branch rates are the natural
        port rates; only the wire lowering is shared).
    ``scatter``
        One producer port, k consumer ports; the produced tokens are
        split into per-branch ``chunks`` (default: even split) in branch
        order, so branch i carries ``chunks[i]`` tokens per firing
        (``Edge.prod_rate_override``).
    ``gather``
        k producer ports, one consumer port; the consumer pops
        ``chunks[i]`` tokens from branch i per firing (default: even
        split; ``Edge.cons_rate_override``) and sees the concatenation
        in branch order.
    ``reduce``
        k producer ports, one consumer port; every branch carries the
        full consumer rate and the consumer sees the element-wise
        combination (``combine``, default: position-wise ``+``).

    A connection is *collective* only when it is non-FIFO **and** has
    more than one branch — a 1-consumer broadcast or 1-producer gather
    is bit-identical to a plain FIFO edge by construction.
    """

    FIFO = "fifo"
    BROADCAST = "broadcast"
    SCATTER = "scatter"
    GATHER = "gather"
    REDUCE = "reduce"
    KINDS = (FIFO, BROADCAST, SCATTER, GATHER, REDUCE)

    _ids = itertools.count()

    def __init__(
        self,
        kind: str,
        edges: List[Edge],
        name: Optional[str] = None,
        chunks: Optional[List[int]] = None,
        combine: Optional[Callable[[List[list]], list]] = None,
    ) -> None:
        if kind not in self.KINDS:
            raise GraphError(
                f"unknown connection kind {kind!r}; known: {self.KINDS}"
            )
        if not edges:
            raise GraphError("a connection needs at least one member edge")
        if kind == self.FIFO and len(edges) != 1:
            raise GraphError("a FIFO connection has exactly one branch")
        self.kind = kind
        self.edges: Tuple[Edge, ...] = tuple(edges)
        self.connection_id = next(Connection._ids)
        self.name = name or f"{kind}_{self.connection_id}"
        self.chunks: Optional[Tuple[int, ...]] = (
            tuple(chunks) if chunks is not None else None
        )
        self.combine = combine
        for index, edge in enumerate(self.edges):
            edge.connection = self
            edge.branch_index = index
        if self.chunks is not None:
            if len(self.chunks) != len(self.edges):
                raise GraphError(
                    f"connection {self.name}: {len(self.chunks)} chunks "
                    f"for {len(self.edges)} branches"
                )
            if any(c <= 0 for c in self.chunks):
                raise GraphError(
                    f"connection {self.name}: chunk sizes must be positive"
                )
            if kind == self.SCATTER:
                for edge, chunk in zip(self.edges, self.chunks):
                    edge.prod_rate_override = chunk
            elif kind == self.GATHER:
                for edge, chunk in zip(self.edges, self.chunks):
                    edge.cons_rate_override = chunk
            else:
                raise GraphError(
                    f"connection {self.name}: chunks only apply to "
                    f"scatter/gather, not {kind!r}"
                )

    @property
    def is_collective(self) -> bool:
        """Non-FIFO with more than one branch (degenerates stay FIFO-like)."""
        return self.kind != self.FIFO and len(self.edges) > 1

    @property
    def fan_out(self) -> int:
        return len(self.edges)

    @property
    def source_ports(self) -> Tuple[Port, ...]:
        seen: Dict[int, Port] = {}
        for edge in self.edges:
            seen.setdefault(id(edge.source), edge.source)
        return tuple(seen.values())

    @property
    def sink_ports(self) -> Tuple[Port, ...]:
        seen: Dict[int, Port] = {}
        for edge in self.edges:
            seen.setdefault(id(edge.sink), edge.sink)
        return tuple(seen.values())

    def branch_span(self, branch_index: int) -> Tuple[int, int]:
        """(start, stop) slice of the produced tokens for a scatter branch."""
        if self.kind != self.SCATTER:
            raise GraphError(
                f"connection {self.name}: branch_span only applies to scatter"
            )
        chunks = self.chunks or tuple(
            e.prod_rate_override or 0 for e in self.edges
        )
        start = sum(chunks[:branch_index])
        return start, start + chunks[branch_index]

    def produced_tokens(self, edge: Edge, tokens: list) -> list:
        """The portion of one firing's output carried by member ``edge``."""
        if self.kind == self.SCATTER:
            start, stop = self.branch_span(edge.branch_index)
            return list(tokens[start:stop])
        return list(tokens)

    def assemble(self, branch_values: List[list]) -> list:
        """Combine per-branch consumed tokens (branch order) for the sink.

        ``gather`` concatenates, ``reduce`` applies ``combine``; a single
        branch passes through unchanged for every other kind.
        """
        if self.kind == self.GATHER:
            out: list = []
            for values in branch_values:
                out.extend(values)
            return out
        if self.kind == self.REDUCE:
            combine = self.combine or _elementwise_add
            return list(combine(branch_values))
        if len(branch_values) != 1:
            raise GraphError(
                f"connection {self.name} ({self.kind}): cannot assemble "
                f"{len(branch_values)} branches at one sink port"
            )
        return list(branch_values[0])

    def __repr__(self) -> str:
        return (
            f"Connection({self.name!r}, kind={self.kind}, "
            f"branches={len(self.edges)})"
        )


class DataflowGraph:
    """A coarse-grain dataflow graph (SDF or bounded-dynamic).

    The graph owns its actors and edges.  Ports may be left unconnected
    only if they are declared as *interface* ports via
    :meth:`mark_interface`; :meth:`validate` enforces this.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._actors: Dict[str, Actor] = {}
        self._edges: List[Edge] = []
        self._connections: List[Connection] = []
        self._interface_ports: set = set()

    # -- construction -----------------------------------------------------

    def add_actor(self, actor: Actor) -> Actor:
        if actor.name in self._actors:
            raise GraphError(f"duplicate actor name {actor.name!r}")
        actor.graph = self
        self._actors[actor.name] = actor
        return actor

    def actor(
        self,
        name: str,
        kernel: Optional[Callable] = None,
        cycles: Union[int, Callable[..., int]] = 1,
        params: Optional[Dict[str, Any]] = None,
    ) -> Actor:
        """Create, register and return a new actor."""
        return self.add_actor(Actor(name, kernel=kernel, cycles=cycles, params=params))

    def connect(
        self,
        source: Union[Port, Tuple[Actor, str]],
        sink: Union[Port, Tuple[Actor, str]],
        delay: int = 0,
        name: Optional[str] = None,
    ) -> Edge:
        """Create an edge between two ports (or ``(actor, port_name)`` pairs)."""
        src = source if isinstance(source, Port) else source[0].port(source[1])
        snk = sink if isinstance(sink, Port) else sink[0].port(sink[1])
        for port in (src, snk):
            if port.actor is None or port.actor.name not in self._actors:
                raise GraphError(
                    f"port {port.qualified_name} does not belong to this graph"
                )
        if any(e.source is src for e in self._edges):
            raise GraphError(
                f"output port {src.qualified_name} is already connected"
            )
        if any(e.sink is snk for e in self._edges):
            raise GraphError(
                f"input port {snk.qualified_name} is already connected"
            )
        edge = Edge(src, snk, delay=delay, name=name)
        self._edges.append(edge)
        self._connections.append(
            Connection(Connection.FIFO, [edge], name=edge.name)
        )
        return edge

    # -- collective construction ------------------------------------------

    def _resolve_port(
        self, ref: Union[Port, Tuple[Actor, str], str]
    ) -> Port:
        if isinstance(ref, Port):
            port = ref
        elif isinstance(ref, str):
            actor_name, _, port_name = ref.rpartition(".")
            if not actor_name or actor_name not in self._actors:
                raise GraphError(
                    f"port reference {ref!r} must be 'actor.port' with an "
                    f"actor of this graph"
                )
            port = self._actors[actor_name].port(port_name)
        else:
            port = ref[0].port(ref[1])
        if port.actor is None or port.actor.name not in self._actors:
            raise GraphError(
                f"port {port.qualified_name} does not belong to this graph"
            )
        return port

    def _require_free_collective_port(self, port: Port) -> None:
        """A port joins at most one connection (checked across all edges)."""
        for edge in self._edges:
            if edge.source is port or edge.sink is port:
                raise GraphError(
                    f"port {port.qualified_name} is already connected "
                    f"(a port belongs to at most one connection)"
                )

    def _add_collective(
        self,
        kind: str,
        sources: List[Port],
        sinks: List[Port],
        delays: Optional[List[int]],
        name: Optional[str],
        chunks: Optional[List[int]] = None,
        combine: Optional[Callable[[List[list]], list]] = None,
    ) -> Connection:
        branches = max(len(sources), len(sinks))
        if branches < 1:
            raise GraphError(f"{kind} connection needs at least one branch")
        # Orientation follows the kind, not the branch count — a
        # single-branch gather still fans *in* (its shared port is the
        # sink, and the chunk belongs to the one producer).
        fan_in = kind in (Connection.GATHER, Connection.REDUCE)
        pairs = (
            [(src, sinks[0]) for src in sources]
            if fan_in
            else [(sources[0], snk) for snk in sinks]
        )
        for port in {id(p): p for p in sources + sinks}.values():
            if port.is_dynamic:
                raise GraphError(
                    f"{kind} connection: port {port.qualified_name} has a "
                    f"dynamic rate; collective connections require static "
                    f"rates (route dynamic traffic over FIFO connections)"
                )
            self._require_free_collective_port(port)
        shared = sinks[0] if fan_in else sources[0]
        fanned = sources if fan_in else sinks
        if len({id(p) for p in fanned}) != len(fanned):
            raise GraphError(
                f"{kind} connection {name or ''}: duplicate branch port"
            )
        if chunks is None and kind in (Connection.SCATTER, Connection.GATHER):
            rate = shared.rate
            if rate % branches:
                raise GraphError(
                    f"{kind} connection: rate {rate} of "
                    f"{shared.qualified_name} does not split evenly over "
                    f"{branches} branches; pass explicit chunks"
                )
            chunks = [rate // branches] * branches
        if chunks is not None and sum(chunks) != shared.rate:
            raise GraphError(
                f"{kind} connection: chunks {list(chunks)} sum to "
                f"{sum(chunks)}, expected the rate {shared.rate} of "
                f"{shared.qualified_name}"
            )
        if delays is None:
            delays = [0] * branches
        if len(delays) != branches:
            raise GraphError(
                f"{kind} connection: {len(delays)} delays for "
                f"{branches} branches"
            )
        edges = [
            Edge(
                src,
                snk,
                delay=delay,
                name=f"{name}[{index}]" if name else None,
            )
            for index, ((src, snk), delay) in enumerate(zip(pairs, delays))
        ]
        connection = Connection(
            kind, edges, name=name, chunks=chunks, combine=combine
        )
        self._edges.extend(edges)
        self._connections.append(connection)
        return connection

    def add_broadcast(
        self,
        source: Union[Port, Tuple[Actor, str]],
        sinks: List[Union[Port, Tuple[Actor, str]]],
        delays: Optional[List[int]] = None,
        name: Optional[str] = None,
    ) -> Connection:
        """One producer port fanned out to every sink as a full copy."""
        src = self._resolve_port(source)
        snks = [self._resolve_port(s) for s in sinks]
        return self._add_collective(
            Connection.BROADCAST, [src], snks, delays, name
        )

    def add_scatter(
        self,
        source: Union[Port, Tuple[Actor, str]],
        sinks: List[Union[Port, Tuple[Actor, str]]],
        chunks: Optional[List[int]] = None,
        delays: Optional[List[int]] = None,
        name: Optional[str] = None,
    ) -> Connection:
        """One producer port split into per-branch chunks (branch order)."""
        src = self._resolve_port(source)
        snks = [self._resolve_port(s) for s in sinks]
        return self._add_collective(
            Connection.SCATTER, [src], snks, delays, name, chunks=chunks
        )

    def add_gather(
        self,
        sources: List[Union[Port, Tuple[Actor, str]]],
        sink: Union[Port, Tuple[Actor, str]],
        chunks: Optional[List[int]] = None,
        delays: Optional[List[int]] = None,
        name: Optional[str] = None,
    ) -> Connection:
        """k producer ports concatenated (branch order) into one sink."""
        srcs = [self._resolve_port(s) for s in sources]
        snk = self._resolve_port(sink)
        return self._add_collective(
            Connection.GATHER, srcs, [snk], delays, name, chunks=chunks
        )

    def add_reduce(
        self,
        sources: List[Union[Port, Tuple[Actor, str]]],
        sink: Union[Port, Tuple[Actor, str]],
        combine: Optional[Callable[[List[list]], list]] = None,
        delays: Optional[List[int]] = None,
        name: Optional[str] = None,
    ) -> Connection:
        """k producer ports combined element-wise into one sink port."""
        srcs = [self._resolve_port(s) for s in sources]
        snk = self._resolve_port(sink)
        return self._add_collective(
            Connection.REDUCE, srcs, [snk], delays, name, combine=combine
        )

    def mark_interface(self, port: Port) -> None:
        """Declare ``port`` as an external interface (may stay unconnected)."""
        self._interface_ports.add(id(port))

    def is_interface_port(self, port: Port) -> bool:
        """True when ``port`` was declared an external interface."""
        return id(port) in self._interface_ports

    # -- accessors ---------------------------------------------------------

    @property
    def actors(self) -> Tuple[Actor, ...]:
        return tuple(self._actors.values())

    @property
    def edges(self) -> Tuple[Edge, ...]:
        return tuple(self._edges)

    @property
    def connections(self) -> Tuple[Connection, ...]:
        return tuple(self._connections)

    @property
    def collective_connections(self) -> Tuple[Connection, ...]:
        """Connections with true fan-out/fan-in (degenerates excluded)."""
        return tuple(c for c in self._connections if c.is_collective)

    @property
    def has_collectives(self) -> bool:
        return any(c.is_collective for c in self._connections)

    def get_actor(self, name: str) -> Actor:
        try:
            return self._actors[name]
        except KeyError:
            raise GraphError(
                f"graph {self.name!r} has no actor {name!r}; "
                f"known actors: {sorted(self._actors)}"
            ) from None

    def edge_between(self, src_name: str, snk_name: str) -> Edge:
        """First edge from actor ``src_name`` to actor ``snk_name``."""
        for edge in self._edges:
            if edge.src_actor.name == src_name and edge.snk_actor.name == snk_name:
                return edge
        raise GraphError(f"no edge {src_name} -> {snk_name}")

    def in_edges(self, actor: Actor) -> List[Edge]:
        return [e for e in self._edges if e.snk_actor is actor]

    def out_edges(self, actor: Actor) -> List[Edge]:
        return [e for e in self._edges if e.src_actor is actor]

    def successors(self, actor: Actor) -> List[Actor]:
        seen: Dict[str, Actor] = {}
        for edge in self.out_edges(actor):
            seen.setdefault(edge.snk_actor.name, edge.snk_actor)
        return list(seen.values())

    def predecessors(self, actor: Actor) -> List[Actor]:
        seen: Dict[str, Actor] = {}
        for edge in self.in_edges(actor):
            seen.setdefault(edge.src_actor.name, edge.src_actor)
        return list(seen.values())

    @property
    def is_dynamic(self) -> bool:
        """True if any edge in the graph carries a dynamic rate."""
        return any(e.is_dynamic for e in self._edges)

    @property
    def dynamic_edges(self) -> List[Edge]:
        return [e for e in self._edges if e.is_dynamic]

    @property
    def static_edges(self) -> List[Edge]:
        return [e for e in self._edges if not e.is_dynamic]

    # -- validation & structure -------------------------------------------

    def validate(self) -> None:
        """Check structural sanity; raises :class:`GraphError` on failure."""
        connected = set()
        for edge in self._edges:
            connected.add(id(edge.source))
            connected.add(id(edge.sink))
            if edge.source.token_bytes != edge.sink.token_bytes:
                raise GraphError(
                    f"edge {edge.name}: producer token size "
                    f"{edge.source.token_bytes}B != consumer token size "
                    f"{edge.sink.token_bytes}B"
                )
        for connection in self._connections:
            if connection.kind == Connection.SCATTER:
                total = sum(e.prod_rate for e in connection.edges)
                rate = connection.edges[0].source.rate
                if total != rate:
                    raise GraphError(
                        f"scatter {connection.name}: branch chunks sum to "
                        f"{total}, source rate is {rate}"
                    )
            elif connection.kind == Connection.GATHER:
                total = sum(e.cons_rate for e in connection.edges)
                rate = connection.edges[0].sink.rate
                if total != rate:
                    raise GraphError(
                        f"gather {connection.name}: branch chunks sum to "
                        f"{total}, sink rate is {rate}"
                    )
            if connection.kind != Connection.FIFO and any(
                e.is_dynamic for e in connection.edges
            ):
                raise GraphError(
                    f"{connection.kind} connection {connection.name} has a "
                    f"dynamic-rate branch; collectives must be static"
                )
        for actor in self._actors.values():
            for port in actor.ports:
                if id(port) in connected or id(port) in self._interface_ports:
                    continue
                raise GraphError(
                    f"port {port.qualified_name} is unconnected and not an "
                    f"interface port"
                )

    def is_connected(self) -> bool:
        """True if the undirected version of the graph is connected."""
        if not self._actors:
            return True
        adjacency: Dict[str, set] = {name: set() for name in self._actors}
        for edge in self._edges:
            adjacency[edge.src_actor.name].add(edge.snk_actor.name)
            adjacency[edge.snk_actor.name].add(edge.src_actor.name)
        start = next(iter(self._actors))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in adjacency[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return len(seen) == len(self._actors)

    def topological_order(self, ignore_delay_edges: bool = True) -> List[Actor]:
        """Topological order of actors.

        Edges carrying at least one initial delay token are ignored by
        default (they are the iteration-feedback edges); this makes
        well-formed SDF graphs acyclic for ordering purposes.  Raises
        :class:`GraphError` if a zero-delay cycle exists.
        """
        indegree: Dict[str, int] = {name: 0 for name in self._actors}
        out: Dict[str, List[str]] = {name: [] for name in self._actors}
        for edge in self._edges:
            if ignore_delay_edges and edge.delay > 0:
                continue
            if edge.is_selfloop:
                raise GraphError(
                    f"zero-delay self-loop on actor {edge.src_actor.name!r} "
                    f"can never fire"
                )
            indegree[edge.snk_actor.name] += 1
            out[edge.src_actor.name].append(edge.snk_actor.name)
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        order: List[Actor] = []
        while ready:
            name = ready.pop(0)
            order.append(self._actors[name])
            for nxt in out[name]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
            ready.sort()
        if len(order) != len(self._actors):
            raise GraphError(
                f"graph {self.name!r} has a zero-delay cycle (deadlock)"
            )
        return order

    def copy_structure(self, name: Optional[str] = None) -> "DataflowGraph":
        """Deep-copy actors/ports/edges (kernels and params shared by reference)."""
        clone = DataflowGraph(name or f"{self.name}_copy")
        for actor in self._actors.values():
            new_actor = clone.actor(
                actor.name, kernel=actor.kernel, cycles=actor.cycles,
                params=dict(actor.params),
            )
            for port in actor.ports:
                new_actor.add_port(
                    Port(port.name, port.direction, port.rate, port.token_bytes)
                )
        edge_map: Dict[int, Edge] = {}
        for edge in self._edges:
            src = clone.get_actor(edge.src_actor.name).port(edge.source.name)
            snk = clone.get_actor(edge.snk_actor.name).port(edge.sink.name)
            new_edge = Edge(src, snk, delay=edge.delay, name=edge.name)
            clone._edges.append(new_edge)
            edge_map[id(edge)] = new_edge
            if edge.initial_tokens is not None:
                new_edge.set_initial_tokens(edge.initial_tokens)
        for connection in self._connections:
            members = [edge_map[id(e)] for e in connection.edges]
            clone._connections.append(
                Connection(
                    connection.kind,
                    members,
                    name=connection.name,
                    chunks=connection.chunks,
                    combine=connection.combine,
                )
            )
        for actor in self._actors.values():
            for port in actor.ports:
                if id(port) in self._interface_ports:
                    clone.mark_interface(clone.get_actor(actor.name).port(port.name))
        return clone

    # -- export -------------------------------------------------------------

    def to_dot(self) -> str:
        """Graphviz dot rendering (rates and delays annotated)."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for actor in self._actors.values():
            shape = "box" if not actor.is_dynamic else "octagon"
            lines.append(f'  "{actor.name}" [shape={shape}];')
        for edge in self._edges:
            label = f"{edge.prod_rate!r}->{edge.cons_rate!r}"
            if edge.connection is not None and edge.connection.is_collective:
                label = f"{edge.connection.kind}[{edge.branch_index}] {label}"
            if edge.delay:
                label += f" d={edge.delay}"
            lines.append(
                f'  "{edge.src_actor.name}" -> "{edge.snk_actor.name}" '
                f'[label="{label}"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __iter__(self) -> Iterator[Actor]:
        return iter(self._actors.values())

    def __len__(self) -> int:
        return len(self._actors)

    def __repr__(self) -> str:
        return (
            f"DataflowGraph({self.name!r}, actors={len(self._actors)}, "
            f"edges={len(self._edges)})"
        )
