"""Coarse-grain dataflow graph data structures.

This module provides the basic vocabulary used throughout the SPI
reproduction: actors with rate-annotated ports, edges with initial delays
(tokens), and the :class:`DataflowGraph` container that the SDF analyses,
the VTS conversion, the multiprocessor mapping and the SPI library all
operate on.

The model follows the conventions of Lee/Messerschmitt SDF and of Sriram &
Bhattacharyya's *Embedded Multiprocessors* book, which the paper builds on:

* an **actor** is a coarse-grain functional block that *fires* atomically,
  consuming a fixed number of tokens from each input port and producing a
  fixed number of tokens on each output port;
* an **edge** is a conceptually unbounded FIFO connecting one output port
  to one input port, optionally carrying ``delay`` initial tokens;
* a **port rate** is an integer for static (SDF) ports, or a
  :class:`~repro.dataflow.dynamic.DynamicRate` bound for dynamic ports
  (see :mod:`repro.dataflow.dynamic`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.dataflow.dynamic import DynamicRate

__all__ = [
    "Direction",
    "Port",
    "Actor",
    "Edge",
    "DataflowGraph",
    "GraphError",
]


class GraphError(ValueError):
    """Raised on structurally invalid graph construction or queries."""


class Direction:
    """Port direction constants (plain strings keep reprs readable)."""

    INPUT = "input"
    OUTPUT = "output"


Rate = Union[int, DynamicRate]


@dataclass
class Port:
    """A rate-annotated connection point on an actor.

    Parameters
    ----------
    name:
        Port name, unique within its actor.
    direction:
        ``Direction.INPUT`` or ``Direction.OUTPUT``.
    rate:
        Tokens consumed/produced per firing.  An ``int`` for SDF ports, a
        :class:`DynamicRate` for dynamic ports that will be subjected to
        VTS conversion.
    token_bytes:
        Size in bytes of one *raw* (unpacked) token flowing through this
        port.  Used by the VTS bound computation (paper eq. 1) and by the
        platform's communication-cost model.
    """

    name: str
    direction: str
    rate: Rate = 1
    token_bytes: int = 4
    actor: Optional["Actor"] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.direction not in (Direction.INPUT, Direction.OUTPUT):
            raise GraphError(f"invalid port direction {self.direction!r}")
        if isinstance(self.rate, bool) or (
            isinstance(self.rate, int) and self.rate <= 0
        ):
            raise GraphError(
                f"port {self.name!r}: static rate must be a positive int, "
                f"got {self.rate!r}"
            )
        if not isinstance(self.rate, (int, DynamicRate)):
            raise GraphError(
                f"port {self.name!r}: rate must be int or DynamicRate, "
                f"got {type(self.rate).__name__}"
            )
        if self.token_bytes <= 0:
            raise GraphError(
                f"port {self.name!r}: token_bytes must be positive"
            )

    @property
    def is_dynamic(self) -> bool:
        """True when this port has a run-time varying rate."""
        return isinstance(self.rate, DynamicRate)

    @property
    def is_input(self) -> bool:
        return self.direction == Direction.INPUT

    @property
    def is_output(self) -> bool:
        return self.direction == Direction.OUTPUT

    @property
    def max_rate(self) -> int:
        """Upper bound on the port rate (the rate itself for SDF ports)."""
        if isinstance(self.rate, DynamicRate):
            return self.rate.bound
        return self.rate

    @property
    def qualified_name(self) -> str:
        owner = self.actor.name if self.actor is not None else "<detached>"
        return f"{owner}.{self.name}"


class Actor:
    """A coarse-grain dataflow actor.

    An actor owns a set of named ports, an optional functional *kernel*
    (used by the token-level simulator to compute real output values) and
    a *cycle model* (used by the platform simulator to charge execution
    time).

    Parameters
    ----------
    name:
        Unique actor name within its graph.
    kernel:
        ``kernel(firing_index, inputs) -> outputs`` where ``inputs`` maps
        input-port name to the list of consumed tokens and ``outputs``
        must map every output-port name to the list of produced tokens.
        ``None`` makes the actor purely structural (token values are
        opaque placeholders).
    cycles:
        Either an ``int`` (cycles per firing) or a callable
        ``cycles(firing_index, inputs) -> int`` for data-dependent time.
    params:
        Free-form parameter dictionary (model order, frame size, ...).
    """

    def __init__(
        self,
        name: str,
        kernel: Optional[Callable[[int, Dict[str, list]], Dict[str, list]]] = None,
        cycles: Union[int, Callable[..., int]] = 1,
        params: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not name:
            raise GraphError("actor name must be non-empty")
        self.name = name
        self.kernel = kernel
        self.cycles = cycles
        self.params: Dict[str, Any] = dict(params or {})
        self._ports: Dict[str, Port] = {}
        self.graph: Optional["DataflowGraph"] = None

    # -- port management -------------------------------------------------

    def add_port(self, port: Port) -> Port:
        """Attach ``port`` to this actor; returns the port for chaining."""
        if port.name in self._ports:
            raise GraphError(
                f"actor {self.name!r} already has a port {port.name!r}"
            )
        port.actor = self
        self._ports[port.name] = port
        return port

    def add_input(self, name: str, rate: Rate = 1, token_bytes: int = 4) -> Port:
        """Convenience: create and attach an input port."""
        return self.add_port(Port(name, Direction.INPUT, rate, token_bytes))

    def add_output(self, name: str, rate: Rate = 1, token_bytes: int = 4) -> Port:
        """Convenience: create and attach an output port."""
        return self.add_port(Port(name, Direction.OUTPUT, rate, token_bytes))

    def port(self, name: str) -> Port:
        try:
            return self._ports[name]
        except KeyError:
            raise GraphError(
                f"actor {self.name!r} has no port {name!r}; "
                f"known ports: {sorted(self._ports)}"
            ) from None

    @property
    def ports(self) -> Tuple[Port, ...]:
        return tuple(self._ports.values())

    @property
    def input_ports(self) -> Tuple[Port, ...]:
        return tuple(p for p in self._ports.values() if p.is_input)

    @property
    def output_ports(self) -> Tuple[Port, ...]:
        return tuple(p for p in self._ports.values() if p.is_output)

    @property
    def is_dynamic(self) -> bool:
        """True if any port of this actor has a dynamic rate."""
        return any(p.is_dynamic for p in self._ports.values())

    # -- execution helpers ------------------------------------------------

    def execution_cycles(self, firing_index: int, inputs: Optional[dict] = None) -> int:
        """Cycles charged for one firing (evaluates a callable model)."""
        if callable(self.cycles):
            value = self.cycles(firing_index, inputs or {})
        else:
            value = self.cycles
        if value < 0:
            raise GraphError(
                f"actor {self.name!r}: negative execution time {value}"
            )
        return int(value)

    def fire(self, firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        """Run the functional kernel for one firing.

        Structural actors (``kernel is None``) produce ``rate`` copies of
        ``None`` on each output port, which is sufficient for pure timing
        simulations.
        """
        if self.kernel is None:
            return {
                p.name: [None] * p.max_rate for p in self.output_ports
            }
        outputs = self.kernel(firing_index, inputs)
        missing = {p.name for p in self.output_ports} - set(outputs)
        if missing:
            raise GraphError(
                f"actor {self.name!r} kernel did not produce outputs for "
                f"ports {sorted(missing)}"
            )
        return outputs

    def __repr__(self) -> str:
        return f"Actor({self.name!r})"


class Edge:
    """A FIFO channel between an output port and an input port.

    ``delay`` is the number of initial tokens on the channel (unit-delay
    feedback edges are how SDF expresses iteration boundaries).
    """

    _ids = itertools.count()

    def __init__(
        self,
        source: Port,
        sink: Port,
        delay: int = 0,
        name: Optional[str] = None,
    ) -> None:
        if not source.is_output:
            raise GraphError(
                f"edge source {source.qualified_name} is not an output port"
            )
        if not sink.is_input:
            raise GraphError(
                f"edge sink {sink.qualified_name} is not an input port"
            )
        if delay < 0:
            raise GraphError("edge delay (initial tokens) must be >= 0")
        self.source = source
        self.sink = sink
        self.delay = delay
        self.edge_id = next(Edge._ids)
        self.name = name or (
            f"{source.qualified_name}->{sink.qualified_name}"
        )
        #: optional concrete values for the ``delay`` initial tokens; when
        #: None the functional simulator uses ``None`` placeholders
        self.initial_tokens: Optional[list] = None

    def set_initial_tokens(self, values: list) -> None:
        """Provide concrete values for the initial (delay) tokens."""
        if len(values) != self.delay:
            raise GraphError(
                f"edge {self.name}: {len(values)} initial values for "
                f"delay {self.delay}"
            )
        self.initial_tokens = list(values)

    @property
    def src_actor(self) -> Actor:
        assert self.source.actor is not None
        return self.source.actor

    @property
    def snk_actor(self) -> Actor:
        assert self.sink.actor is not None
        return self.sink.actor

    @property
    def is_dynamic(self) -> bool:
        """True if either endpoint has a dynamic rate."""
        return self.source.is_dynamic or self.sink.is_dynamic

    @property
    def is_selfloop(self) -> bool:
        return self.src_actor is self.snk_actor

    @property
    def token_bytes(self) -> int:
        """Bytes per token travelling on this edge.

        The producer defines the token layout; a mismatch with the
        consumer's declared token size is rejected at graph validation.
        """
        return self.source.token_bytes

    def __repr__(self) -> str:
        return (
            f"Edge({self.src_actor.name}.{self.source.name} -> "
            f"{self.snk_actor.name}.{self.sink.name}, delay={self.delay})"
        )


class DataflowGraph:
    """A coarse-grain dataflow graph (SDF or bounded-dynamic).

    The graph owns its actors and edges.  Ports may be left unconnected
    only if they are declared as *interface* ports via
    :meth:`mark_interface`; :meth:`validate` enforces this.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._actors: Dict[str, Actor] = {}
        self._edges: List[Edge] = []
        self._interface_ports: set = set()

    # -- construction -----------------------------------------------------

    def add_actor(self, actor: Actor) -> Actor:
        if actor.name in self._actors:
            raise GraphError(f"duplicate actor name {actor.name!r}")
        actor.graph = self
        self._actors[actor.name] = actor
        return actor

    def actor(
        self,
        name: str,
        kernel: Optional[Callable] = None,
        cycles: Union[int, Callable[..., int]] = 1,
        params: Optional[Dict[str, Any]] = None,
    ) -> Actor:
        """Create, register and return a new actor."""
        return self.add_actor(Actor(name, kernel=kernel, cycles=cycles, params=params))

    def connect(
        self,
        source: Union[Port, Tuple[Actor, str]],
        sink: Union[Port, Tuple[Actor, str]],
        delay: int = 0,
        name: Optional[str] = None,
    ) -> Edge:
        """Create an edge between two ports (or ``(actor, port_name)`` pairs)."""
        src = source if isinstance(source, Port) else source[0].port(source[1])
        snk = sink if isinstance(sink, Port) else sink[0].port(sink[1])
        for port in (src, snk):
            if port.actor is None or port.actor.name not in self._actors:
                raise GraphError(
                    f"port {port.qualified_name} does not belong to this graph"
                )
        if any(e.source is src for e in self._edges):
            raise GraphError(
                f"output port {src.qualified_name} is already connected"
            )
        if any(e.sink is snk for e in self._edges):
            raise GraphError(
                f"input port {snk.qualified_name} is already connected"
            )
        edge = Edge(src, snk, delay=delay, name=name)
        self._edges.append(edge)
        return edge

    def mark_interface(self, port: Port) -> None:
        """Declare ``port`` as an external interface (may stay unconnected)."""
        self._interface_ports.add(id(port))

    def is_interface_port(self, port: Port) -> bool:
        """True when ``port`` was declared an external interface."""
        return id(port) in self._interface_ports

    # -- accessors ---------------------------------------------------------

    @property
    def actors(self) -> Tuple[Actor, ...]:
        return tuple(self._actors.values())

    @property
    def edges(self) -> Tuple[Edge, ...]:
        return tuple(self._edges)

    def get_actor(self, name: str) -> Actor:
        try:
            return self._actors[name]
        except KeyError:
            raise GraphError(
                f"graph {self.name!r} has no actor {name!r}; "
                f"known actors: {sorted(self._actors)}"
            ) from None

    def edge_between(self, src_name: str, snk_name: str) -> Edge:
        """First edge from actor ``src_name`` to actor ``snk_name``."""
        for edge in self._edges:
            if edge.src_actor.name == src_name and edge.snk_actor.name == snk_name:
                return edge
        raise GraphError(f"no edge {src_name} -> {snk_name}")

    def in_edges(self, actor: Actor) -> List[Edge]:
        return [e for e in self._edges if e.snk_actor is actor]

    def out_edges(self, actor: Actor) -> List[Edge]:
        return [e for e in self._edges if e.src_actor is actor]

    def successors(self, actor: Actor) -> List[Actor]:
        seen: Dict[str, Actor] = {}
        for edge in self.out_edges(actor):
            seen.setdefault(edge.snk_actor.name, edge.snk_actor)
        return list(seen.values())

    def predecessors(self, actor: Actor) -> List[Actor]:
        seen: Dict[str, Actor] = {}
        for edge in self.in_edges(actor):
            seen.setdefault(edge.src_actor.name, edge.src_actor)
        return list(seen.values())

    @property
    def is_dynamic(self) -> bool:
        """True if any edge in the graph carries a dynamic rate."""
        return any(e.is_dynamic for e in self._edges)

    @property
    def dynamic_edges(self) -> List[Edge]:
        return [e for e in self._edges if e.is_dynamic]

    @property
    def static_edges(self) -> List[Edge]:
        return [e for e in self._edges if not e.is_dynamic]

    # -- validation & structure -------------------------------------------

    def validate(self) -> None:
        """Check structural sanity; raises :class:`GraphError` on failure."""
        connected = set()
        for edge in self._edges:
            connected.add(id(edge.source))
            connected.add(id(edge.sink))
            if edge.source.token_bytes != edge.sink.token_bytes:
                raise GraphError(
                    f"edge {edge.name}: producer token size "
                    f"{edge.source.token_bytes}B != consumer token size "
                    f"{edge.sink.token_bytes}B"
                )
        for actor in self._actors.values():
            for port in actor.ports:
                if id(port) in connected or id(port) in self._interface_ports:
                    continue
                raise GraphError(
                    f"port {port.qualified_name} is unconnected and not an "
                    f"interface port"
                )

    def is_connected(self) -> bool:
        """True if the undirected version of the graph is connected."""
        if not self._actors:
            return True
        adjacency: Dict[str, set] = {name: set() for name in self._actors}
        for edge in self._edges:
            adjacency[edge.src_actor.name].add(edge.snk_actor.name)
            adjacency[edge.snk_actor.name].add(edge.src_actor.name)
        start = next(iter(self._actors))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in adjacency[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return len(seen) == len(self._actors)

    def topological_order(self, ignore_delay_edges: bool = True) -> List[Actor]:
        """Topological order of actors.

        Edges carrying at least one initial delay token are ignored by
        default (they are the iteration-feedback edges); this makes
        well-formed SDF graphs acyclic for ordering purposes.  Raises
        :class:`GraphError` if a zero-delay cycle exists.
        """
        indegree: Dict[str, int] = {name: 0 for name in self._actors}
        out: Dict[str, List[str]] = {name: [] for name in self._actors}
        for edge in self._edges:
            if ignore_delay_edges and edge.delay > 0:
                continue
            if edge.is_selfloop:
                raise GraphError(
                    f"zero-delay self-loop on actor {edge.src_actor.name!r} "
                    f"can never fire"
                )
            indegree[edge.snk_actor.name] += 1
            out[edge.src_actor.name].append(edge.snk_actor.name)
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        order: List[Actor] = []
        while ready:
            name = ready.pop(0)
            order.append(self._actors[name])
            for nxt in out[name]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
            ready.sort()
        if len(order) != len(self._actors):
            raise GraphError(
                f"graph {self.name!r} has a zero-delay cycle (deadlock)"
            )
        return order

    def copy_structure(self, name: Optional[str] = None) -> "DataflowGraph":
        """Deep-copy actors/ports/edges (kernels and params shared by reference)."""
        clone = DataflowGraph(name or f"{self.name}_copy")
        for actor in self._actors.values():
            new_actor = clone.actor(
                actor.name, kernel=actor.kernel, cycles=actor.cycles,
                params=dict(actor.params),
            )
            for port in actor.ports:
                new_actor.add_port(
                    Port(port.name, port.direction, port.rate, port.token_bytes)
                )
        for edge in self._edges:
            new_edge = clone.connect(
                (clone.get_actor(edge.src_actor.name), edge.source.name),
                (clone.get_actor(edge.snk_actor.name), edge.sink.name),
                delay=edge.delay,
                name=edge.name,
            )
            if edge.initial_tokens is not None:
                new_edge.set_initial_tokens(edge.initial_tokens)
        for actor in self._actors.values():
            for port in actor.ports:
                if id(port) in self._interface_ports:
                    clone.mark_interface(clone.get_actor(actor.name).port(port.name))
        return clone

    # -- export -------------------------------------------------------------

    def to_dot(self) -> str:
        """Graphviz dot rendering (rates and delays annotated)."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for actor in self._actors.values():
            shape = "box" if not actor.is_dynamic else "octagon"
            lines.append(f'  "{actor.name}" [shape={shape}];')
        for edge in self._edges:
            label = f"{edge.source.rate!r}->{edge.sink.rate!r}"
            if edge.delay:
                label += f" d={edge.delay}"
            lines.append(
                f'  "{edge.src_actor.name}" -> "{edge.snk_actor.name}" '
                f'[label="{label}"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __iter__(self) -> Iterator[Actor]:
        return iter(self._actors.values())

    def __len__(self) -> int:
        return len(self._actors)

    def __repr__(self) -> str:
        return (
            f"DataflowGraph({self.name!r}, actors={len(self._actors)}, "
            f"edges={len(self._edges)})"
        )
