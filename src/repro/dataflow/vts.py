"""Variable Token Size (VTS) modelling — the paper's §3.

A dynamic-rate edge moves a *varying* number of raw tokens per firing.
VTS conversion repacks those raw tokens into a **single packed token of
variable size** per firing, so that the converted graph has *static*
rates (rate 1 at every converted port) and the full SDF toolbox —
repetitions vector, PASS, buffer bounds — applies again.

Bounded memory follows from the declared rate bounds:

* ``b_max(e)``  — maximum bytes in one packed token on edge ``e``
  (rate bound × raw token bytes, paper §3);
* ``c(e) = c_sdf(e) * b_max(e)``  — bound on the total bytes of packed
  tokens coexisting on ``e`` (paper **eq. 1**);
* ``B(e) = (G + delay(e)) * c(e)``  — bound on the IPC buffer for ``e``
  in a self-timed implementation (paper **eq. 2**), where ``G`` is the
  total delay on a minimum-delay directed *feedback* path from
  ``snk(e)`` back to ``src(e)``.  (The feedback path is what throttles
  the producer; without one the self-timed producer can run ahead
  unboundedly and SPI must fall back to the UBS protocol — see
  :mod:`repro.spi.protocols`.)  The paper's inline formula is rendered
  ambiguously in the available text ("G src(e) snk(e)"); we implement
  the standard Sriram–Bhattacharyya feedback-cycle bound, which is the
  result the formula specialises.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dataflow.buffers import sdf_buffer_bounds
from repro.dataflow.dynamic import DynamicRate
from repro.dataflow.graph import DataflowGraph, Edge, GraphError
from repro.dataflow.sdf import repetitions_vector

__all__ = [
    "PackedToken",
    "VtsEdgeInfo",
    "VtsConversion",
    "vts_convert",
    "minimum_feedback_delay",
]


@dataclass(frozen=True)
class PackedToken:
    """A variable-size packed token: ``size`` raw tokens in one unit.

    The SPI_dynamic wire format carries ``size`` in the message header so
    the receiver never needs delimiter scanning (paper §3: a header field
    "is much more efficient" than a delimiter on FPGA targets).
    """

    payload: tuple
    raw_token_bytes: int

    @property
    def size(self) -> int:
        """Number of raw tokens packed inside."""
        return len(self.payload)

    @property
    def nbytes(self) -> int:
        """Payload size in bytes."""
        return self.size * self.raw_token_bytes

    @classmethod
    def pack(cls, raw_tokens: Sequence, raw_token_bytes: int) -> "PackedToken":
        return cls(tuple(raw_tokens), raw_token_bytes)

    def unpack(self) -> List:
        return list(self.payload)


@dataclass
class VtsEdgeInfo:
    """Static bounds attached to one VTS-converted edge."""

    edge_name: str
    producer_bound: int
    consumer_bound: int
    raw_token_bytes: int
    c_sdf: int

    @property
    def b_max_bytes(self) -> int:
        """Maximum bytes in one packed token on this edge (paper §3)."""
        return max(self.producer_bound, self.consumer_bound) * self.raw_token_bytes

    @property
    def c_bytes(self) -> int:
        """Paper eq. 1: total bytes of coexisting packed tokens."""
        return self.c_sdf * self.b_max_bytes

    def admits_packed_size(self, size: int) -> bool:
        """True if a packed token of ``size`` raw tokens respects the bound."""
        return 1 <= size <= max(self.producer_bound, self.consumer_bound)


@dataclass
class VtsConversion:
    """Result of converting a bounded-dynamic graph to pure SDF.

    Attributes
    ----------
    graph:
        The converted graph: every formerly dynamic port now has static
        rate 1 and ``token_bytes`` equal to the packed-token byte bound.
    edge_info:
        ``edge name -> VtsEdgeInfo`` for every converted (formerly
        dynamic) edge.
    original:
        The source graph (unmodified).
    """

    graph: DataflowGraph
    edge_info: Dict[str, VtsEdgeInfo]
    original: DataflowGraph
    _c_sdf: Dict[int, int] = field(default_factory=dict, repr=False)

    def is_converted_edge(self, edge: Edge) -> bool:
        return edge.name in self.edge_info

    def packed_token_bound_bytes(self, edge: Edge) -> int:
        """``b_max(e)`` for a converted edge."""
        return self.edge_info[edge.name].b_max_bytes

    def coexisting_bytes_bound(self, edge: Edge) -> int:
        """Paper eq. 1: ``c(e) = c_sdf(e) * b_max(e)``."""
        return self.edge_info[edge.name].c_bytes

    def ipc_buffer_bound_bytes(self, edge: Edge) -> Optional[int]:
        """Paper eq. 2: ``B(e) = (G + delay(e)) * c(e)``.

        Returns ``None`` when no directed feedback path from ``snk(e)``
        to ``src(e)`` exists — the buffer is then unbounded under pure
        self-timed execution and the UBS protocol must be used.
        """
        info = self.edge_info[edge.name]
        feedback = minimum_feedback_delay(self.graph, edge)
        if feedback is None:
            return None
        return (feedback + edge.delay) * info.c_bytes


def minimum_feedback_delay(graph: DataflowGraph, edge: Edge) -> Optional[int]:
    """Minimum total delay on a directed path ``snk(e) -> src(e)``.

    Dijkstra over actor nodes with edge delays as non-negative weights.
    Returns ``None`` when no feedback path exists.
    """
    source = edge.snk_actor.name
    target = edge.src_actor.name
    if source == target:
        return 0
    dist: Dict[str, int] = {source: 0}
    heap: List = [(0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node == target:
            return d
        if d > dist.get(node, d):
            continue
        for out in graph.out_edges(graph.get_actor(node)):
            nxt = out.snk_actor.name
            nd = d + out.delay
            if nd < dist.get(nxt, nd + 1):
                dist[nxt] = nd
                heapq.heappush(heap, (nd, nxt))
    return dist.get(target)


def _unpack_inputs(inputs: Dict[str, list], dynamic_inputs) -> Dict[str, list]:
    raw: Dict[str, list] = {}
    for port_name, values in inputs.items():
        if port_name in dynamic_inputs:
            tokens: List = []
            for value in values:
                if isinstance(value, PackedToken):
                    tokens.extend(value.unpack())
                elif value is not None:
                    tokens.append(value)
            raw[port_name] = tokens
        else:
            raw[port_name] = list(values)
    return raw


def _wrap_kernel(orig_actor, dynamic_inputs, dynamic_outputs):
    """Adapter: packed tokens in -> original raw kernel -> packed out."""
    if orig_actor.kernel is None:
        return None

    def adapted(firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        raw_inputs = _unpack_inputs(inputs, dynamic_inputs)
        raw_outputs = orig_actor.kernel(firing_index, raw_inputs)
        outputs: Dict[str, list] = {}
        for port_name, values in raw_outputs.items():
            if port_name in dynamic_outputs:
                bound, minimum, raw_bytes = dynamic_outputs[port_name]
                if not minimum <= len(values) <= bound:
                    raise GraphError(
                        f"actor {orig_actor.name!r} produced {len(values)} "
                        f"raw tokens on dynamic port {port_name!r}, outside "
                        f"the declared range [{minimum}, {bound}]"
                    )
                outputs[port_name] = [PackedToken.pack(values, raw_bytes)]
            else:
                outputs[port_name] = list(values)
        return outputs

    return adapted


def _wrap_cycles(orig_actor, dynamic_inputs):
    """Adapter: evaluate a data-dependent cycle model on raw tokens."""
    if not callable(orig_actor.cycles):
        return orig_actor.cycles

    def adapted(firing_index: int, inputs: Dict[str, list]) -> int:
        return orig_actor.cycles(
            firing_index, _unpack_inputs(inputs or {}, dynamic_inputs)
        )

    return adapted


def vts_convert(graph: DataflowGraph, name: Optional[str] = None) -> VtsConversion:
    """Convert a bounded-dynamic dataflow graph into a pure SDF graph.

    Every dynamic port (production or consumption) becomes a static port
    of **rate 1** whose token is a packed token with byte bound
    ``rate bound × raw token bytes`` — exactly the transformation of the
    paper's figure 1.  Static ports are kept as they are.

    The converted graph must be sample-rate consistent (this is the
    paper's applicability condition: "If by application of the above
    principle to all possible edges, a consistent graph is obtained, then
    bounded memory for all the edge buffers can be guaranteed"); an
    inconsistent result propagates ``InconsistentGraphError``.

    Raises :class:`GraphError` if the graph has no dynamic edges (the
    conversion would be an identity — call SDF analysis directly).
    """
    if not graph.is_dynamic:
        raise GraphError(
            f"graph {graph.name!r} has no dynamic edges; VTS conversion "
            f"is only meaningful for bounded-dynamic graphs"
        )
    for edge in graph.dynamic_edges:
        if edge.delay > 0:
            raise GraphError(
                f"edge {edge.name}: initial delay tokens on dynamic edges "
                f"are not supported by VTS conversion (pack them into the "
                f"first firing instead)"
            )
    converted = graph.copy_structure(name or f"{graph.name}_vts")
    edge_info: Dict[str, VtsEdgeInfo] = {}

    for orig_edge, new_edge in zip(graph.edges, converted.edges):
        if not orig_edge.is_dynamic:
            continue
        src_rate = orig_edge.source.rate
        snk_rate = orig_edge.sink.rate
        producer_bound = (
            src_rate.bound if isinstance(src_rate, DynamicRate) else src_rate
        )
        consumer_bound = (
            snk_rate.bound if isinstance(snk_rate, DynamicRate) else snk_rate
        )
        raw_bytes = orig_edge.token_bytes
        b_max = max(producer_bound, consumer_bound) * raw_bytes
        new_edge.source.rate = 1
        new_edge.sink.rate = 1
        new_edge.source.token_bytes = b_max
        new_edge.sink.token_bytes = b_max
        edge_info[new_edge.name] = VtsEdgeInfo(
            edge_name=new_edge.name,
            producer_bound=producer_bound,
            consumer_bound=consumer_bound,
            raw_token_bytes=raw_bytes,
            c_sdf=0,  # filled below, needs the converted graph's reps
        )

    # Wrap the kernels and cycle models of actors with dynamic ports so
    # that they keep operating on raw tokens: the adapter unpacks each
    # incoming packed token, invokes the original kernel, and repacks
    # each dynamic output's raw tokens into one size-checked packed
    # token.  This is exactly the paper's repacking: "VTS provides a
    # mechanism to repack tokens in such a way that the new packed
    # tokens flow at static rates".
    for orig_actor in graph.actors:
        if not orig_actor.is_dynamic:
            continue
        new_actor = converted.get_actor(orig_actor.name)
        dynamic_inputs = {
            p.name for p in orig_actor.input_ports if p.is_dynamic
        }
        dynamic_outputs = {
            p.name: (
                p.rate.bound if isinstance(p.rate, DynamicRate) else p.rate,
                p.rate.minimum if isinstance(p.rate, DynamicRate) else 1,
                p.token_bytes,
            )
            for p in orig_actor.output_ports
            if p.is_dynamic
        }
        new_actor.kernel = _wrap_kernel(
            orig_actor, dynamic_inputs, dynamic_outputs
        )
        new_actor.cycles = _wrap_cycles(orig_actor, dynamic_inputs)

    # eq. 1 needs c_sdf(e), "computed on the graph after VTS conversion,
    # so it is computed on a pure SDF graph".
    reps = repetitions_vector(converted)
    c_sdf = sdf_buffer_bounds(converted, method="simulate", repetitions=reps)
    for new_edge in converted.edges:
        if new_edge.name in edge_info:
            edge_info[new_edge.name].c_sdf = c_sdf[new_edge.edge_id]

    return VtsConversion(
        graph=converted,
        edge_info=edge_info,
        original=graph,
        _c_sdf=c_sdf,
    )
