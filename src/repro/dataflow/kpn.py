"""Restricted Kahn process networks on top of SPI (paper §3.1).

The paper: "the current version of SPI ... cannot be used in conjunction
with arbitrary KPN representations.  However, integration of SPI with
KPN — especially, restricted versions of KPN that are more amenable to
formal analysis as demonstrated by tools such as Compaan — is a
promising direction for future work."

This module implements that integration for the restricted class that
the VTS model supports: **message-structured Kahn processes**.  A
process repeatedly executes one *step*: it performs a blocking read of
one (variable-size, bounded) message per input channel, computes, and
writes one (variable-size, bounded) message per output channel.  This
class keeps KPN's blocking-read determinism — the SPI runtime's firing
guards *are* the blocking reads — while staying analysable: the network
converts to a bounded-dynamic dataflow graph, VTS gives static buffer
bounds, and the whole SPI methodology (scheduling, protocol selection,
resynchronization) applies unchanged.

What is *not* expressible — and rejected with a clear error — is
unbounded-rate traffic, which is exactly the "general KPN" the paper
excludes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.dataflow.dynamic import DynamicRate
from repro.dataflow.graph import DataflowGraph, GraphError

__all__ = ["KpnChannelSpec", "KpnProcess", "KpnNetwork"]


@dataclass(frozen=True)
class KpnChannelSpec:
    """Rate/size bounds of one KPN channel (required — this is the
    restriction that makes the network SPI-compatible)."""

    max_tokens_per_step: int
    token_bytes: int = 4
    min_tokens_per_step: int = 0

    def __post_init__(self) -> None:
        if self.max_tokens_per_step < 1:
            raise GraphError(
                "a KPN channel needs max_tokens_per_step >= 1; an "
                "unbounded channel would be general KPN, which SPI "
                "cannot analyse (paper §3.1)"
            )
        if not 0 <= self.min_tokens_per_step <= self.max_tokens_per_step:
            raise GraphError("need 0 <= min <= max tokens per step")
        if self.token_bytes < 1:
            raise GraphError("token_bytes must be >= 1")

    @property
    def rate(self) -> DynamicRate:
        return DynamicRate(
            self.max_tokens_per_step, minimum=self.min_tokens_per_step
        )


class KpnProcess:
    """One Kahn process: per-step blocking reads, compute, writes.

    ``step(step_index, inputs) -> outputs`` receives one message (a
    list of raw tokens) per input channel and must return one message
    per output channel, each within its channel's declared bounds.
    ``work_cycles`` is the execution-time model (int, or a callable on
    ``(step_index, inputs)``).
    """

    def __init__(
        self,
        name: str,
        step: Optional[Callable[[int, Dict[str, list]], Dict[str, list]]] = None,
        work_cycles=1,
    ) -> None:
        if not name:
            raise GraphError("process name must be non-empty")
        self.name = name
        self.step = step
        self.work_cycles = work_cycles
        self.inputs: Dict[str, KpnChannelSpec] = {}
        self.outputs: Dict[str, KpnChannelSpec] = {}

    def reads(self, port: str, spec: KpnChannelSpec) -> "KpnProcess":
        if port in self.inputs or port in self.outputs:
            raise GraphError(f"duplicate port {port!r} on {self.name!r}")
        self.inputs[port] = spec
        return self

    def writes(self, port: str, spec: KpnChannelSpec) -> "KpnProcess":
        if port in self.inputs or port in self.outputs:
            raise GraphError(f"duplicate port {port!r} on {self.name!r}")
        self.outputs[port] = spec
        return self


class KpnNetwork:
    """A network of restricted Kahn processes, convertible to dataflow."""

    def __init__(self, name: str = "kpn") -> None:
        self.name = name
        self._processes: Dict[str, KpnProcess] = {}
        self._channels: List[Tuple[str, str, str, str]] = []

    def add(self, process: KpnProcess) -> KpnProcess:
        if process.name in self._processes:
            raise GraphError(f"duplicate process {process.name!r}")
        self._processes[process.name] = process
        return process

    def connect(
        self,
        producer: str,
        out_port: str,
        consumer: str,
        in_port: str,
    ) -> None:
        """Wire ``producer.out_port`` to ``consumer.in_port``.

        Both endpoints must declare the *same* channel spec — a Kahn
        channel has one type; mismatched bounds are a modelling error.
        """
        src = self._processes.get(producer)
        snk = self._processes.get(consumer)
        if src is None or snk is None:
            raise GraphError(
                f"unknown process in channel {producer}.{out_port} -> "
                f"{consumer}.{in_port}"
            )
        if out_port not in src.outputs:
            raise GraphError(
                f"{producer!r} does not write port {out_port!r}"
            )
        if in_port not in snk.inputs:
            raise GraphError(f"{consumer!r} does not read port {in_port!r}")
        if src.outputs[out_port] != snk.inputs[in_port]:
            raise GraphError(
                f"channel {producer}.{out_port} -> {consumer}.{in_port}: "
                f"endpoint specs differ (a Kahn channel has one type)"
            )
        self._channels.append((producer, out_port, consumer, in_port))

    @property
    def processes(self) -> List[KpnProcess]:
        return list(self._processes.values())

    def to_dataflow_graph(self) -> DataflowGraph:
        """Convert to a bounded-dynamic dataflow graph.

        Each process becomes an actor whose ports are dynamic with the
        channels' declared bounds; ``SpiSystem.compile`` then performs
        the VTS conversion and everything downstream.  Blocking-read
        semantics are preserved: an actor fires only when one message is
        available on *every* input, exactly a Kahn step.
        """
        graph = DataflowGraph(self.name)
        for process in self._processes.values():

            def kernel(step_index, inputs, _process=process):
                if _process.step is None:
                    return {
                        port: [None] * spec.min_tokens_per_step
                        if spec.min_tokens_per_step
                        else [None]
                        for port, spec in _process.outputs.items()
                    }
                outputs = _process.step(step_index, inputs)
                missing = set(_process.outputs) - set(outputs)
                if missing:
                    raise GraphError(
                        f"process {_process.name!r} step {step_index} did "
                        f"not write channels {sorted(missing)}"
                    )
                return outputs

            actor = graph.actor(
                process.name,
                kernel=kernel,
                cycles=process.work_cycles,
                params={"kpn_process": process.name},
            )
            for port, spec in process.inputs.items():
                actor.add_input(
                    port, rate=spec.rate, token_bytes=spec.token_bytes
                )
            for port, spec in process.outputs.items():
                actor.add_output(
                    port, rate=spec.rate, token_bytes=spec.token_bytes
                )

        connected_inputs = set()
        connected_outputs = set()
        for producer, out_port, consumer, in_port in self._channels:
            graph.connect(
                (graph.get_actor(producer), out_port),
                (graph.get_actor(consumer), in_port),
            )
            connected_outputs.add((producer, out_port))
            connected_inputs.add((consumer, in_port))

        for process in self._processes.values():
            for port in process.inputs:
                if (process.name, port) not in connected_inputs:
                    raise GraphError(
                        f"input {process.name}.{port} is not connected; "
                        f"a Kahn process cannot read from nowhere"
                    )
            for port in process.outputs:
                if (process.name, port) not in connected_outputs:
                    graph.mark_interface(
                        graph.get_actor(process.name).port(port)
                    )

        graph.validate()
        return graph
