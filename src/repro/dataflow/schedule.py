"""Schedule representations for SDF graphs.

Two forms are provided:

* :class:`FlatSchedule` — an explicit firing sequence (what
  :func:`repro.dataflow.sdf.build_pass` produces);
* :class:`LoopedSchedule` — the compact ``(n S1 S2 ...)`` loop-nest form
  used throughout the software-synthesis literature the paper cites.
  Single-appearance schedules keep generated code (and, for us, schedule
  tables) small.

Both can be *expanded* to a firing sequence, *validated* against a graph
(admissibility: no edge ever underflows) and *profiled* for buffer needs
and single-processor makespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.dataflow.graph import Actor, DataflowGraph, GraphError
from repro.dataflow.sdf import repetitions_vector

__all__ = [
    "FlatSchedule",
    "ScheduleLoop",
    "LoopedSchedule",
    "single_appearance_schedule",
    "ScheduleProfile",
]


@dataclass
class ScheduleProfile:
    """Result of profiling a schedule against its graph."""

    makespan_cycles: int
    buffer_tokens: Dict[int, int]  # edge_id -> max tokens
    firings: int

    @property
    def total_buffer_tokens(self) -> int:
        return sum(self.buffer_tokens.values())


class FlatSchedule:
    """An explicit single-processor firing sequence."""

    def __init__(self, graph: DataflowGraph, firings: Sequence[Actor]) -> None:
        self.graph = graph
        self.firings: List[Actor] = list(firings)
        for actor in self.firings:
            if actor.graph is not graph:
                raise GraphError(
                    f"firing of {actor.name!r} does not belong to graph "
                    f"{graph.name!r}"
                )

    def __len__(self) -> int:
        return len(self.firings)

    def __iter__(self):
        return iter(self.firings)

    def counts(self) -> Dict[str, int]:
        """Firings per actor in this schedule."""
        result: Dict[str, int] = {}
        for actor in self.firings:
            result[actor.name] = result.get(actor.name, 0) + 1
        return result

    def is_valid_iteration(self) -> bool:
        """True if firing counts equal the repetitions vector."""
        return self.counts() == repetitions_vector(self.graph)

    def validate_admissible(self) -> None:
        """Raise :class:`GraphError` if any edge underflows mid-schedule."""
        tokens = {e.edge_id: e.delay for e in self.graph.edges}
        for actor in self.firings:
            for edge in self.graph.in_edges(actor):
                tokens[edge.edge_id] -= edge.cons_rate
                if tokens[edge.edge_id] < 0:
                    raise GraphError(
                        f"schedule underflows edge {edge.name} at a firing "
                        f"of {actor.name!r}"
                    )
            for edge in self.graph.out_edges(actor):
                tokens[edge.edge_id] += edge.prod_rate

    def profile(self) -> ScheduleProfile:
        """Makespan (sequential cycles) and per-edge buffer high-water marks."""
        self.validate_admissible()
        tokens = {e.edge_id: e.delay for e in self.graph.edges}
        high = dict(tokens)
        cycles = 0
        index: Dict[str, int] = {}
        for actor in self.firings:
            k = index.get(actor.name, 0)
            index[actor.name] = k + 1
            cycles += actor.execution_cycles(k)
            for edge in self.graph.in_edges(actor):
                tokens[edge.edge_id] -= edge.cons_rate
            for edge in self.graph.out_edges(actor):
                tokens[edge.edge_id] += edge.prod_rate
                high[edge.edge_id] = max(high[edge.edge_id], tokens[edge.edge_id])
        return ScheduleProfile(
            makespan_cycles=cycles,
            buffer_tokens=high,
            firings=len(self.firings),
        )

    def __repr__(self) -> str:
        return f"FlatSchedule({' '.join(a.name for a in self.firings)})"


@dataclass
class ScheduleLoop:
    """A ``(count body...)`` loop in a looped schedule."""

    count: int
    body: Tuple[Union["ScheduleLoop", str], ...]

    def __post_init__(self) -> None:
        if self.count < 1:
            raise GraphError("schedule loop count must be >= 1")
        if not self.body:
            raise GraphError("schedule loop body must be non-empty")

    def expand(self) -> List[str]:
        names: List[str] = []
        for _ in range(self.count):
            for item in self.body:
                if isinstance(item, ScheduleLoop):
                    names.extend(item.expand())
                else:
                    names.append(item)
        return names

    def __str__(self) -> str:
        inner = " ".join(
            str(item) if isinstance(item, ScheduleLoop) else item
            for item in self.body
        )
        return f"({self.count} {inner})"


class LoopedSchedule:
    """A loop-nest schedule over actor names."""

    def __init__(self, graph: DataflowGraph, root: ScheduleLoop) -> None:
        self.graph = graph
        self.root = root

    def flatten(self) -> FlatSchedule:
        firings = [self.graph.get_actor(name) for name in self.root.expand()]
        return FlatSchedule(self.graph, firings)

    def appearances(self) -> Dict[str, int]:
        """Lexical appearance count per actor (1 everywhere ⇒ single-appearance)."""
        counts: Dict[str, int] = {}

        def walk(loop: ScheduleLoop) -> None:
            for item in loop.body:
                if isinstance(item, ScheduleLoop):
                    walk(item)
                else:
                    counts[item] = counts.get(item, 0) + 1

        walk(self.root)
        return counts

    @property
    def is_single_appearance(self) -> bool:
        return all(count == 1 for count in self.appearances().values())

    def __str__(self) -> str:
        return str(self.root)


def single_appearance_schedule(graph: DataflowGraph) -> LoopedSchedule:
    """Build a single-appearance looped schedule for an acyclic-like graph.

    Uses the topological order (delay edges ignored) with loop factors
    from the repetitions vector: ``(1 (qA A) (qB B) ...)``.  This is the
    flat single-appearance strategy; it is always admissible for graphs
    whose zero-delay subgraph is acyclic because every actor's producers
    complete all their firings first.
    """
    reps = repetitions_vector(graph)
    order = graph.topological_order(ignore_delay_edges=True)
    body = tuple(ScheduleLoop(reps[a.name], (a.name,)) for a in order)
    schedule = LoopedSchedule(graph, ScheduleLoop(1, body))
    schedule.flatten().validate_admissible()
    return schedule
