"""Synchronous dataflow (SDF) analysis.

Implements the classic Lee/Messerschmitt machinery the paper relies on:

* **repetitions vector** ``q`` — the smallest positive integer solution of
  the balance equations ``q[src] * prod(e) == q[snk] * cons(e)`` for every
  edge ``e`` (computed with exact rational arithmetic over a spanning
  forest, then verified on every edge);
* **consistency** — a graph is (sample-rate) consistent iff such a ``q``
  exists;
* **PASS construction** — a periodic admissible sequential schedule is
  built by demand-free symbolic execution; failure to complete one
  iteration proves deadlock.

Dynamic graphs must be VTS-converted first (:func:`repro.dataflow.vts
.vts_convert`); all functions below reject dynamic ports explicitly.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.dataflow.graph import Actor, DataflowGraph, GraphError

__all__ = [
    "SdfError",
    "InconsistentGraphError",
    "DeadlockError",
    "repetitions_vector",
    "is_consistent",
    "build_pass",
    "total_firings_per_iteration",
]


class SdfError(GraphError):
    """Base class for SDF analysis failures."""


class InconsistentGraphError(SdfError):
    """The balance equations admit no positive solution."""


class DeadlockError(SdfError):
    """The graph is consistent but cannot complete a full iteration."""


def _require_static(graph: DataflowGraph) -> None:
    dynamic = [e.name for e in graph.dynamic_edges]
    if dynamic:
        raise SdfError(
            f"graph {graph.name!r} has dynamic edges {dynamic}; apply VTS "
            f"conversion (repro.dataflow.vts.vts_convert) before SDF analysis"
        )


def repetitions_vector(graph: DataflowGraph) -> Dict[str, int]:
    """Smallest positive integer repetitions vector of an SDF graph.

    Returns a mapping ``actor name -> repetition count``.  Raises
    :class:`InconsistentGraphError` when the balance equations have no
    positive solution, and :class:`SdfError` on dynamic or empty graphs.

    The computation propagates exact :class:`fractions.Fraction` ratios
    over an (undirected) spanning forest of the graph, normalises each
    connected component to the least common multiple of the denominators,
    and finally verifies the balance equation on *every* edge — including
    the non-tree edges, which is where inconsistency shows up.
    """
    _require_static(graph)
    if not graph.actors:
        raise SdfError("cannot compute repetitions vector of an empty graph")

    ratio: Dict[str, Fraction] = {}
    adjacency: Dict[str, List[Tuple[str, Fraction]]] = {
        a.name: [] for a in graph.actors
    }
    for edge in graph.edges:
        if edge.is_selfloop:
            if edge.prod_rate != edge.cons_rate:
                raise InconsistentGraphError(
                    f"self-loop {edge.name}: production rate "
                    f"{edge.prod_rate} != consumption rate {edge.cons_rate}"
                )
            continue
        # q[snk] / q[src] == prod / cons
        factor = Fraction(edge.prod_rate, edge.cons_rate)
        adjacency[edge.src_actor.name].append((edge.snk_actor.name, factor))
        adjacency[edge.snk_actor.name].append((edge.src_actor.name, 1 / factor))

    reps: Dict[str, int] = {}
    for root in graph.actors:
        if root.name in ratio:
            continue
        component = [root.name]
        ratio[root.name] = Fraction(1)
        stack = [root.name]
        while stack:
            node = stack.pop()
            for neighbour, factor in adjacency[node]:
                candidate = ratio[node] * factor
                if neighbour not in ratio:
                    ratio[neighbour] = candidate
                    component.append(neighbour)
                    stack.append(neighbour)
        # Normalise this connected component to the smallest positive
        # integer vector (components scale independently).
        lcm_den = 1
        for name in component:
            den = ratio[name].denominator
            lcm_den = lcm_den * den // math.gcd(lcm_den, den)
        gcd_num = 0
        for name in component:
            gcd_num = math.gcd(gcd_num, (ratio[name] * lcm_den).numerator)
        for name in component:
            reps[name] = int(ratio[name] * lcm_den / gcd_num)

    for edge in graph.edges:
        produced = reps[edge.src_actor.name] * edge.prod_rate
        consumed = reps[edge.snk_actor.name] * edge.cons_rate
        if produced != consumed:
            raise InconsistentGraphError(
                f"graph {graph.name!r} is sample-rate inconsistent at edge "
                f"{edge.name}: {reps[edge.src_actor.name]} x "
                f"{edge.prod_rate} != {reps[edge.snk_actor.name]} x "
                f"{edge.cons_rate}"
            )
    return reps


def is_consistent(graph: DataflowGraph) -> bool:
    """True iff the balance equations admit a positive solution."""
    try:
        repetitions_vector(graph)
    except InconsistentGraphError:
        return False
    return True


def total_firings_per_iteration(graph: DataflowGraph) -> int:
    """Sum of the repetitions vector — total firings in one graph iteration."""
    return sum(repetitions_vector(graph).values())


def build_pass(
    graph: DataflowGraph,
    repetitions: Optional[Dict[str, int]] = None,
) -> List[Actor]:
    """Construct a periodic admissible sequential schedule (PASS).

    Symbolically executes one iteration of the graph: an actor is
    *fireable* when every input edge holds at least ``cons`` tokens, and
    fireable actors with remaining repetitions are fired in a fixed
    (name-sorted) priority order, which makes the result deterministic.

    Returns the firing sequence (one :class:`Actor` entry per firing).
    Raises :class:`DeadlockError` if the iteration cannot complete — by
    the classic SDF theorem this proves that *no* admissible schedule
    exists for the given delays.
    """
    _require_static(graph)
    reps = dict(repetitions) if repetitions is not None else repetitions_vector(graph)
    tokens: Dict[int, int] = {e.edge_id: e.delay for e in graph.edges}
    remaining = dict(reps)
    schedule: List[Actor] = []
    actors = sorted(graph.actors, key=lambda a: a.name)

    def fireable(actor: Actor) -> bool:
        if remaining[actor.name] == 0:
            return False
        return all(
            tokens[e.edge_id] >= e.cons_rate for e in graph.in_edges(actor)
        )

    total = sum(reps.values())
    while len(schedule) < total:
        progressed = False
        for actor in actors:
            if not fireable(actor):
                continue
            for edge in graph.in_edges(actor):
                tokens[edge.edge_id] -= edge.cons_rate
            for edge in graph.out_edges(actor):
                tokens[edge.edge_id] += edge.prod_rate
            remaining[actor.name] -= 1
            schedule.append(actor)
            progressed = True
        if not progressed:
            starved = sorted(
                name for name, count in remaining.items() if count > 0
            )
            raise DeadlockError(
                f"graph {graph.name!r} deadlocks: actors {starved} cannot "
                f"complete their repetitions (insufficient initial delays "
                f"on some cycle)"
            )
    # One full iteration must restore the initial token state.
    for edge in graph.edges:
        if tokens[edge.edge_id] != edge.delay:
            raise SdfError(
                f"internal error: edge {edge.name} token count "
                f"{tokens[edge.edge_id]} != initial delay {edge.delay} "
                f"after one iteration"
            )
    return schedule
