"""SDF edge-buffer bounds.

The VTS buffer formula (paper eq. 1) needs ``c_sdf(e)`` — "an upper bound
on the buffer size of *e* in terms of the maximum number of tokens that
coexist on *e* at any given time", computable "using any of the existing
techniques for computing SDF buffer bounds".  We provide two such
techniques:

* ``method="simulate"``: run the deterministic PASS of
  :func:`repro.dataflow.sdf.build_pass` and record the high-water mark on
  every edge.  This is a *valid* bound for any system that executes that
  schedule, and it is the tight bound SPI's buffer allocator uses.
* ``method="conservative"``: the classic schedule-independent bound
  ``q[src] * prod(e) + delay(e)`` — the total tokens a full iteration can
  pile onto the edge before the consumer runs at all.  Valid for every
  admissible single-processor schedule.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.dataflow.graph import DataflowGraph
from repro.dataflow.sdf import SdfError, build_pass, repetitions_vector

__all__ = ["sdf_buffer_bounds", "simulate_edge_occupancy"]


def sdf_buffer_bounds(
    graph: DataflowGraph,
    method: str = "simulate",
    repetitions: Optional[Dict[str, int]] = None,
) -> Dict[int, int]:
    """Per-edge token buffer bounds (``edge_id -> max tokens``).

    ``method`` selects the technique (see module docstring).  Both methods
    require a consistent, deadlock-free static graph.
    """
    reps = repetitions if repetitions is not None else repetitions_vector(graph)
    if method == "conservative":
        return {
            e.edge_id: reps[e.src_actor.name] * e.prod_rate + e.delay
            for e in graph.edges
        }
    if method == "simulate":
        return simulate_edge_occupancy(graph, repetitions=reps)
    raise ValueError(f"unknown buffer-bound method {method!r}")


def simulate_edge_occupancy(
    graph: DataflowGraph,
    repetitions: Optional[Dict[str, int]] = None,
    iterations: int = 1,
) -> Dict[int, int]:
    """High-water mark of every edge under the deterministic PASS.

    Executes ``iterations`` full graph iterations (the state is periodic,
    so one iteration already yields the steady-state maximum; more
    iterations are supported for defence-in-depth in tests).
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    schedule = build_pass(graph, repetitions=repetitions)
    tokens: Dict[int, int] = {e.edge_id: e.delay for e in graph.edges}
    high: Dict[int, int] = dict(tokens)
    for _ in range(iterations):
        for actor in schedule:
            for edge in graph.in_edges(actor):
                tokens[edge.edge_id] -= edge.cons_rate
                if tokens[edge.edge_id] < 0:
                    raise SdfError(
                        f"PASS underflowed edge {edge.name}; schedule is "
                        f"not admissible"
                    )
            for edge in graph.out_edges(actor):
                tokens[edge.edge_id] += edge.prod_rate
                if tokens[edge.edge_id] > high[edge.edge_id]:
                    high[edge.edge_id] = tokens[edge.edge_id]
    return high
