"""Homogeneous SDF (HSDF) expansion.

Multiprocessor analysis (IPC graphs, synchronization graphs, maximum
cycle mean) operates on *tasks* with unit production/consumption — the
homogeneous special case of SDF.  A multirate SDF graph is expanded into
an equivalent HSDF graph by instantiating one vertex per actor
*invocation* (repetitions-vector many per actor) and one precedence edge
per inter-invocation token dependency, annotated with the iteration
offset (delay) of the dependency.

The construction follows Sriram & Bhattacharyya: consumer invocation
``j`` of iteration ``m`` consumes global tokens
``(m*q_snk + j)*c .. +c-1``; token ``t`` (``t >= d`` after the ``d``
initial tokens) was produced by global producer invocation
``(t - d) // p``.  Because one full iteration moves exactly
``q_src*p == q_snk*c`` tokens, the iteration offset between a fixed
``(i, j)`` invocation pair is constant, so it can be read off at any
sufficiently late iteration.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.dataflow.graph import DataflowGraph, GraphError
from repro.dataflow.sdf import repetitions_vector

__all__ = ["hsdf_expand", "invocation_name"]


def invocation_name(actor_name: str, index: int) -> str:
    """Canonical name of invocation ``index`` of ``actor_name``."""
    return f"{actor_name}#{index}"


def hsdf_expand(graph: DataflowGraph, name: str = "") -> DataflowGraph:
    """Expand a consistent SDF graph into its homogeneous equivalent.

    Every port of the result has rate 1.  Invocation vertices inherit the
    kernel-free timing model of their actor (``cycles`` of the original
    actor, evaluated at the invocation's local firing index).  Ports are
    synthesised per edge; the result is only meant for precedence/timing
    analysis, not functional execution.
    """
    reps = repetitions_vector(graph)
    expanded = DataflowGraph(name or f"{graph.name}_hsdf")

    for actor in graph.actors:
        for index in range(reps[actor.name]):
            def cycles_model(firing, inputs, _actor=actor, _index=index):
                return _actor.execution_cycles(_index, inputs)

            expanded.actor(
                invocation_name(actor.name, index),
                cycles=cycles_model,
                params={"origin": actor.name, "invocation": index},
            )

    port_counter: Dict[str, int] = {}

    def fresh_port(owner_name: str, direction: str):
        owner = expanded.get_actor(owner_name)
        count = port_counter.get(owner_name, 0)
        port_counter[owner_name] = count + 1
        if direction == "out":
            return owner.add_output(f"o{count}")
        return owner.add_input(f"i{count}")

    for edge in graph.edges:
        p = edge.prod_rate
        c = edge.cons_rate
        d = edge.delay
        q_src = reps[edge.src_actor.name]
        q_snk = reps[edge.snk_actor.name]
        if not isinstance(p, int) or not isinstance(c, int):
            raise GraphError(
                f"edge {edge.name} is dynamic; VTS-convert before HSDF "
                f"expansion"
            )
        # Late enough that every consumed token has a producer.
        m = d // (q_snk * c) + 1
        deps: Dict[Tuple[int, int], int] = {}
        for j in range(q_snk):
            for offset in range(c):
                t = (m * q_snk + j) * c + offset
                producer_global = (t - d) // p
                n, i = divmod(producer_global, q_src)
                delta = m - n
                if delta < 0:
                    raise GraphError(
                        f"internal error: negative iteration offset on "
                        f"edge {edge.name}"
                    )
                key = (i, j)
                if key not in deps or delta < deps[key]:
                    deps[key] = delta
        for (i, j), delta in sorted(deps.items()):
            src_inv = invocation_name(edge.src_actor.name, i)
            snk_inv = invocation_name(edge.snk_actor.name, j)
            if src_inv == snk_inv and delta == 0:
                raise GraphError(
                    f"edge {edge.name} induces a zero-delay self "
                    f"dependency on {src_inv} — graph deadlocks"
                )
            expanded.connect(
                fresh_port(src_inv, "out"),
                fresh_port(snk_inv, "in"),
                delay=delta,
                name=f"{edge.name}[{i}->{j}]",
            )
    return expanded
