"""Homogeneous SDF (HSDF) expansion.

Multiprocessor analysis (IPC graphs, synchronization graphs, maximum
cycle mean) operates on *tasks* with unit production/consumption — the
homogeneous special case of SDF.  A multirate SDF graph is expanded into
an equivalent HSDF graph by instantiating one vertex per actor
*invocation* (repetitions-vector many per actor) and one precedence edge
per inter-invocation token dependency, annotated with the iteration
offset (delay) of the dependency.

The construction follows Sriram & Bhattacharyya: consumer invocation
``j`` of iteration ``m`` consumes global tokens
``(m*q_snk + j)*c .. +c-1``; token ``t`` (``t >= d`` after the ``d``
initial tokens) was produced by global producer invocation
``(t - d) // p``.  Because one full iteration moves exactly
``q_src*p == q_snk*c`` tokens, the iteration offset between a fixed
``(i, j)`` invocation pair is constant, so it can be read off at any
sufficiently late iteration.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.dataflow.graph import DataflowGraph, GraphError
from repro.dataflow.sdf import repetitions_vector

__all__ = ["hsdf_expand", "invocation_name"]


def _legacy_engine() -> bool:
    value = os.environ.get("REPRO_ANALYSIS_ENGINE", "")
    return value.strip().lower() == "legacy"


def _edge_dependencies_enumerate(
    p: int, c: int, d: int, q_src: int, q_snk: int, m: int
) -> Dict[Tuple[int, int], int]:
    """Per-token enumeration of invocation dependencies (legacy)."""
    deps: Dict[Tuple[int, int], int] = {}
    for j in range(q_snk):
        for offset in range(c):
            t = (m * q_snk + j) * c + offset
            producer_global = (t - d) // p
            n, i = divmod(producer_global, q_src)
            key = (i, j)
            delta = m - n
            if key not in deps or delta < deps[key]:
                deps[key] = delta
    return deps


def _edge_dependencies_closed_form(
    p: int, c: int, d: int, q_src: int, q_snk: int, m: int
) -> Dict[Tuple[int, int], int]:
    """Closed-form invocation dependencies, O(deps) instead of O(tokens).

    Consumer invocation ``j`` of iteration ``m`` reads the token window
    ``[a, a + c - 1]`` with ``a = (m*q_snk + j)*c``; its producer
    *globals* are exactly ``g in [(a - d)//p, (a + c - 1 - d)//p]``
    (each global ``g`` fires as invocation ``i = g mod q_src`` of
    iteration ``n = g // q_src``, so the offset is ``delta = m - n``).
    Per local invocation ``i`` the minimal offset comes from the largest
    such ``g`` with that residue, and the top ``q_src``-length slice of
    the range contains the largest occurrence of every residue present —
    so scanning only that slice yields the same (i, min-delta) map as
    enumerating all ``c`` tokens.  Which residues appear (and the
    resulting delta pattern per ``j``) is governed by the gcd structure
    of ``p`` and ``c`` (Sriram & Bhattacharyya), but it never needs to
    be materialised token by token.
    """
    deps: Dict[Tuple[int, int], int] = {}
    for j in range(q_snk):
        a = (m * q_snk + j) * c
        g_lo = (a - d) // p
        g_hi = (a + c - 1 - d) // p
        g_start = g_lo if g_hi - g_lo < q_src else g_hi - q_src + 1
        for g in range(g_start, g_hi + 1):
            n, i = divmod(g, q_src)
            key = (i, j)
            delta = m - n
            if key not in deps or delta < deps[key]:
                deps[key] = delta
    return deps


def invocation_name(actor_name: str, index: int) -> str:
    """Canonical name of invocation ``index`` of ``actor_name``."""
    return f"{actor_name}#{index}"


def hsdf_expand(
    graph: DataflowGraph,
    name: str = "",
    method: Optional[str] = None,
) -> DataflowGraph:
    """Expand a consistent SDF graph into its homogeneous equivalent.

    Every port of the result has rate 1.  Invocation vertices inherit the
    kernel-free timing model of their actor (``cycles`` of the original
    actor, evaluated at the invocation's local firing index).  Ports are
    synthesised per edge; the result is only meant for precedence/timing
    analysis, not functional execution.

    ``method`` is ``"closed_form"`` (per-(i, j) dependency offsets in
    O(deps), the default) or ``"enumerate"`` (the original per-token
    loop, O(tokens)); ``None`` follows the ``REPRO_ANALYSIS_ENGINE``
    environment default.  Both produce identical graphs.
    """
    if method is None:
        method = "enumerate" if _legacy_engine() else "closed_form"
    if method not in ("closed_form", "enumerate"):
        raise GraphError(f"unknown HSDF expansion method {method!r}")
    dependencies = (
        _edge_dependencies_closed_form
        if method == "closed_form"
        else _edge_dependencies_enumerate
    )
    reps = repetitions_vector(graph)
    expanded = DataflowGraph(name or f"{graph.name}_hsdf")

    for actor in graph.actors:
        for index in range(reps[actor.name]):
            def cycles_model(firing, inputs, _actor=actor, _index=index):
                return _actor.execution_cycles(_index, inputs)

            expanded.actor(
                invocation_name(actor.name, index),
                cycles=cycles_model,
                params={"origin": actor.name, "invocation": index},
            )

    port_counter: Dict[str, int] = {}

    def fresh_port(owner_name: str, direction: str):
        owner = expanded.get_actor(owner_name)
        count = port_counter.get(owner_name, 0)
        port_counter[owner_name] = count + 1
        if direction == "out":
            return owner.add_output(f"o{count}")
        return owner.add_input(f"i{count}")

    for edge in graph.edges:
        p = edge.prod_rate
        c = edge.cons_rate
        d = edge.delay
        q_src = reps[edge.src_actor.name]
        q_snk = reps[edge.snk_actor.name]
        if not isinstance(p, int) or not isinstance(c, int):
            raise GraphError(
                f"edge {edge.name} is dynamic; VTS-convert before HSDF "
                f"expansion"
            )
        # Late enough that every consumed token has a producer.
        m = d // (q_snk * c) + 1
        deps = dependencies(p, c, d, q_src, q_snk, m)
        if any(delta < 0 for delta in deps.values()):
            raise GraphError(
                f"internal error: negative iteration offset on "
                f"edge {edge.name}"
            )
        for (i, j), delta in sorted(deps.items()):
            src_inv = invocation_name(edge.src_actor.name, i)
            snk_inv = invocation_name(edge.snk_actor.name, j)
            if src_inv == snk_inv and delta == 0:
                raise GraphError(
                    f"edge {edge.name} induces a zero-delay self "
                    f"dependency on {src_inv} — graph deadlocks"
                )
            expanded.connect(
                fresh_port(src_inv, "out"),
                fresh_port(snk_inv, "in"),
                delay=delta,
                name=f"{edge.name}[{i}->{j}]",
            )
    return expanded
