"""Dataflow substrate: graphs, SDF analysis, schedules, VTS conversion."""

from repro.dataflow.buffers import sdf_buffer_bounds, simulate_edge_occupancy
from repro.dataflow.dynamic import DynamicRate, RateOracle
from repro.dataflow.graph import (
    Actor,
    DataflowGraph,
    Direction,
    Edge,
    GraphError,
    Port,
)
from repro.dataflow.hsdf import hsdf_expand, invocation_name
from repro.dataflow.kpn import KpnChannelSpec, KpnNetwork, KpnProcess
from repro.dataflow.schedule import (
    FlatSchedule,
    LoopedSchedule,
    ScheduleLoop,
    ScheduleProfile,
    single_appearance_schedule,
)
from repro.dataflow.sdf import (
    DeadlockError,
    InconsistentGraphError,
    SdfError,
    build_pass,
    is_consistent,
    repetitions_vector,
    total_firings_per_iteration,
)
from repro.dataflow.vts import (
    PackedToken,
    VtsConversion,
    VtsEdgeInfo,
    minimum_feedback_delay,
    vts_convert,
)

__all__ = [
    "Actor",
    "DataflowGraph",
    "Direction",
    "Edge",
    "GraphError",
    "Port",
    "DynamicRate",
    "RateOracle",
    "sdf_buffer_bounds",
    "simulate_edge_occupancy",
    "FlatSchedule",
    "LoopedSchedule",
    "ScheduleLoop",
    "ScheduleProfile",
    "single_appearance_schedule",
    "DeadlockError",
    "InconsistentGraphError",
    "SdfError",
    "build_pass",
    "is_consistent",
    "repetitions_vector",
    "total_firings_per_iteration",
    "PackedToken",
    "VtsConversion",
    "VtsEdgeInfo",
    "minimum_feedback_delay",
    "vts_convert",
    "hsdf_expand",
    "invocation_name",
    "KpnChannelSpec",
    "KpnNetwork",
    "KpnProcess",
]
