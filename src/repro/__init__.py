"""repro — reproduction of the Signal Passing Interface (SPI) framework.

"An Optimized Message Passing Framework for Parallel Implementation of
Signal Processing Applications" (DATE 2008): SPI integrates coarse-grain
dataflow modelling with MPI-style message passing, adds Variable Token
Size (VTS) modelling for bounded-dynamic data rates, resynchronization
for distributed-memory systems, and an HDL communication-actor library.

The top level re-exports the public API; see DESIGN.md for the system
inventory and README.md for a quickstart.
"""

from repro.dataflow import (
    Actor,
    DataflowGraph,
    DynamicRate,
    Edge,
    GraphError,
    Port,
    RateOracle,
    build_pass,
    is_consistent,
    repetitions_vector,
    sdf_buffer_bounds,
    vts_convert,
)
from repro.dataflow.vts import PackedToken, VtsConversion
from repro.mapping import (
    McmResult,
    Partition,
    build_ipc_graph,
    build_selftimed_schedule,
    derive_sync_graph,
    maximum_cycle_mean,
    maximum_cycle_mean_result,
    remove_redundant_synchronizations,
    resynchronize,
    simulate_selftimed,
)
from repro.mpi import MpiConfig, MpiSystem
from repro.platform import (
    VIRTEX4_SX35,
    ClockDomain,
    FpgaDevice,
    LinkSpec,
    ResourceVector,
    UtilizationReport,
)
from repro.spi import Protocol, RunResult, SpiConfig, SpiSystem

__version__ = "1.0.0"

__all__ = [
    "Actor",
    "DataflowGraph",
    "DynamicRate",
    "Edge",
    "GraphError",
    "Port",
    "RateOracle",
    "build_pass",
    "is_consistent",
    "repetitions_vector",
    "sdf_buffer_bounds",
    "vts_convert",
    "PackedToken",
    "VtsConversion",
    "McmResult",
    "Partition",
    "build_ipc_graph",
    "build_selftimed_schedule",
    "derive_sync_graph",
    "maximum_cycle_mean",
    "maximum_cycle_mean_result",
    "remove_redundant_synchronizations",
    "resynchronize",
    "simulate_selftimed",
    "MpiConfig",
    "MpiSystem",
    "VIRTEX4_SX35",
    "ClockDomain",
    "FpgaDevice",
    "LinkSpec",
    "ResourceVector",
    "UtilizationReport",
    "Protocol",
    "RunResult",
    "SpiConfig",
    "SpiSystem",
    "__version__",
]
