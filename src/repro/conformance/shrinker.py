"""Greedy spec shrinking for failing conformance cases.

When an oracle fires, the raw counterexample is usually bigger than it
needs to be.  The shrinker performs classic delta-debugging on the
*spec* (never on live graph objects): it proposes structurally smaller
variants — drop an actor with its incident edges, drop an edge, collapse
rates / repetitions / delays / cycles to their minimum, drop PEs, turn a
dynamic edge static — and keeps any variant on which the original
failure still reproduces, iterating to a fixpoint.

Because specs derive concrete rates from the repetitions vector, every
candidate is SDF-consistent by construction; candidates that are invalid
for other reasons (e.g. a dangling feedback delay that now deadlocks the
*reference*) simply fail the "same oracle still fires" predicate and are
discarded.

The final minimal spec is written to a replay JSON file and rendered as
a ready-to-commit pytest regression test (see ``TESTING.md``).
"""

from __future__ import annotations

import json
import textwrap
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Iterator, List, Optional

from repro.conformance.oracles import OracleReport, run_oracle_stack
from repro.conformance.spec import GraphSpec, SpecError, build_case

__all__ = [
    "ShrinkResult",
    "shrink",
    "oracle_failure_predicate",
    "write_replay_file",
    "load_replay_file",
    "render_pytest_repro",
]

#: replay file schema identifier
REPLAY_SCHEMA = "repro.conformance.replay/1"


@dataclass
class ShrinkResult:
    """Outcome of a shrink run."""

    spec: GraphSpec
    steps: int
    attempts: int

    @property
    def n_actors(self) -> int:
        return len(self.spec.actors)


def _drop_actor(spec: GraphSpec, name: str) -> GraphSpec:
    return replace(
        spec,
        actors=tuple(a for a in spec.actors if a.name != name),
        edges=tuple(
            e for e in spec.edges if name not in (e.src, e.snk)
        ),
        assignment=tuple(
            (actor, pe) for actor, pe in spec.assignment if actor != name
        ),
    )


def _candidates(spec: GraphSpec) -> Iterator[GraphSpec]:
    """Yield strictly simpler variants, most aggressive first."""
    if len(spec.actors) > 1:
        for actor in spec.actors:
            yield _drop_actor(spec, actor.name)
    for index in range(len(spec.edges)):
        yield replace(
            spec, edges=spec.edges[:index] + spec.edges[index + 1:]
        )
    if spec.batch > 1:
        yield replace(spec, batch=1)
    if spec.accelerators:
        yield replace(spec, accelerators=())
    if spec.n_pes > 1:
        yield replace(
            spec,
            n_pes=spec.n_pes - 1,
            assignment=tuple(
                (name, min(pe, spec.n_pes - 2))
                for name, pe in spec.assignment
            ),
            accelerators=tuple(
                sorted({min(pe, spec.n_pes - 2) for pe in spec.accelerators})
            ),
        )
    for index, actor in enumerate(spec.actors):
        if actor.repetitions > 1:
            actors = list(spec.actors)
            actors[index] = replace(actor, repetitions=1)
            yield replace(spec, actors=tuple(actors))
        if actor.cycles > 1:
            actors = list(spec.actors)
            actors[index] = replace(actor, cycles=1)
            yield replace(spec, actors=tuple(actors))
    for index, edge in enumerate(spec.edges):
        if edge.dynamic:
            edges = list(spec.edges)
            edges[index] = replace(
                edge,
                dynamic=False,
                rate_factor=1,
                dyn_bound=1,
                dyn_min=1,
                rate_sequence=(),
            )
            yield replace(spec, edges=tuple(edges))
            if len(edge.rate_sequence) > 1:
                edges = list(spec.edges)
                edges[index] = replace(
                    edge, rate_sequence=edge.rate_sequence[:1]
                )
                yield replace(spec, edges=tuple(edges))
            continue
        if edge.rate_factor > 1:
            edges = list(spec.edges)
            edges[index] = replace(edge, rate_factor=1)
            yield replace(spec, edges=tuple(edges))
        if edge.delay_tokens > 0:
            edges = list(spec.edges)
            edges[index] = replace(edge, delay_tokens=0)
            yield replace(spec, edges=tuple(edges))


def oracle_failure_predicate(
    oracle: str,
    iterations: int = 4,
    quick: bool = False,
    occupancy_bound_fn: Optional[Callable] = None,
    max_cycles: Optional[int] = None,
) -> Callable[[GraphSpec], bool]:
    """Predicate: does ``oracle`` still fire on a (candidate) spec?"""

    def still_failing(spec: GraphSpec) -> bool:
        try:
            case = build_case(spec)
        except SpecError:
            return False
        kwargs = dict(
            iterations=iterations,
            quick=quick,
            occupancy_bound_fn=occupancy_bound_fn,
        )
        if max_cycles is not None:
            kwargs["max_cycles"] = max_cycles
        report = run_oracle_stack(case, **kwargs)
        return any(v.oracle == oracle for v in report.violations)

    return still_failing


def shrink(
    spec: GraphSpec,
    still_failing: Callable[[GraphSpec], bool],
    max_attempts: int = 500,
) -> ShrinkResult:
    """Greedily minimise ``spec`` while ``still_failing`` holds.

    ``still_failing(spec)`` must be True for the input spec; the result
    is a local minimum: no single candidate step still fails.
    """
    current = spec
    steps = 0
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _candidates(current):
            attempts += 1
            if attempts > max_attempts:
                break
            try:
                failed = still_failing(candidate)
            except Exception:
                failed = False
            if failed:
                current = candidate
                steps += 1
                progress = True
                break
    return ShrinkResult(spec=current, steps=steps, attempts=attempts)


# -- artefact emission ----------------------------------------------------


def write_replay_file(
    spec: GraphSpec, path: Path, report: Optional[OracleReport] = None
) -> Path:
    """Write a self-contained replay document for ``spec``."""
    document = {
        "schema": REPLAY_SCHEMA,
        "spec": spec.to_json(),
    }
    if report is not None:
        document["violations"] = [v.to_json() for v in report.violations]
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_replay_file(path: Path) -> GraphSpec:
    document = json.loads(Path(path).read_text())
    if document.get("schema") != REPLAY_SCHEMA:
        raise SpecError(
            f"{path}: not a conformance replay file "
            f"(schema {document.get('schema')!r})"
        )
    return GraphSpec.from_json(document["spec"])


def render_pytest_repro(spec: GraphSpec, oracle: str) -> str:
    """Render a standalone pytest regression test for a shrunk spec.

    The emitted module rebuilds the exact spec from JSON and asserts the
    oracle stack is clean — committing it turns the counterexample into
    a permanent regression guard (workflow described in TESTING.md).
    """
    spec_json = json.dumps(spec.to_json(), indent=4, sort_keys=True)
    body = f'''\
"""Regression test generated by the conformance shrinker.

Original failure: oracle {oracle!r} on seed {spec.seed}.
"""

import json

from repro.conformance import GraphSpec, build_case, run_oracle_stack

SPEC_JSON = json.loads(r\'\'\'
{spec_json}
\'\'\')


def test_seed_{spec.seed}_conforms():
    case = build_case(GraphSpec.from_json(SPEC_JSON))
    report = run_oracle_stack(case)
    assert report.ok, [v.detail for v in report.violations]
'''
    return textwrap.dedent(body)
