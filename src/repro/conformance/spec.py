"""Replayable graph specifications for conformance campaigns.

A :class:`GraphSpec` is a *pure-data* description of one fuzzing case:
actors (with a chosen repetitions vector and execution times), edges
(with rate factors, delays and optional bounded-dynamic rates), and a
PE assignment.  Everything downstream — the dataflow graph, the
deterministic functional kernels, the partition — is derived from it by
:func:`build_case`, so a case can be serialised to JSON, replayed from a
single seed, and shrunk by structural surgery on the spec alone.

Consistency is **by construction**: the spec stores the repetitions
vector ``q`` and a per-edge rate factor ``k``; the concrete rates are
derived as ``prod = k * lcm(q_src, q_snk) / q_src`` and
``cons = k * lcm(q_src, q_snk) / q_snk`` so the SDF balance equations
hold for any topology (reconvergent paths and feedback included).

The derived kernels are pure functions of ``(actor, port, firing index,
consumed tokens)`` — a CRC of the lot — so every execution mode (single-
PE reference, SPI self-timed simulation, MPI baseline) must produce the
*identical* token streams, which the :class:`TokenTap` records for the
differential oracles in :mod:`repro.conformance.oracles`.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.dataflow.dynamic import DynamicRate
from repro.dataflow.graph import DataflowGraph, GraphError
from repro.mapping.partition import Partition
from repro.platform.pe import PEClass

__all__ = [
    "ActorSpec",
    "EdgeSpec",
    "ConnectionSpec",
    "GraphSpec",
    "SpecError",
    "TokenTap",
    "ConformanceCase",
    "build_case",
    "CONFORMANCE_ACCELERATOR",
]

#: the accelerator class heterogeneous conformance cases assign —
#: fixed constants so a replayed seed rebuilds the identical platform
CONFORMANCE_ACCELERATOR = PEClass(
    kind="accelerator",
    dispatch_cycles=20,
    cycles_per_element=0.5,
    resource_cost=2.0,
)

#: schema identifier stamped into serialised specs / replay files
SPEC_SCHEMA = "repro.conformance.spec/1"


class SpecError(ValueError):
    """Raised for structurally invalid graph specifications."""


@dataclass(frozen=True)
class ActorSpec:
    """One actor: its repetitions-vector entry and execution time."""

    name: str
    repetitions: int
    cycles: int

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("actor name must be non-empty")
        if self.repetitions < 1:
            raise SpecError(f"actor {self.name!r}: repetitions must be >= 1")
        if self.cycles < 1:
            raise SpecError(f"actor {self.name!r}: cycles must be >= 1")


@dataclass(frozen=True)
class EdgeSpec:
    """One edge, described relative to the repetitions vector.

    For static edges the concrete rates follow from ``rate_factor`` (see
    module docstring).  For dynamic edges both endpoints get a
    :class:`DynamicRate` bound and the producer emits
    ``rate_sequence[k % len(rate_sequence)]`` raw tokens on firing ``k``
    — a cyclo-static production pattern that stays inside the declared
    bound, exactly the shape VTS conversion packs.
    """

    src: str
    snk: str
    rate_factor: int = 1
    delay_tokens: int = 0
    token_bytes: int = 4
    dynamic: bool = False
    dyn_bound: int = 1
    dyn_min: int = 1
    rate_sequence: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.rate_factor < 1:
            raise SpecError(f"edge {self.src}->{self.snk}: rate_factor >= 1")
        if self.delay_tokens < 0:
            raise SpecError(f"edge {self.src}->{self.snk}: delay_tokens >= 0")
        if self.token_bytes < 1:
            raise SpecError(f"edge {self.src}->{self.snk}: token_bytes >= 1")
        if self.dynamic:
            if self.delay_tokens:
                raise SpecError(
                    f"edge {self.src}->{self.snk}: dynamic edges cannot "
                    f"carry initial delay tokens (VTS restriction)"
                )
            if not 1 <= self.dyn_min <= self.dyn_bound:
                raise SpecError(
                    f"edge {self.src}->{self.snk}: need "
                    f"1 <= dyn_min <= dyn_bound"
                )
            if not self.rate_sequence:
                raise SpecError(
                    f"edge {self.src}->{self.snk}: dynamic edges need a "
                    f"rate_sequence"
                )
            for value in self.rate_sequence:
                if not self.dyn_min <= value <= self.dyn_bound:
                    raise SpecError(
                        f"edge {self.src}->{self.snk}: rate_sequence value "
                        f"{value} outside [{self.dyn_min}, {self.dyn_bound}]"
                    )


@dataclass(frozen=True)
class ConnectionSpec:
    """One collective connection: a hub port fanned over branch actors.

    ``hub`` is the shared endpoint (the producer of a broadcast, the
    consumer of a gather); ``branches`` are the fanned actors in branch
    order.  Rates are derived from one LCM over the hub's and every
    branch's repetitions, so each member edge satisfies its balance
    equation while the hub keeps a single shared port:

    * broadcast: hub produces ``k*L/q_hub`` per firing, branch ``i``
      consumes ``k*L/q_i`` (every branch sees the full token stream);
    * gather: branch ``i`` produces ``k*L/q_i``, the hub port consumes
      ``n * k*L/q_hub`` split into equal per-branch chunks.
    """

    kind: str
    hub: str
    branches: Tuple[str, ...]
    rate_factor: int = 1
    token_bytes: int = 4

    def __post_init__(self) -> None:
        if self.kind not in ("broadcast", "gather"):
            raise SpecError(
                f"connection kind {self.kind!r} not supported by the "
                f"conformance spec (broadcast | gather)"
            )
        if not self.branches:
            raise SpecError(f"{self.kind} connection needs >= 1 branch")
        if len(set(self.branches)) != len(self.branches):
            raise SpecError(f"{self.kind} connection: duplicate branches")
        if self.hub in self.branches:
            raise SpecError(
                f"{self.kind} connection: hub {self.hub!r} is a branch"
            )
        if self.rate_factor < 1:
            raise SpecError(f"{self.kind} connection: rate_factor >= 1")
        if self.token_bytes < 1:
            raise SpecError(f"{self.kind} connection: token_bytes >= 1")


@dataclass(frozen=True)
class GraphSpec:
    """A complete, replayable conformance case."""

    seed: int
    actors: Tuple[ActorSpec, ...]
    edges: Tuple[EdgeSpec, ...]
    n_pes: int
    assignment: Tuple[Tuple[str, int], ...]
    connections: Tuple[ConnectionSpec, ...] = ()
    #: requested blocking factor (the runtime clamps it to what the
    #: schedule admits; 1 = plain per-firing execution)
    batch: int = 1
    #: PE indices carrying :data:`CONFORMANCE_ACCELERATOR` instead of
    #: the default gpp class
    accelerators: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        names = [a.name for a in self.actors]
        if len(set(names)) != len(names):
            raise SpecError("duplicate actor names")
        if not self.actors:
            raise SpecError("spec needs at least one actor")
        known = set(names)
        for edge in self.edges:
            for endpoint in (edge.src, edge.snk):
                if endpoint not in known:
                    raise SpecError(f"edge endpoint {endpoint!r} unknown")
        for conn in self.connections:
            for endpoint in (conn.hub, *conn.branches):
                if endpoint not in known:
                    raise SpecError(
                        f"connection endpoint {endpoint!r} unknown"
                    )
        if self.n_pes < 1:
            raise SpecError("n_pes must be >= 1")
        if self.batch < 1:
            raise SpecError("batch must be >= 1")
        if len(set(self.accelerators)) != len(self.accelerators):
            raise SpecError("duplicate accelerator PE indices")
        for pe in self.accelerators:
            if not 0 <= pe < self.n_pes:
                raise SpecError(f"accelerator PE {pe} out of range")
        assigned = dict(self.assignment)
        for name in names:
            pe = assigned.get(name)
            if pe is None:
                raise SpecError(f"actor {name!r} has no PE assignment")
            if not 0 <= pe < self.n_pes:
                raise SpecError(f"actor {name!r}: PE {pe} out of range")

    # -- derived quantities ------------------------------------------------

    def repetitions(self) -> Dict[str, int]:
        return {a.name: a.repetitions for a in self.actors}

    def actor(self, name: str) -> ActorSpec:
        for spec in self.actors:
            if spec.name == name:
                return spec
        raise SpecError(f"no actor {name!r}")

    def resolved_rates(self, edge: EdgeSpec) -> Tuple[int, int]:
        """Concrete ``(prod, cons)`` rates satisfying the balance equation."""
        q_src = self.actor(edge.src).repetitions
        q_snk = self.actor(edge.snk).repetitions
        lcm = q_src * q_snk // math.gcd(q_src, q_snk)
        return edge.rate_factor * lcm // q_src, edge.rate_factor * lcm // q_snk

    def resolved_connection_rates(
        self, conn: ConnectionSpec
    ) -> Tuple[int, Tuple[int, ...]]:
        """``(hub port rate, per-branch rates)`` for a collective.

        One LCM over hub + branches makes every member edge balanced
        while the hub keeps one shared port: each member edge moves
        ``rate_factor * L`` tokens per graph iteration.
        """
        reps = [self.actor(conn.hub).repetitions] + [
            self.actor(b).repetitions for b in conn.branches
        ]
        lcm = reps[0]
        for q in reps[1:]:
            lcm = lcm * q // math.gcd(lcm, q)
        hub_rate = conn.rate_factor * lcm // reps[0]
        branch_rates = tuple(
            conn.rate_factor * lcm // q for q in reps[1:]
        )
        if conn.kind == "gather":
            # the hub port carries every branch's chunk per firing
            hub_rate *= len(conn.branches)
        return hub_rate, branch_rates

    # -- serialisation -----------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": SPEC_SCHEMA,
            "seed": self.seed,
            "actors": [
                {"name": a.name, "repetitions": a.repetitions, "cycles": a.cycles}
                for a in self.actors
            ],
            "edges": [
                {
                    "src": e.src,
                    "snk": e.snk,
                    "rate_factor": e.rate_factor,
                    "delay_tokens": e.delay_tokens,
                    "token_bytes": e.token_bytes,
                    "dynamic": e.dynamic,
                    "dyn_bound": e.dyn_bound,
                    "dyn_min": e.dyn_min,
                    "rate_sequence": list(e.rate_sequence),
                }
                for e in self.edges
            ],
            "connections": [
                {
                    "kind": c.kind,
                    "hub": c.hub,
                    "branches": list(c.branches),
                    "rate_factor": c.rate_factor,
                    "token_bytes": c.token_bytes,
                }
                for c in self.connections
            ],
            "n_pes": self.n_pes,
            "assignment": {name: pe for name, pe in self.assignment},
            "batch": self.batch,
            "accelerators": list(self.accelerators),
        }

    @classmethod
    def from_json(cls, document: Dict[str, object]) -> "GraphSpec":
        if document.get("schema") != SPEC_SCHEMA:
            raise SpecError(
                f"not a conformance spec (schema {document.get('schema')!r})"
            )
        return cls(
            seed=int(document["seed"]),
            actors=tuple(
                ActorSpec(a["name"], int(a["repetitions"]), int(a["cycles"]))
                for a in document["actors"]
            ),
            edges=tuple(
                EdgeSpec(
                    src=e["src"],
                    snk=e["snk"],
                    rate_factor=int(e["rate_factor"]),
                    delay_tokens=int(e["delay_tokens"]),
                    token_bytes=int(e["token_bytes"]),
                    dynamic=bool(e["dynamic"]),
                    dyn_bound=int(e["dyn_bound"]),
                    dyn_min=int(e["dyn_min"]),
                    rate_sequence=tuple(int(v) for v in e["rate_sequence"]),
                )
                for e in document["edges"]
            ),
            connections=tuple(
                ConnectionSpec(
                    kind=c["kind"],
                    hub=c["hub"],
                    branches=tuple(c["branches"]),
                    rate_factor=int(c["rate_factor"]),
                    token_bytes=int(c["token_bytes"]),
                )
                for c in document.get("connections", [])
            ),
            n_pes=int(document["n_pes"]),
            assignment=tuple(
                sorted((name, int(pe)) for name, pe in document["assignment"].items())
            ),
            batch=int(document.get("batch", 1)),
            accelerators=tuple(
                int(pe) for pe in document.get("accelerators", [])
            ),
        )


class TokenTap:
    """Records the token traffic of every kernel firing, per run label.

    The derived kernels close over one shared tap; SPI insertion and
    VTS conversion both share kernels *by reference* when cloning graph
    structure, so the same tap observes every execution mode.  Call
    :meth:`begin` before each run to open a fresh log.
    """

    def __init__(self) -> None:
        self._run: str = ""
        self._logs: Dict[str, Dict[str, List[tuple]]] = {}

    def begin(self, run: str) -> None:
        self._run = run
        self._logs[run] = {}

    def record(
        self,
        actor: str,
        firing_index: int,
        inputs: Dict[str, list],
        outputs: Dict[str, list],
    ) -> None:
        if not self._run:
            return
        log = self._logs[self._run].setdefault(actor, [])
        log.append(
            (
                firing_index,
                tuple((p, tuple(inputs[p])) for p in sorted(inputs)),
                tuple((p, tuple(outputs[p])) for p in sorted(outputs)),
            )
        )

    def streams(self, run: str) -> Dict[str, List[tuple]]:
        return self._logs.get(run, {})

    @property
    def runs(self) -> Tuple[str, ...]:
        return tuple(self._logs)


def _inputs_digest(inputs: Dict[str, list]) -> int:
    parts = []
    for name in sorted(inputs):
        parts.append(name + "=" + ",".join(str(v) for v in inputs[name]))
    return zlib.crc32("|".join(parts).encode())


def _token_value(actor: str, port: str, firing: int, index: int, digest: int) -> int:
    key = f"{actor}:{port}:{firing}:{index}:{digest}"
    return zlib.crc32(key.encode())


def _make_kernel(actor_name: str, producers: List[tuple], tap: TokenTap):
    """Deterministic kernel: output tokens are CRCs of the firing context.

    ``producers`` is a list of ``(port_name, count_of)`` pairs where
    ``count_of(firing_index)`` gives the number of raw tokens to emit.
    """

    def kernel(firing_index: int, inputs: Dict[str, list]) -> Dict[str, list]:
        digest = _inputs_digest(inputs)
        outputs: Dict[str, list] = {}
        for port_name, count_of in producers:
            count = count_of(firing_index)
            outputs[port_name] = [
                _token_value(actor_name, port_name, firing_index, j, digest)
                for j in range(count)
            ]
        tap.record(actor_name, firing_index, inputs, outputs)
        return outputs

    return kernel


@dataclass
class ConformanceCase:
    """A spec materialised into executable form."""

    spec: GraphSpec
    graph: DataflowGraph
    partition: Partition
    tap: TokenTap


def build_case(spec: GraphSpec) -> ConformanceCase:
    """Materialise a :class:`GraphSpec` into graph + partition + tap.

    Port names are derived from edge indices (``o<j>`` / ``i<j>``), so
    deleting an edge from the spec deletes its ports too — exactly what
    the shrinker needs to stay structurally valid.
    """
    tap = TokenTap()
    graph = DataflowGraph(f"conform_seed{spec.seed}")
    for actor_spec in spec.actors:
        graph.actor(actor_spec.name, cycles=actor_spec.cycles)

    # producers[actor] collects (port name, token-count function) pairs
    producers: Dict[str, List[tuple]] = {a.name: [] for a in spec.actors}
    for index, edge in enumerate(spec.edges):
        src = graph.get_actor(edge.src)
        snk = graph.get_actor(edge.snk)
        if edge.dynamic:
            q_src = spec.actor(edge.src).repetitions
            q_snk = spec.actor(edge.snk).repetitions
            if q_src != q_snk:
                raise SpecError(
                    f"edge {edge.src}->{edge.snk}: dynamic edges need equal "
                    f"repetitions at both endpoints (VTS converts them to "
                    f"rate 1/1)"
                )
            rate = DynamicRate(edge.dyn_bound, minimum=edge.dyn_min)
            out_port = src.add_output(
                f"o{index}", rate=rate, token_bytes=edge.token_bytes
            )
            in_port = snk.add_input(
                f"i{index}",
                rate=DynamicRate(edge.dyn_bound, minimum=edge.dyn_min),
                token_bytes=edge.token_bytes,
            )
            sequence = edge.rate_sequence
            producers[edge.src].append(
                (f"o{index}", lambda k, seq=sequence: seq[k % len(seq)])
            )
        else:
            prod, cons = spec.resolved_rates(edge)
            out_port = src.add_output(
                f"o{index}", rate=prod, token_bytes=edge.token_bytes
            )
            in_port = snk.add_input(
                f"i{index}", rate=cons, token_bytes=edge.token_bytes
            )
            producers[edge.src].append((f"o{index}", lambda k, n=prod: n))
        graph.connect(out_port, in_port, delay=edge.delay_tokens)

    # Collective connections get their own port namespace (``co<m>`` /
    # ``ci<m>``) so deleting one from the spec deletes its ports too.
    for index, conn in enumerate(spec.connections):
        hub = graph.get_actor(conn.hub)
        hub_rate, branch_rates = spec.resolved_connection_rates(conn)
        if conn.kind == "broadcast":
            hub.add_output(
                f"co{index}", rate=hub_rate, token_bytes=conn.token_bytes
            )
            producers[conn.hub].append((f"co{index}", lambda k, n=hub_rate: n))
            sinks = []
            for branch, rate in zip(conn.branches, branch_rates):
                graph.get_actor(branch).add_input(
                    f"ci{index}", rate=rate, token_bytes=conn.token_bytes
                )
                sinks.append(f"{branch}.ci{index}")
            graph.add_broadcast(
                f"{conn.hub}.co{index}", sinks, name=f"bcast{index}"
            )
        else:  # gather
            chunk = hub_rate // len(conn.branches)
            hub.add_input(
                f"ci{index}", rate=hub_rate, token_bytes=conn.token_bytes
            )
            sources = []
            for branch, rate in zip(conn.branches, branch_rates):
                graph.get_actor(branch).add_output(
                    f"co{index}", rate=rate, token_bytes=conn.token_bytes
                )
                producers[branch].append((f"co{index}", lambda k, n=rate: n))
                sources.append(f"{branch}.co{index}")
            graph.add_gather(
                sources,
                f"{conn.hub}.ci{index}",
                chunks=[chunk] * len(conn.branches),
                name=f"gather{index}",
            )

    for actor_spec in spec.actors:
        actor = graph.get_actor(actor_spec.name)
        actor.kernel = _make_kernel(
            actor_spec.name, producers[actor_spec.name], tap
        )
    try:
        graph.validate()
    except GraphError as exc:  # pragma: no cover - spec invariants prevent it
        raise SpecError(str(exc)) from exc

    partition = Partition(
        graph,
        spec.n_pes,
        dict(spec.assignment),
        pe_classes={
            pe: CONFORMANCE_ACCELERATOR for pe in spec.accelerators
        },
        batch_size=spec.batch,
    )
    return ConformanceCase(spec=spec, graph=graph, partition=partition, tap=tap)
