"""Campaign driver: generate seeds, run oracles, shrink failures, report.

A campaign is the unit the ``repro conform`` CLI subcommand and the CI
``conformance-smoke`` job execute: a contiguous range of seeds, each
turned into a case by the generator, run through the oracle stack, with
any violation shrunk to a minimal spec and rendered as replay JSON plus
a generated pytest repro.

The report (schema ``repro.conformance/1``) embeds a standard
observability bench document (schema ``repro.bench/1``), so campaign
wall-time and aggregate simulated cycles flow into the same BENCH-style
artefact stream the perf jobs gate on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.conformance.generator import GraphShape, generate_spec
from repro.conformance.oracles import (
    DEFAULT_MAX_CYCLES,
    OracleReport,
    Violation,
    run_oracle_stack,
)
from repro.conformance.shrinker import (
    oracle_failure_predicate,
    render_pytest_repro,
    shrink,
)
from repro.conformance.spec import GraphSpec, SpecError, build_case
from repro.observability.bench import bench_document

__all__ = ["CampaignConfig", "run_campaign", "replay_seed", "REPORT_SCHEMA"]

#: schema identifier of campaign reports
REPORT_SCHEMA = "repro.conformance/1"


@dataclass
class CampaignConfig:
    """Parameters of one conformance campaign."""

    seeds: int = 50
    seed_start: int = 0
    iterations: int = 4
    quick: bool = False
    shrink: bool = True
    shape: GraphShape = field(default_factory=GraphShape)
    max_cycles: int = DEFAULT_MAX_CYCLES

    def __post_init__(self) -> None:
        if self.seeds < 1:
            raise ValueError("seeds must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")


def _check_seed(seed: int, config: CampaignConfig) -> OracleReport:
    """Build and run the oracle stack for one seed."""
    spec = generate_spec(seed, config.shape)
    try:
        case = build_case(spec)
    except SpecError as exc:
        # a generator bug, not a semantics bug — still a campaign failure
        report = OracleReport(seed=seed)
        report.violations.append(Violation("generator", "build", str(exc)))
        return report
    return run_oracle_stack(
        case,
        iterations=config.iterations,
        quick=config.quick,
        max_cycles=config.max_cycles,
    )


def _shrink_failure(
    seed: int, report: OracleReport, config: CampaignConfig
) -> Optional[Dict[str, object]]:
    """Shrink the first violation of ``seed`` to a minimal spec."""
    target = report.violations[0].oracle
    if target == "generator":
        return None
    predicate = oracle_failure_predicate(
        target,
        iterations=config.iterations,
        quick=config.quick,
        max_cycles=config.max_cycles,
    )
    spec = generate_spec(seed, config.shape)
    if not predicate(spec):
        # flaky failure (should not happen: everything is seeded)
        return None
    result = shrink(spec, predicate)
    return {
        "oracle": target,
        "actors": len(result.spec.actors),
        "edges": len(result.spec.edges),
        "steps": result.steps,
        "attempts": result.attempts,
        "spec": result.spec.to_json(),
        "pytest_repro": render_pytest_repro(result.spec, target),
    }


def run_campaign(config: CampaignConfig) -> Dict[str, object]:
    """Run the campaign and return the ``repro.conformance/1`` report."""
    started = time.monotonic()
    failures: List[Dict[str, object]] = []
    cases: List[Dict[str, object]] = []
    total_cycles = 0
    by_oracle: Dict[str, int] = {}

    for seed in range(config.seed_start, config.seed_start + config.seeds):
        report = _check_seed(seed, config)
        total_cycles += sum(
            int(run.get("cycles", 0)) for run in report.runs.values()
        )
        cases.append(report.to_json())
        if report.ok:
            continue
        for violation in report.violations:
            by_oracle[violation.oracle] = by_oracle.get(violation.oracle, 0) + 1
        entry: Dict[str, object] = {
            "seed": seed,
            "violations": [v.to_json() for v in report.violations],
        }
        if config.shrink:
            shrunk = _shrink_failure(seed, report, config)
            if shrunk is not None:
                entry["shrunk"] = shrunk
        failures.append(entry)

    wall = time.monotonic() - started
    bench = bench_document(
        name="conformance_campaign",
        makespan_cycles=total_cycles,
        iteration_period_cycles=0.0,
        wall_seconds=wall,
        quick=config.quick,
        extra={
            "seeds": config.seeds,
            "seed_start": config.seed_start,
            "failing_seeds": len(failures),
            "violations_by_oracle": by_oracle,
        },
    )
    return {
        "schema": REPORT_SCHEMA,
        "seeds": config.seeds,
        "seed_start": config.seed_start,
        "iterations": config.iterations,
        "quick": config.quick,
        "shape": {
            key: getattr(config.shape, key)
            for key in (
                "min_actors",
                "max_actors",
                "max_repetition",
                "max_rate_factor",
                "dynamic_prob",
                "feedback_prob",
                "max_pes",
            )
        },
        "checked": len(cases),
        "failing_seeds": [f["seed"] for f in failures],
        "failures": failures,
        "cases": cases,
        "bench": bench,
    }


def replay_seed(
    seed: int, config: Optional[CampaignConfig] = None
) -> Dict[str, object]:
    """Re-run exactly one seed; deterministic wrt. :func:`run_campaign`."""
    base = config or CampaignConfig()
    single = CampaignConfig(
        seeds=1,
        seed_start=seed,
        iterations=base.iterations,
        quick=base.quick,
        shrink=base.shrink,
        shape=base.shape,
        max_cycles=base.max_cycles,
    )
    return run_campaign(single)
