"""Campaign driver: generate seeds, run oracles, shrink failures, report.

A campaign is the unit the ``repro conform`` CLI subcommand and the CI
``conformance-smoke`` job execute: a contiguous range of seeds, each
turned into a case by the generator, run through the oracle stack, with
any violation shrunk to a minimal spec and rendered as replay JSON plus
a generated pytest repro.

Since PR 6 the runner is a thin client of :mod:`repro.service`: every
seed becomes one ``conform.seed`` operation unit executed through the
campaign engine — optionally across a multiprocess shard pool
(``workers > 1``) with a shared content-addressed analysis cache.  An
operation-level crash is isolated per seed and surfaces as a
``service``-oracle violation instead of killing the campaign.

The report (schema ``repro.conformance/1``) embeds a standard
observability bench document (schema ``repro.bench/1``), so campaign
wall-time and aggregate simulated cycles flow into the same BENCH-style
artefact stream the perf jobs gate on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.conformance.generator import GraphShape
from repro.conformance.oracles import DEFAULT_MAX_CYCLES
from repro.observability.bench import bench_document
from repro.service.campaign import CampaignPlan, run_service_campaign

__all__ = ["CampaignConfig", "run_campaign", "replay_seed", "REPORT_SCHEMA"]

#: schema identifier of campaign reports
REPORT_SCHEMA = "repro.conformance/1"


@dataclass
class CampaignConfig:
    """Parameters of one conformance campaign."""

    seeds: int = 50
    seed_start: int = 0
    iterations: int = 4
    quick: bool = False
    shrink: bool = True
    shape: GraphShape = field(default_factory=GraphShape)
    max_cycles: int = DEFAULT_MAX_CYCLES

    def __post_init__(self) -> None:
        if self.seeds < 1:
            raise ValueError("seeds must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")


def _crash_case(seed: int, error: str) -> Dict[str, object]:
    """Render an operation-level crash as a failing case entry."""
    return {
        "seed": seed,
        "ok": False,
        "violations": [
            {"oracle": "service", "run": "shard", "detail": error}
        ],
        "runs": {},
    }


def run_campaign(
    config: CampaignConfig,
    workers: int = 1,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    runs_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Run the campaign and return the ``repro.conformance/1`` report.

    ``workers > 1`` shards the seeds across processes; the report
    contents (modulo wall time and cache scheduling statistics) do not
    depend on the worker count.
    """
    shape_json = dataclasses.asdict(config.shape)
    seeds = list(range(config.seed_start, config.seed_start + config.seeds))
    plan = CampaignPlan(
        operation="conform.seed",
        units=[
            {
                "seed": seed,
                "iterations": config.iterations,
                "quick": config.quick,
                "shrink": config.shrink,
                "max_cycles": config.max_cycles,
                "shape": shape_json,
            }
            for seed in seeds
        ],
        workers=workers,
        use_cache=use_cache,
        cache_dir=cache_dir,
        runs_dir=runs_dir,
        quick=config.quick,
        name="conformance",
    )
    service_report = run_service_campaign(plan)

    failures: List[Dict[str, object]] = []
    cases: List[Dict[str, object]] = []
    total_cycles = 0
    by_oracle: Dict[str, int] = {}
    crash_errors = {
        f["index"]: f["error"] for f in service_report["failures"]
    }
    for index, (seed, result) in enumerate(
        zip(seeds, service_report["results"])
    ):
        if result is None:
            # crashed shard / raising operation: isolated to this seed
            case = _crash_case(
                seed, crash_errors.get(index, "operation failed")
            )
        else:
            case = result["payload"]["case"]
        total_cycles += sum(
            int(run.get("cycles", 0)) for run in case["runs"].values()
        )
        cases.append(case)
        if case["ok"]:
            continue
        for violation in case["violations"]:
            by_oracle[violation["oracle"]] = (
                by_oracle.get(violation["oracle"], 0) + 1
            )
        entry: Dict[str, object] = {
            "seed": seed,
            "violations": case["violations"],
        }
        if result is not None and "shrunk" in result["payload"]:
            entry["shrunk"] = result["payload"]["shrunk"]
        failures.append(entry)

    bench = bench_document(
        name="conformance_campaign",
        makespan_cycles=total_cycles,
        iteration_period_cycles=0.0,
        wall_seconds=service_report["bench"]["wall_seconds"],
        quick=config.quick,
        extra={
            "seeds": config.seeds,
            "seed_start": config.seed_start,
            "failing_seeds": len(failures),
            "violations_by_oracle": by_oracle,
        },
    )
    return {
        "schema": REPORT_SCHEMA,
        "seeds": config.seeds,
        "seed_start": config.seed_start,
        "iterations": config.iterations,
        "quick": config.quick,
        "shape": {
            key: getattr(config.shape, key)
            for key in (
                "min_actors",
                "max_actors",
                "max_repetition",
                "max_rate_factor",
                "dynamic_prob",
                "feedback_prob",
                "max_pes",
            )
        },
        "checked": len(cases),
        "failing_seeds": [f["seed"] for f in failures],
        "failures": failures,
        "cases": cases,
        "workers": workers,
        "cache": service_report["cache"],
        "bench": bench,
    }


def replay_seed(
    seed: int, config: Optional[CampaignConfig] = None
) -> Dict[str, object]:
    """Re-run exactly one seed; deterministic wrt. :func:`run_campaign`."""
    base = config or CampaignConfig()
    single = CampaignConfig(
        seeds=1,
        seed_start=seed,
        iterations=base.iterations,
        quick=base.quick,
        shrink=base.shrink,
        shape=base.shape,
        max_cycles=base.max_cycles,
    )
    return run_campaign(single)
