"""Seeded random graph generation for conformance campaigns.

Every spec is a pure function of ``(seed, shape)`` via one
``random.Random(seed)`` stream, so a campaign is replayable from seeds
alone and a single failing seed reproduces bit-for-bit with
``repro conform --replay <seed>``.

Topology strategy: draw the repetitions vector first, then build a
spanning DAG (every actor consumes from some earlier actor, so the graph
is connected), sprinkle extra forward edges for fan-in/fan-out and
reconvergence, and optionally close one feedback edge carrying at least
one full iteration of delay tokens (keeping a PASS admissible).
Rates are *derived* from the repetitions vector (see
:mod:`repro.conformance.spec`), which keeps every generated graph
SDF-consistent by construction — including after the shrinker removes
actors or edges.

Dynamic edges are only placed between actors with equal repetitions and
carry no delay, matching what VTS conversion accepts.
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.conformance.spec import (
    ActorSpec,
    ConnectionSpec,
    EdgeSpec,
    GraphSpec,
)

__all__ = ["GraphShape", "generate_spec"]


@dataclass(frozen=True)
class GraphShape:
    """Knobs controlling the distribution of generated graphs.

    All fields can be set from the CLI via ``--shape k=v,k=v`` (see
    :meth:`parse`).
    """

    min_actors: int = 3
    max_actors: int = 7
    max_repetition: int = 3
    max_rate_factor: int = 2
    max_cycles: int = 25
    token_bytes: int = 4
    extra_edge_prob: float = 0.35
    feedback_prob: float = 0.30
    delay_prob: float = 0.25
    max_delay_iterations: int = 2
    dynamic_prob: float = 0.25
    max_dynamic_bound: int = 4
    max_pes: int = 3
    #: probability of adding one collective (broadcast/gather) connection
    collective_prob: float = 0.0
    max_collective_branches: int = 3
    #: probability of requesting a blocking factor > 1 on a platform
    #: with accelerator PEs (the runtime clamps infeasible requests)
    batch_prob: float = 0.0
    max_batch: int = 4

    def __post_init__(self) -> None:
        if not 1 <= self.min_actors <= self.max_actors:
            raise ValueError("need 1 <= min_actors <= max_actors")
        if self.max_repetition < 1 or self.max_rate_factor < 1:
            raise ValueError("max_repetition and max_rate_factor must be >= 1")
        if self.max_cycles < 1 or self.token_bytes < 1:
            raise ValueError("max_cycles and token_bytes must be >= 1")
        if self.max_dynamic_bound < 2:
            raise ValueError("max_dynamic_bound must be >= 2")
        if self.max_pes < 1:
            raise ValueError("max_pes must be >= 1")
        if self.max_delay_iterations < 1:
            raise ValueError("max_delay_iterations must be >= 1")
        if self.max_collective_branches < 1:
            raise ValueError("max_collective_branches must be >= 1")
        if self.max_batch < 2:
            raise ValueError("max_batch must be >= 2")
        for name in ("extra_edge_prob", "feedback_prob", "delay_prob",
                     "dynamic_prob", "collective_prob", "batch_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")

    @classmethod
    def parse(cls, text: Optional[str]) -> "GraphShape":
        """Parse ``"k=v,k=v"`` overrides against the defaults.

        >>> GraphShape.parse("max_actors=5,dynamic_prob=0.5").max_actors
        5
        """
        if not text:
            return cls()
        fields = {f.name: f.type for f in dataclasses.fields(cls)}
        overrides = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"shape item {item!r} is not of the form k=v")
            key, _, raw = item.partition("=")
            key = key.strip()
            if key not in fields:
                raise ValueError(
                    f"unknown shape knob {key!r} (known: {', '.join(sorted(fields))})"
                )
            caster = float if key.endswith("_prob") else int
            try:
                overrides[key] = caster(raw.strip())
            except ValueError as exc:
                raise ValueError(f"shape knob {key!r}: {exc}") from None
        return cls(**overrides)


def _lcm(a: int, b: int) -> int:
    return a * b // math.gcd(a, b)


def _forward_edge(
    rng: random.Random, shape: GraphShape, src: ActorSpec, snk: ActorSpec
) -> EdgeSpec:
    """A forward (DAG) edge — static, possibly delayed, possibly dynamic."""
    if (
        src.repetitions == snk.repetitions
        and rng.random() < shape.dynamic_prob
    ):
        bound = rng.randint(2, shape.max_dynamic_bound)
        sequence = tuple(
            rng.randint(1, bound) for _ in range(rng.randint(1, 4))
        )
        return EdgeSpec(
            src=src.name,
            snk=snk.name,
            token_bytes=shape.token_bytes,
            dynamic=True,
            dyn_bound=bound,
            dyn_min=1,
            rate_sequence=sequence,
        )
    factor = rng.randint(1, shape.max_rate_factor)
    cons = factor * _lcm(src.repetitions, snk.repetitions) // snk.repetitions
    delay = 0
    if rng.random() < shape.delay_prob:
        # delay in whole multiples of the consumption rate keeps the
        # pipeline-offset semantics easy to reason about
        delay = cons * rng.randint(1, shape.max_delay_iterations)
    return EdgeSpec(
        src=src.name,
        snk=snk.name,
        rate_factor=factor,
        delay_tokens=delay,
        token_bytes=shape.token_bytes,
    )


def generate_spec(seed: int, shape: Optional[GraphShape] = None) -> GraphSpec:
    """Generate one replayable :class:`GraphSpec` from ``seed``."""
    shape = shape or GraphShape()
    rng = random.Random(seed)

    n_actors = rng.randint(shape.min_actors, shape.max_actors)
    actors = tuple(
        ActorSpec(
            name=f"a{i}",
            repetitions=rng.randint(1, shape.max_repetition),
            cycles=rng.randint(1, shape.max_cycles),
        )
        for i in range(n_actors)
    )

    edges = []
    # spanning DAG: every non-root actor consumes from an earlier one
    for i in range(1, n_actors):
        edges.append(
            _forward_edge(rng, shape, actors[rng.randrange(i)], actors[i])
        )
    # extra forward edges: fan-out, fan-in, reconvergent paths
    for i in range(2, n_actors):
        if rng.random() < shape.extra_edge_prob:
            edges.append(
                _forward_edge(rng, shape, actors[rng.randrange(i)], actors[i])
            )
    # optionally close one static feedback edge with >= 1 iteration of
    # delay, so the cycle stays deadlock-free (PASS admissible)
    if n_actors >= 2 and rng.random() < shape.feedback_prob:
        src_i = rng.randrange(1, n_actors)
        snk_i = rng.randrange(src_i)
        src, snk = actors[src_i], actors[snk_i]
        factor = rng.randint(1, shape.max_rate_factor)
        cons = factor * _lcm(src.repetitions, snk.repetitions) // snk.repetitions
        delay = cons * snk.repetitions * rng.randint(1, shape.max_delay_iterations)
        edges.append(
            EdgeSpec(
                src=src.name,
                snk=snk.name,
                rate_factor=factor,
                delay_tokens=delay,
                token_bytes=shape.token_bytes,
            )
        )

    # optionally one collective connection: a broadcast from an early
    # actor to later ones, or a gather from early actors into a late one
    # (hub/branch choices keep the added edges forward, so the DAG — and
    # its PASS admissibility — is preserved)
    connections = []
    # collective_prob == 0 must not touch the rng stream at all, so
    # pre-collective seeds keep generating bit-identical graphs
    if (
        shape.collective_prob > 0
        and n_actors >= 3
        and rng.random() < shape.collective_prob
    ):
        kind = rng.choice(("broadcast", "gather"))
        max_branches = min(shape.max_collective_branches, n_actors - 1)
        n_branches = rng.randint(1, max_branches)
        if kind == "broadcast":
            hub_i = rng.randrange(n_actors - n_branches)
            branch_is = rng.sample(range(hub_i + 1, n_actors), n_branches)
        else:
            hub_i = rng.randrange(n_branches, n_actors)
            branch_is = rng.sample(range(hub_i), n_branches)
        connections.append(
            ConnectionSpec(
                kind=kind,
                hub=actors[hub_i].name,
                branches=tuple(actors[i].name for i in sorted(branch_is)),
                rate_factor=rng.randint(1, shape.max_rate_factor),
                token_bytes=shape.token_bytes,
            )
        )

    n_pes = rng.randint(1, shape.max_pes)
    assignment = tuple(
        (actor.name, rng.randrange(n_pes)) for actor in actors
    )

    # optionally a blocking factor on a heterogeneous platform; like
    # collective_prob, batch_prob == 0 must not touch the rng stream so
    # pre-batching seeds keep generating bit-identical graphs
    batch = 1
    accelerators = ()
    if shape.batch_prob > 0 and rng.random() < shape.batch_prob:
        batch = rng.randint(2, shape.max_batch)
        accelerators = tuple(
            sorted(rng.sample(range(n_pes), rng.randint(1, n_pes)))
        )
    return GraphSpec(
        seed=seed,
        actors=actors,
        edges=tuple(edges),
        n_pes=n_pes,
        assignment=assignment,
        connections=tuple(connections),
        batch=batch,
        accelerators=accelerators,
    )
