"""Differential oracle stack for conformance cases.

Each case is executed under several independent implementations of the
same dataflow semantics and the observations are cross-checked:

``reference``
    Single-PE PASS interpreter (:mod:`repro.conformance.reference`).
``spi``
    The full SPI flow: protocol selection, resynchronization, self-timed
    simulation.
``spi-noresync`` *(full mode)*
    SPI with resynchronization disabled — used by the
    *resync-invariance* oracle: removing redundant synchronization must
    never change observable token order or data traffic.
``spi-ubs`` *(full mode)*
    SPI forced onto credit-windowed UBS with a tiny window, exercising
    runtime flow control that the auto policy often optimises away.
``mpi``
    The MPI-style baseline (eager/rendezvous, envelopes, matching).

Oracles applied to the collected observations:

* **token-stream** — every run's per-actor firing streams (inputs and
  outputs, recorded raw by the shared :class:`TokenTap`) equal the
  reference's.
* **occupancy** — each SPI channel's simulated buffer high-water mark
  stays within the static bound derived from the channel plan (paper
  eq. 2 via the plan's ``capacity_messages``); the bound function is
  injectable so mutation tests can verify the oracle actually bites.
* **message-count** — SPI data-message traffic equals the static
  prediction ``sum(q[send actor]) * iterations``.
* **throughput** — the measured makespan of the resynchronized SPI run
  respects the MCM lower bound once pipeline-fill slack is discounted.
* **resync-invariance** — token streams and data-message counts are
  identical with and without resynchronization.
* **execution** — no run raises (deadlock, overflow, ...); an exception
  is itself a conformance violation and is recorded with its message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.conformance.reference import run_reference
from repro.conformance.spec import ConformanceCase
from repro.mpi.baseline import MpiSystem
from repro.spi.runtime import ChannelPlan, SpiConfig, SpiSystem

__all__ = [
    "Violation",
    "OracleReport",
    "default_occupancy_bound",
    "run_oracle_stack",
    "DEFAULT_MAX_CYCLES",
]

#: generous simulation budget — generated graphs are small, so hitting
#: this means a genuine stall, which the execution oracle reports
DEFAULT_MAX_CYCLES = 5_000_000


@dataclass(frozen=True)
class Violation:
    """One oracle failure for one run of one case."""

    oracle: str
    run: str
    detail: str

    def to_json(self) -> Dict[str, str]:
        return {"oracle": self.oracle, "run": self.run, "detail": self.detail}


@dataclass
class OracleReport:
    """Outcome of the full oracle stack on one case."""

    seed: int
    violations: List[Violation] = field(default_factory=list)
    runs: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "violations": [v.to_json() for v in self.violations],
            "runs": self.runs,
        }


def default_occupancy_bound(plan: ChannelPlan) -> int:
    """Static byte bound for one channel's receive-side buffer.

    The SPI compile flow sizes each physical buffer from the protocol
    capacity (BBS: ``feedback + delay + 1`` messages, eq. 2's ``B(e)``
    expressed in messages; UBS: the credit window) plus one in-flight
    message.  Simulated occupancy must never exceed it.
    """
    return (plan.capacity_messages + 1) * plan.message_payload_bytes


def _spi_run_matrix(quick: bool) -> List[Tuple[str, SpiConfig]]:
    matrix = [("spi", SpiConfig(resynchronize=True))]
    if not quick:
        matrix.append(("spi-noresync", SpiConfig(resynchronize=False)))
        matrix.append(
            (
                "spi-ubs",
                SpiConfig(
                    protocol_policy="always_ubs",
                    ubs_window=2,
                    resynchronize=False,
                ),
            )
        )
    return matrix


def _compare_streams(
    expected: Dict[str, List[tuple]],
    actual: Dict[str, List[tuple]],
    run: str,
    oracle: str = "token-stream",
    baseline: str = "reference",
    limit: int = 3,
) -> List[Violation]:
    """Compare two recorded stream sets; report at most ``limit`` diffs."""
    violations: List[Violation] = []
    for actor in sorted(set(expected) | set(actual)):
        if len(violations) >= limit:
            break
        want = expected.get(actor, [])
        got = actual.get(actor, [])
        if len(want) != len(got):
            violations.append(
                Violation(
                    oracle,
                    run,
                    f"actor {actor!r}: {len(got)} firings recorded, "
                    f"{baseline} has {len(want)}",
                )
            )
            continue
        for index, (w, g) in enumerate(zip(want, got)):
            if w != g:
                violations.append(
                    Violation(
                        oracle,
                        run,
                        f"actor {actor!r} firing {index}: {g!r} != "
                        f"{baseline} {w!r}",
                    )
                )
                break
    return violations


def run_oracle_stack(
    case: ConformanceCase,
    iterations: int = 4,
    quick: bool = False,
    occupancy_bound_fn: Optional[Callable[[ChannelPlan], int]] = None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    cache=None,
) -> OracleReport:
    """Run every execution mode of ``case`` and cross-check them.

    ``cache`` is an optional :class:`repro.service.AnalysisCache`
    passed through to every SPI compile; the oracles themselves are
    cache-agnostic (cached and uncached runs must produce identical
    verdicts — the service test suite enforces exactly that).
    """
    bound_fn = occupancy_bound_fn or default_occupancy_bound
    report = OracleReport(seed=case.spec.seed)

    try:
        reference = run_reference(case, iterations)
    except Exception as exc:
        report.violations.append(
            Violation("execution", "reference", f"{type(exc).__name__}: {exc}")
        )
        return report
    report.runs["reference"] = {
        "firings": sum(len(v) for v in reference.values())
    }

    spi_streams: Dict[str, Dict[str, List[tuple]]] = {}
    spi_results: Dict[str, object] = {}
    for label, config in _spi_run_matrix(quick):
        try:
            system = SpiSystem.compile(
                case.graph, case.partition, config, cache=cache
            )
            case.tap.begin(label)
            result = system.run(
                iterations=iterations,
                max_cycles=max_cycles,
                check_lost_wakeups=True,
            )
        except Exception as exc:
            report.violations.append(
                Violation("execution", label, f"{type(exc).__name__}: {exc}")
            )
            continue
        streams = case.tap.streams(label)
        spi_streams[label] = streams
        spi_results[label] = result
        report.runs[label] = {
            "cycles": result.cycles,
            "data_messages": result.data_messages,
            "ack_messages": result.ack_messages,
            "resync_messages": result.resync_messages,
        }

        report.violations.extend(_compare_streams(reference, streams, label))

        for name, plan in system.channel_plans.items():
            bound = bound_fn(plan)
            high = result.buffer_high_water.get(name, 0)
            if high > bound:
                report.violations.append(
                    Violation(
                        "occupancy",
                        label,
                        f"channel {name!r}: high-water {high} B exceeds "
                        f"static bound {bound} B ({plan.protocol} with "
                        f"{plan.capacity_messages} messages x "
                        f"{plan.message_payload_bytes} B)",
                    )
                )

        insertion_graph = system.insertion.graph
        reps = system.task_repetitions()
        expected_messages = iterations * sum(
            reps[plan.send_actor] for plan in system.channel_plans.values()
        )
        if result.data_messages != expected_messages:
            report.violations.append(
                Violation(
                    "message-count",
                    label,
                    f"{result.data_messages} data messages, statically "
                    f"predicted {expected_messages}",
                )
            )

        if label == "spi":
            mcm = system.estimated_iteration_period_cycles()
            fill_slack = (
                sum(e.delay for e in insertion_graph.edges) + 1
            )
            floor = mcm * max(0, iterations - fill_slack)
            if result.cycles < floor - 1e-6:
                report.violations.append(
                    Violation(
                        "throughput",
                        label,
                        f"makespan {result.cycles} cycles beats the MCM "
                        f"bound {floor:.1f} (MCM {mcm:.1f}, fill slack "
                        f"{fill_slack} iterations)",
                    )
                )

    if "spi" in spi_streams and "spi-noresync" in spi_streams:
        report.violations.extend(
            _compare_streams(
                spi_streams["spi-noresync"],
                spi_streams["spi"],
                "spi",
                oracle="resync-invariance",
                baseline="spi-noresync",
            )
        )
        resync = spi_results["spi"]
        plain = spi_results["spi-noresync"]
        if resync.data_messages != plain.data_messages:
            report.violations.append(
                Violation(
                    "resync-invariance",
                    "spi",
                    f"resynchronization changed data traffic: "
                    f"{resync.data_messages} != {plain.data_messages}",
                )
            )

    try:
        mpi_system = MpiSystem.compile(case.graph, case.partition)
        case.tap.begin("mpi")
        mpi_result = mpi_system.run(
            iterations=iterations,
            max_cycles=max_cycles,
            check_lost_wakeups=True,
        )
    except Exception as exc:
        report.violations.append(
            Violation("execution", "mpi", f"{type(exc).__name__}: {exc}")
        )
    else:
        report.runs["mpi"] = {
            "cycles": mpi_result.cycles,
            "data_messages": mpi_result.data_messages,
        }
        report.violations.extend(
            _compare_streams(reference, case.tap.streams("mpi"), "mpi")
        )

    return report
