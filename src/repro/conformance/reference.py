"""Single-PE reference execution for conformance cases.

This is the semantic ground truth the differential oracles compare
against: a direct interpreter that fires the PASS (periodic admissible
sequential schedule) of the case's graph, moving tokens through plain
FIFOs with no timing model, no protocols and no message passing — just
SDF firing rules.  Dynamic graphs are VTS-converted first (rates become
1/1 packed tokens), and because the conversion *wraps* the original
kernels, the shared :class:`~repro.conformance.spec.TokenTap` still
observes the raw token streams, directly comparable to the SPI and MPI
runs of the same case.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from repro.conformance.spec import ConformanceCase
from repro.dataflow.sdf import build_pass
from repro.dataflow.vts import vts_convert

__all__ = ["ReferenceError", "run_reference"]


class ReferenceError(RuntimeError):
    """The reference execution itself could not complete."""


def run_reference(
    case: ConformanceCase, iterations: int, label: str = "reference"
) -> Dict[str, List[tuple]]:
    """Execute ``iterations`` graph iterations on a conceptual single PE.

    Records every firing through ``case.tap`` under ``label`` and returns
    the recorded streams (``actor name -> [(firing, inputs, outputs)]``).
    """
    if iterations < 1:
        raise ReferenceError("iterations must be >= 1")
    graph = case.graph
    if graph.is_dynamic:
        graph = vts_convert(graph).graph
    schedule = build_pass(graph)

    fifos: Dict[int, deque] = {}
    for edge in graph.edges:
        initial = edge.initial_tokens
        if initial is None:
            initial = [None] * edge.delay
        fifos[edge.edge_id] = deque(initial)

    firing_counts: Dict[str, int] = {actor.name: 0 for actor in graph.actors}
    case.tap.begin(label)
    for _ in range(iterations):
        for actor in schedule:
            index = firing_counts[actor.name]
            # Pop per member edge (a gather/reduce sink port has several
            # in-edges); assemble per port via the owning connection.
            branch_pops: Dict[str, List[tuple]] = {}
            for edge in graph.in_edges(actor):
                fifo = fifos[edge.edge_id]
                rate = edge.cons_rate
                if len(fifo) < rate:
                    raise ReferenceError(
                        f"PASS starved: {actor.name} firing {index} needs "
                        f"{rate} tokens on {edge.name!r}, has {len(fifo)}"
                    )
                values = [fifo.popleft() for _ in range(rate)]
                branch_pops.setdefault(edge.sink.name, []).append(
                    (edge.branch_index, edge.connection, values)
                )
            consumed: Dict[str, list] = {}
            for port_name, branches in branch_pops.items():
                branches.sort(key=lambda item: item[0])
                connection = branches[0][1]
                if connection is None or len(branches) == 1 and (
                    connection.kind != connection.REDUCE
                ):
                    consumed[port_name] = branches[0][2]
                else:
                    consumed[port_name] = connection.assemble(
                        [values for _, _, values in branches]
                    )
            produced = actor.fire(index, consumed)
            for edge in graph.out_edges(actor):
                tokens = produced[edge.source.name]
                if edge.connection is not None:
                    tokens = edge.connection.produced_tokens(edge, tokens)
                fifos[edge.edge_id].extend(tokens)
            firing_counts[actor.name] = index + 1
    return case.tap.streams(label)
