"""Single-PE reference execution for conformance cases.

This is the semantic ground truth the differential oracles compare
against: a direct interpreter that fires the PASS (periodic admissible
sequential schedule) of the case's graph, moving tokens through plain
FIFOs with no timing model, no protocols and no message passing — just
SDF firing rules.  Dynamic graphs are VTS-converted first (rates become
1/1 packed tokens), and because the conversion *wraps* the original
kernels, the shared :class:`~repro.conformance.spec.TokenTap` still
observes the raw token streams, directly comparable to the SPI and MPI
runs of the same case.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from repro.conformance.spec import ConformanceCase
from repro.dataflow.sdf import build_pass
from repro.dataflow.vts import vts_convert

__all__ = ["ReferenceError", "run_reference"]


class ReferenceError(RuntimeError):
    """The reference execution itself could not complete."""


def run_reference(
    case: ConformanceCase, iterations: int, label: str = "reference"
) -> Dict[str, List[tuple]]:
    """Execute ``iterations`` graph iterations on a conceptual single PE.

    Records every firing through ``case.tap`` under ``label`` and returns
    the recorded streams (``actor name -> [(firing, inputs, outputs)]``).
    """
    if iterations < 1:
        raise ReferenceError("iterations must be >= 1")
    graph = case.graph
    if graph.is_dynamic:
        graph = vts_convert(graph).graph
    schedule = build_pass(graph)

    fifos: Dict[int, deque] = {}
    for edge in graph.edges:
        initial = edge.initial_tokens
        if initial is None:
            initial = [None] * edge.delay
        fifos[edge.edge_id] = deque(initial)

    firing_counts: Dict[str, int] = {actor.name: 0 for actor in graph.actors}
    case.tap.begin(label)
    for _ in range(iterations):
        for actor in schedule:
            index = firing_counts[actor.name]
            consumed: Dict[str, list] = {}
            for edge in graph.in_edges(actor):
                fifo = fifos[edge.edge_id]
                rate = edge.sink.rate
                if len(fifo) < rate:
                    raise ReferenceError(
                        f"PASS starved: {actor.name} firing {index} needs "
                        f"{rate} tokens on {edge.name!r}, has {len(fifo)}"
                    )
                consumed[edge.sink.name] = [fifo.popleft() for _ in range(rate)]
            produced = actor.fire(index, consumed)
            for edge in graph.out_edges(actor):
                fifos[edge.edge_id].extend(produced[edge.source.name])
            firing_counts[actor.name] = index + 1
    return case.tap.streams(label)
