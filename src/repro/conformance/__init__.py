"""Conformance subsystem: fuzzing, differential oracles, shrinking.

The machine-checked statement of the paper's equivalence claim: SPI's
compile-time analysis (repetitions vector, VTS bounds, resynchronized
self-timed schedules) and its simulated runtime stay semantically
identical to an MPI-style baseline and to a single-PE reference
execution, over arbitrarily many generated graphs.

Entry points:

* :func:`generate_spec` / :class:`GraphShape` — seeded graph generation
* :func:`build_case` / :class:`GraphSpec` — spec materialisation
* :func:`run_oracle_stack` — the differential oracle battery
* :func:`shrink` — counterexample minimisation
* :func:`run_campaign` / :func:`replay_seed` — campaign driver behind
  the ``repro conform`` CLI subcommand
"""

from repro.conformance.generator import GraphShape, generate_spec
from repro.conformance.oracles import (
    DEFAULT_MAX_CYCLES,
    OracleReport,
    Violation,
    default_occupancy_bound,
    run_oracle_stack,
)
from repro.conformance.reference import ReferenceError, run_reference
from repro.conformance.runner import (
    REPORT_SCHEMA,
    CampaignConfig,
    replay_seed,
    run_campaign,
)
from repro.conformance.shrinker import (
    ShrinkResult,
    load_replay_file,
    oracle_failure_predicate,
    render_pytest_repro,
    shrink,
    write_replay_file,
)
from repro.conformance.spec import (
    CONFORMANCE_ACCELERATOR,
    ActorSpec,
    ConformanceCase,
    EdgeSpec,
    GraphSpec,
    SpecError,
    TokenTap,
    build_case,
)

__all__ = [
    "ActorSpec",
    "CONFORMANCE_ACCELERATOR",
    "CampaignConfig",
    "ConformanceCase",
    "DEFAULT_MAX_CYCLES",
    "EdgeSpec",
    "GraphShape",
    "GraphSpec",
    "OracleReport",
    "REPORT_SCHEMA",
    "ReferenceError",
    "ShrinkResult",
    "SpecError",
    "TokenTap",
    "Violation",
    "build_case",
    "default_occupancy_bound",
    "generate_spec",
    "load_replay_file",
    "oracle_failure_predicate",
    "render_pytest_repro",
    "replay_seed",
    "run_campaign",
    "run_oracle_stack",
    "run_reference",
    "shrink",
    "write_replay_file",
]
