"""Command-line interface for the SPI reproduction.

Regenerate the paper's tables and figures, or inspect a compiled
system, without writing any code::

    python -m repro.cli fig6            # actor-D scaling series
    python -m repro.cli fig7            # particle-filter scaling series
    python -m repro.cli table1          # LPC 4-PE resource table
    python -m repro.cli table2          # PF 2-PE resource table
    python -m repro.cli resync          # fig. 3/5 ack-removal summary
    python -m repro.cli trace           # Gantt chart of a pipelined chain
    python -m repro.cli run --app lpc --trace-out trace.json \
        --metrics-out metrics.json      # instrumented run + exports
    python -m repro.cli conform --seeds 200 --out report.json
    python -m repro.cli conform --replay 137  # re-run one failing seed

``conform`` runs the differential conformance campaign (see
``TESTING.md``): seeded random graphs executed under SPI, MPI and a
single-PE reference, cross-checked by the oracle stack, failures shrunk
to minimal replayable counterexamples.

``run`` executes one example application fully instrumented and writes
the observability artefacts: a Chrome/Perfetto-loadable trace JSON
(``--trace-out``, open at https://ui.perfetto.dev) and the validated
metrics JSON (``--metrics-out``), printing the human summary either way.

Options common to all commands: ``--clock-mhz`` (default 100) and
``--iterations``.  The full parameter sweeps (more points, CSV
artefacts) live in ``benchmarks/``; the CLI favours fast feedback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import Figure, render_table
from repro.platform import VIRTEX4_SX35
from repro.spi import SpiConfig, SpiSystem

__all__ = ["main", "build_parser"]


def _cmd_fig6(args: argparse.Namespace) -> int:
    from repro.apps.lpc import build_parallel_error_graph, frame_stream

    figure = Figure(
        title="Figure 6: performance results for actor D of application 1",
        x_label="Sample size",
        y_label=f"Execution time (us) at {args.clock_mhz:.0f} MHz",
    )
    sizes = (128, 256, 512)
    for n in (1, 2, 3, 4):
        series = figure.add_series(f"n={n}")
        for size in sizes:
            frames = frame_stream(total_samples=2 * size, frame_size=size)
            system = build_parallel_error_graph(frames, order=8, n_units=n)
            result = SpiSystem.compile(system.graph, system.partition).run(
                iterations=args.iterations
            )
            series.add(size, result.iteration_period_cycles / args.clock_mhz)
    print(figure.render())
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    from repro.apps.particle_filter import (
        CrackGrowthModel,
        build_particle_filter_graph,
        simulate_crack_history,
    )

    model = CrackGrowthModel()
    _, observations = simulate_crack_history(model, steps=args.iterations)
    figure = Figure(
        title="Figure 7: performance results for application 2",
        x_label="No. of particles",
        y_label=f"Execution time (us) at {args.clock_mhz:.0f} MHz",
    )
    for n in (1, 2):
        series = figure.add_series(f"n={n}")
        for particles in (50, 100, 200, 300):
            system = build_particle_filter_graph(
                model, observations, n_particles=particles, n_pes=n
            )
            result = SpiSystem.compile(system.graph, system.partition).run(
                iterations=args.iterations
            )
            series.add(
                particles, result.iteration_period_cycles / args.clock_mhz
            )
    print(figure.render())
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.apps.lpc import build_parallel_error_graph, frame_stream

    frames = frame_stream(total_samples=2 * 256, frame_size=256)
    system = build_parallel_error_graph(frames, order=8, n_units=4)
    compiled = SpiSystem.compile(system.graph, system.partition)
    print(
        compiled.fpga_report(
            device=VIRTEX4_SX35,
            title=(
                "Table 1: FPGA resources, 4-PE implementation of actor D "
                "(application 1)"
            ),
        ).render()
    )
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.apps.particle_filter import (
        CrackGrowthModel,
        build_particle_filter_graph,
        simulate_crack_history,
    )

    model = CrackGrowthModel()
    _, observations = simulate_crack_history(model, steps=6)
    system = build_particle_filter_graph(
        model, observations, n_particles=200, n_pes=2
    )
    compiled = SpiSystem.compile(system.graph, system.partition)
    print(
        compiled.fpga_report(
            device=VIRTEX4_SX35,
            title=(
                "Table 2: FPGA resources, 2-PE implementation of "
                "application 2"
            ),
        ).render()
    )
    return 0


def _cmd_resync(args: argparse.Namespace) -> int:
    from repro.apps.lpc import build_parallel_error_graph, frame_stream
    from repro.apps.particle_filter import (
        CrackGrowthModel,
        build_particle_filter_graph,
        simulate_crack_history,
    )

    rows = []
    frames = frame_stream(total_samples=2 * 256, frame_size=256)
    lpc = build_parallel_error_graph(frames, order=8, n_units=3)
    model = CrackGrowthModel()
    _, observations = simulate_crack_history(model, steps=4)
    pf = build_particle_filter_graph(
        model, observations, n_particles=100, n_pes=2
    )
    for label, system in (
        ("LPC actor D, 3 PEs (fig. 3)", lpc),
        ("particle filter, 2 PEs (fig. 5)", pf),
    ):
        raw = SpiSystem.compile(
            system.graph,
            system.partition,
            SpiConfig(protocol_policy="always_ubs", resynchronize=False),
        ).run(iterations=4)
        optimised = SpiSystem.compile(
            system.graph,
            system.partition,
            SpiConfig(protocol_policy="always_ubs", resynchronize=True),
        ).run(iterations=4)
        rows.append(
            [
                label,
                str(raw.sync_messages),
                str(optimised.sync_messages),
                str(raw.wire_bytes - optimised.wire_bytes),
            ]
        )
    print(
        render_table(
            [
                "system",
                "sync msgs (raw UBS)",
                "sync msgs (resync)",
                "wire bytes saved",
            ],
            rows,
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.dataflow import DataflowGraph
    from repro.mapping import Partition, auto_pipeline

    graph = DataflowGraph("chain")
    stages = [("load", 400), ("transform", 500), ("store", 300)]
    actors = [graph.actor(name, cycles=c) for name, c in stages]
    for left, right in zip(actors, actors[1:]):
        out = left.add_output(f"to_{right.name}")
        inp = right.add_input(f"from_{left.name}")
        graph.connect(out, inp)
    result = auto_pipeline(graph, stages=3)
    partition = Partition.manual(result.graph, result.stages)
    system = SpiSystem.compile(result.graph, partition)
    run = system.run(iterations=args.iterations, trace=True)
    print(run.trace.gantt(width=72, upto=min(run.cycles, 4000)))
    print(
        f"\nperiod: {run.iteration_period_cycles:.0f} cycles "
        f"(MCM bound {system.estimated_iteration_period_cycles():.0f}); "
        f"sync messages/iteration: "
        f"{run.sync_messages / run.iterations:.1f}"
    )
    return 0


def _build_app_system(app: str, pes: int, iterations: int):
    """Build one of the example applications for ``repro run``."""
    if app == "lpc":
        from repro.apps.lpc import build_parallel_error_graph, frame_stream

        frames = frame_stream(total_samples=2 * 256, frame_size=256)
        return build_parallel_error_graph(frames, order=8, n_units=pes)
    if app == "pf":
        from repro.apps.particle_filter import (
            CrackGrowthModel,
            build_particle_filter_graph,
            simulate_crack_history,
        )

        model = CrackGrowthModel()
        _, observations = simulate_crack_history(
            model, steps=max(4, iterations)
        )
        return build_particle_filter_graph(
            model, observations, n_particles=100, n_pes=min(pes, 2)
        )
    if app == "chain":
        from repro.dataflow import DataflowGraph
        from repro.mapping import Partition, auto_pipeline

        graph = DataflowGraph("chain")
        stages = [("load", 400), ("transform", 500), ("store", 300)]
        actors = [graph.actor(name, cycles=c) for name, c in stages]
        for left, right in zip(actors, actors[1:]):
            out = left.add_output(f"to_{right.name}")
            inp = right.add_input(f"from_{left.name}")
            graph.connect(out, inp)
        result = auto_pipeline(graph, stages=min(pes, len(stages)))

        class _System:
            pass

        system = _System()
        system.graph = result.graph
        system.partition = Partition.manual(result.graph, result.stages)
        return system
    raise ValueError(f"unknown app {app!r}")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.analysis import render_metrics_summary
    from repro.observability import chrome_trace, write_json

    system = _build_app_system(args.app, args.pes, args.iterations)
    compiled = SpiSystem.compile(
        system.graph, system.partition, SpiConfig(transport=args.transport)
    )
    run = compiled.run(iterations=args.iterations, trace=True, metrics=True)
    print(render_metrics_summary(run.metrics))
    if args.trace_out:
        path = write_json(
            args.trace_out,
            chrome_trace(
                run.trace, run.message_log, clock_mhz=args.clock_mhz
            ),
        )
        print(f"\nwrote Chrome trace (load in Perfetto): {path}")
    if args.metrics_out:
        path = write_json(args.metrics_out, run.metrics)
        print(f"wrote metrics JSON: {path}")
    return 0


def _cmd_conform(args: argparse.Namespace) -> int:
    from repro.conformance import CampaignConfig, GraphShape, run_campaign
    from repro.observability import write_json

    if args.replay is not None and args.seeds is not None:
        print(
            "error: --replay and --seeds are mutually exclusive "
            "(--replay re-runs exactly one seed)",
            file=sys.stderr,
        )
        return 2
    try:
        shape = GraphShape.parse(args.shape)
    except ValueError as exc:
        print(f"error: --shape: {exc}", file=sys.stderr)
        return 2

    if args.replay is not None:
        seeds, seed_start = 1, args.replay
    else:
        seeds = args.seeds if args.seeds is not None else 50
        seed_start = args.seed_start
    try:
        config = CampaignConfig(
            seeds=seeds,
            seed_start=seed_start,
            iterations=args.iterations,
            quick=args.quick,
            shrink=not args.no_shrink,
            shape=shape,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    report = run_campaign(config)
    failing = report["failing_seeds"]
    mode = "quick" if config.quick else "full"
    print(
        f"conformance: checked {report['checked']} seed(s) "
        f"[{seed_start}..{seed_start + seeds - 1}] in {mode} mode, "
        f"{len(failing)} failing"
    )
    print(
        f"wall: {report['bench']['wall_seconds']:.2f} s, "
        f"simulated cycles: {report['bench']['makespan_cycles']}"
    )
    for failure in report["failures"]:
        first = failure["violations"][0]
        line = (
            f"  seed {failure['seed']}: [{first['oracle']}/{first['run']}] "
            f"{first['detail']}"
        )
        shrunk = failure.get("shrunk")
        if shrunk:
            line += (
                f" (shrunk to {shrunk['actors']} actors / "
                f"{shrunk['edges']} edges)"
            )
        print(line)
    if args.out:
        path = write_json(args.out, report)
        print(f"wrote conformance report: {path}")
    return 1 if failing else 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.apps.lpc import build_parallel_error_graph, frame_stream
    from repro.apps.particle_filter import (
        CrackGrowthModel,
        build_particle_filter_graph,
        simulate_crack_history,
    )

    frames = frame_stream(total_samples=2 * 256, frame_size=256)
    lpc = build_parallel_error_graph(frames, order=8, n_units=3)
    model = CrackGrowthModel()
    _, observations = simulate_crack_history(model, steps=4)
    pf = build_particle_filter_graph(
        model, observations, n_particles=100, n_pes=2
    )
    for system in (lpc, pf):
        compiled = SpiSystem.compile(system.graph, system.partition)
        print(compiled.describe())
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="SPI reproduction: regenerate the paper's evaluation",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler, description in (
        ("fig6", _cmd_fig6, "actor-D execution time vs sample size"),
        ("fig7", _cmd_fig7, "particle-filter execution time vs N"),
        ("table1", _cmd_table1, "LPC 4-PE FPGA resource table"),
        ("table2", _cmd_table2, "PF 2-PE FPGA resource table"),
        ("resync", _cmd_resync, "resynchronization savings (figs. 3/5)"),
        ("trace", _cmd_trace, "Gantt trace of a pipelined chain"),
        ("describe", _cmd_describe, "compilation reports of both apps"),
        ("run", _cmd_run, "instrumented run with trace/metrics export"),
        ("conform", _cmd_conform, "differential conformance campaign"),
    ):
        command = sub.add_parser(name, help=description)
        command.add_argument(
            "--clock-mhz", type=float, default=100.0,
            help="simulated clock frequency (default 100)",
        )
        command.add_argument(
            "--iterations", type=int, default=5,
            help="graph iterations to simulate (default 5)",
        )
        command.set_defaults(handler=handler)
        if name == "run":
            command.add_argument(
                "--app", choices=("lpc", "pf", "chain"), required=True,
                help="example application to execute",
            )
            command.add_argument(
                "--pes", type=int, default=3,
                help="parallel units / PEs to map onto (default 3)",
            )
            command.add_argument(
                "--transport",
                choices=("p2p", "shared_bus", "ordered_bus"),
                default="p2p",
                help="data transport model (default p2p)",
            )
            command.add_argument(
                "--trace-out", metavar="PATH", default=None,
                help="write a Chrome/Perfetto trace JSON here",
            )
            command.add_argument(
                "--metrics-out", metavar="PATH", default=None,
                help="write the metrics JSON document here",
            )
        if name == "conform":
            command.add_argument(
                "--seeds", type=int, default=None, metavar="N",
                help="number of seeds to check (default 50)",
            )
            command.add_argument(
                "--seed-start", type=int, default=0, metavar="S",
                help="first seed of the campaign (default 0)",
            )
            command.add_argument(
                "--shape", default=None, metavar="K=V,...",
                help=(
                    "generator shape overrides, e.g. "
                    "'max_actors=5,dynamic_prob=0.5'"
                ),
            )
            command.add_argument(
                "--replay", type=int, default=None, metavar="SEED",
                help="re-run exactly one seed (conflicts with --seeds)",
            )
            command.add_argument(
                "--out", metavar="PATH", default=None,
                help="write the campaign report JSON here",
            )
            command.add_argument(
                "--quick", action="store_true",
                help="skip the no-resync and forced-UBS SPI runs",
            )
            command.add_argument(
                "--no-shrink", action="store_true",
                help="report failures without shrinking them",
            )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.clock_mhz <= 0:
        print("error: --clock-mhz must be positive", file=sys.stderr)
        return 2
    if args.iterations < 1:
        print("error: --iterations must be >= 1", file=sys.stderr)
        return 2
    if getattr(args, "pes", 1) < 1:
        print("error: --pes must be >= 1", file=sys.stderr)
        return 2
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
