"""Command-line interface for the SPI reproduction.

Regenerate the paper's tables and figures, or inspect a compiled
system, without writing any code::

    python -m repro.cli fig6            # actor-D scaling series
    python -m repro.cli fig7            # particle-filter scaling series
    python -m repro.cli table1          # LPC 4-PE resource table
    python -m repro.cli table2          # PF 2-PE resource table
    python -m repro.cli resync          # fig. 3/5 ack-removal summary
    python -m repro.cli trace           # Gantt chart of a pipelined chain
    python -m repro.cli run --app lpc --trace-out trace.json \
        --metrics-out metrics.json      # instrumented run + exports
    python -m repro.cli conform --seeds 200 --out report.json
    python -m repro.cli conform --replay 137  # re-run one failing seed

``conform`` runs the differential conformance campaign (see
``TESTING.md``): seeded random graphs executed under SPI, MPI and a
single-PE reference, cross-checked by the oracle stack, failures shrunk
to minimal replayable counterexamples.

``run`` executes one example application fully instrumented and writes
the observability artefacts: a Chrome/Perfetto-loadable trace JSON
(``--trace-out``, open at https://ui.perfetto.dev) and the validated
metrics JSON (``--metrics-out``), printing the human summary either way.

Options common to all commands: ``--clock-mhz`` (default 100) and
``--iterations``.  The full parameter sweeps (more points, CSV
artefacts) live in ``benchmarks/``; the CLI favours fast feedback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import Figure, render_table
from repro.platform import VIRTEX4_SX35
from repro.spi import SpiConfig, SpiSystem

__all__ = ["main", "build_parser"]


def _cmd_fig6(args: argparse.Namespace) -> int:
    from repro.apps.lpc import build_parallel_error_graph, frame_stream

    figure = Figure(
        title="Figure 6: performance results for actor D of application 1",
        x_label="Sample size",
        y_label=f"Execution time (us) at {args.clock_mhz:.0f} MHz",
    )
    sizes = (128, 256, 512)
    for n in (1, 2, 3, 4):
        series = figure.add_series(f"n={n}")
        for size in sizes:
            frames = frame_stream(total_samples=2 * size, frame_size=size)
            system = build_parallel_error_graph(frames, order=8, n_units=n)
            result = SpiSystem.compile(system.graph, system.partition).run(
                iterations=args.iterations
            )
            series.add(size, result.iteration_period_cycles / args.clock_mhz)
    print(figure.render())
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    from repro.apps.particle_filter import (
        CrackGrowthModel,
        build_particle_filter_graph,
        simulate_crack_history,
    )

    model = CrackGrowthModel()
    _, observations = simulate_crack_history(model, steps=args.iterations)
    figure = Figure(
        title="Figure 7: performance results for application 2",
        x_label="No. of particles",
        y_label=f"Execution time (us) at {args.clock_mhz:.0f} MHz",
    )
    for n in (1, 2):
        series = figure.add_series(f"n={n}")
        for particles in (50, 100, 200, 300):
            system = build_particle_filter_graph(
                model, observations, n_particles=particles, n_pes=n
            )
            result = SpiSystem.compile(system.graph, system.partition).run(
                iterations=args.iterations
            )
            series.add(
                particles, result.iteration_period_cycles / args.clock_mhz
            )
    print(figure.render())
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.apps.lpc import build_parallel_error_graph, frame_stream

    frames = frame_stream(total_samples=2 * 256, frame_size=256)
    system = build_parallel_error_graph(frames, order=8, n_units=4)
    compiled = SpiSystem.compile(system.graph, system.partition)
    print(
        compiled.fpga_report(
            device=VIRTEX4_SX35,
            title=(
                "Table 1: FPGA resources, 4-PE implementation of actor D "
                "(application 1)"
            ),
        ).render()
    )
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.apps.particle_filter import (
        CrackGrowthModel,
        build_particle_filter_graph,
        simulate_crack_history,
    )

    model = CrackGrowthModel()
    _, observations = simulate_crack_history(model, steps=6)
    system = build_particle_filter_graph(
        model, observations, n_particles=200, n_pes=2
    )
    compiled = SpiSystem.compile(system.graph, system.partition)
    print(
        compiled.fpga_report(
            device=VIRTEX4_SX35,
            title=(
                "Table 2: FPGA resources, 2-PE implementation of "
                "application 2"
            ),
        ).render()
    )
    return 0


def _cmd_resync(args: argparse.Namespace) -> int:
    from repro.service import run_operation

    rows = []
    for label, app, pes in (
        ("LPC actor D, 3 PEs (fig. 3)", "lpc", 3),
        ("particle filter, 2 PEs (fig. 5)", "pf", 2),
    ):
        result = run_operation(
            "ablate.resync", {"app": app, "pes": pes, "iterations": 4}
        )
        rows.append(
            [
                label,
                str(result.payload["sync_messages_raw"]),
                str(result.payload["sync_messages_resync"]),
                str(result.payload["wire_bytes_saved"]),
            ]
        )
    print(
        render_table(
            [
                "system",
                "sync msgs (raw UBS)",
                "sync msgs (resync)",
                "wire bytes saved",
            ],
            rows,
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.dataflow import DataflowGraph
    from repro.mapping import Partition, auto_pipeline

    graph = DataflowGraph("chain")
    stages = [("load", 400), ("transform", 500), ("store", 300)]
    actors = [graph.actor(name, cycles=c) for name, c in stages]
    for left, right in zip(actors, actors[1:]):
        out = left.add_output(f"to_{right.name}")
        inp = right.add_input(f"from_{left.name}")
        graph.connect(out, inp)
    result = auto_pipeline(graph, stages=3)
    partition = Partition.manual(result.graph, result.stages)
    system = SpiSystem.compile(result.graph, partition)
    run = system.run(iterations=args.iterations, trace=True)
    print(run.trace.gantt(width=72, upto=min(run.cycles, 4000)))
    print(
        f"\nperiod: {run.iteration_period_cycles:.0f} cycles "
        f"(MCM bound {system.estimated_iteration_period_cycles():.0f}); "
        f"sync messages/iteration: "
        f"{run.sync_messages / run.iterations:.1f}"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.analysis import render_metrics_summary
    from repro.observability import chrome_trace, write_json
    from repro.service.operations import build_app_system

    system = build_app_system(args.app, args.pes, args.iterations)
    compiled = SpiSystem.compile(
        system.graph, system.partition, SpiConfig(transport=args.transport)
    )
    # Extrapolated iterations record no task intervals, so steady-state
    # runs skip the execution trace (and the Chrome-trace export).
    want_trace = args.steady_state == "off"
    run = compiled.run(
        iterations=args.iterations,
        trace=want_trace,
        metrics=True,
        steady_state=args.steady_state,
    )
    print(render_metrics_summary(run.metrics))
    if args.trace_out and run.trace is None:
        print(
            "note: --trace-out ignored (steady-state runs record no "
            "execution trace)"
        )
    elif args.trace_out:
        path = write_json(
            args.trace_out,
            chrome_trace(
                run.trace, run.message_log, clock_mhz=args.clock_mhz
            ),
        )
        print(f"\nwrote Chrome trace (load in Perfetto): {path}")
    if args.metrics_out:
        path = write_json(args.metrics_out, run.metrics)
        print(f"wrote metrics JSON: {path}")
    return 0


def _cmd_conform(args: argparse.Namespace) -> int:
    from repro.conformance import CampaignConfig, GraphShape, run_campaign
    from repro.observability import write_json

    if args.replay is not None and args.seeds is not None:
        print(
            "error: --replay and --seeds are mutually exclusive "
            "(--replay re-runs exactly one seed)",
            file=sys.stderr,
        )
        return 2
    try:
        shape = GraphShape.parse(args.shape)
    except ValueError as exc:
        print(f"error: --shape: {exc}", file=sys.stderr)
        return 2

    if args.replay is not None:
        seeds, seed_start = 1, args.replay
    else:
        seeds = args.seeds if args.seeds is not None else 50
        seed_start = args.seed_start
    try:
        config = CampaignConfig(
            seeds=seeds,
            seed_start=seed_start,
            iterations=args.iterations,
            quick=args.quick,
            shrink=not args.no_shrink,
            shape=shape,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    report = run_campaign(config, workers=args.workers)
    failing = report["failing_seeds"]
    mode = "quick" if config.quick else "full"
    print(
        f"conformance: checked {report['checked']} seed(s) "
        f"[{seed_start}..{seed_start + seeds - 1}] in {mode} mode, "
        f"{len(failing)} failing"
    )
    print(
        f"wall: {report['bench']['wall_seconds']:.2f} s, "
        f"simulated cycles: {report['bench']['makespan_cycles']}"
    )
    for failure in report["failures"]:
        first = failure["violations"][0]
        line = (
            f"  seed {failure['seed']}: [{first['oracle']}/{first['run']}] "
            f"{first['detail']}"
        )
        shrunk = failure.get("shrunk")
        if shrunk:
            line += (
                f" (shrunk to {shrunk['actors']} actors / "
                f"{shrunk['edges']} edges)"
            )
        print(line)
    if args.out:
        path = write_json(args.out, report)
        print(f"wrote conformance report: {path}")
    return 1 if failing else 0


def _parse_param_value(raw: str) -> object:
    """Best-effort typing for ``--param k=v`` values."""
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw


def _campaign_units(args: argparse.Namespace) -> List[dict]:
    """Build the unit list for ``repro campaign``."""
    if args.op == "conform.seed":
        from repro.conformance import GraphShape
        import dataclasses

        shape = dataclasses.asdict(GraphShape.parse(args.shape))
        seeds = args.seeds if args.seeds is not None else 50
        units = []
        for index in range(seeds):
            offset = index % args.distinct if args.distinct else index
            units.append(
                {
                    "seed": args.seed_start + offset,
                    "iterations": args.iterations,
                    "quick": args.quick,
                    "shrink": not args.no_shrink,
                    "shape": shape,
                }
            )
        return units
    params = {}
    for item in args.param or ():
        if "=" not in item:
            raise ValueError(
                f"--param expects KEY=VALUE, got {item!r}"
            )
        key, _, value = item.partition("=")
        params[key] = _parse_param_value(value)
    return [dict(params) for _ in range(args.count)]


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.service import (
        CampaignPlan,
        RegistryError,
        list_operations,
        run_service_campaign,
    )

    if args.list_ops:
        for operation in list_operations():
            print(f"{operation.name}: {operation.description}")
            for param in operation.spec.params:
                extras = []
                if param.required:
                    extras.append("required")
                else:
                    extras.append(f"default {param.default!r}")
                if param.choices:
                    extras.append(f"one of {list(param.choices)}")
                if param.minimum is not None:
                    extras.append(f">= {param.minimum}")
                print(
                    f"  {param.name} ({param.type.__name__}, "
                    f"{', '.join(extras)})"
                )
        return 0
    if not args.op:
        print("error: --op is required (or use --list-ops)", file=sys.stderr)
        return 2

    try:
        units = _campaign_units(args)
        plan = CampaignPlan(
            operation=args.op,
            units=units,
            workers=args.workers,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            runs_dir=args.runs_dir,
            quick=args.quick,
        )
        report = run_service_campaign(plan)
    except (RegistryError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    wall = max(report["bench"]["wall_seconds"], 1e-9)
    cache = report["cache"]
    print(
        f"campaign: {report['operation']} x {report['units']} unit(s) on "
        f"{report['workers']} worker(s): {report['completed']} completed, "
        f"{len(report['failures'])} failed"
    )
    print(
        f"wall: {wall:.2f} s ({report['units'] / wall:.1f} runs/s), "
        f"cache: {cache['hits']} hits / {cache['misses']} misses "
        f"(hit rate {cache['hit_rate']:.2f})"
    )
    failing_cases = 0
    if args.op == "conform.seed":
        for result in report["results"]:
            if result is not None and not result["payload"]["case"]["ok"]:
                failing_cases += 1
        if failing_cases:
            print(f"conformance: {failing_cases} unit(s) with violations")
    for failure in report["failures"]:
        first_line = str(failure["error"]).splitlines()[0]
        print(f"  {failure['run_id']}: {first_line}")
    if args.out:
        from repro.observability import write_json

        path = write_json(args.out, report)
        print(f"wrote campaign report: {path}")
    return 1 if (report["failures"] or failing_cases) else 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.apps.lpc import build_parallel_error_graph, frame_stream
    from repro.apps.particle_filter import (
        CrackGrowthModel,
        build_particle_filter_graph,
        simulate_crack_history,
    )

    frames = frame_stream(total_samples=2 * 256, frame_size=256)
    lpc = build_parallel_error_graph(frames, order=8, n_units=3)
    model = CrackGrowthModel()
    _, observations = simulate_crack_history(model, steps=4)
    pf = build_particle_filter_graph(
        model, observations, n_particles=100, n_pes=2
    )
    for system in (lpc, pf):
        compiled = SpiSystem.compile(system.graph, system.partition)
        print(compiled.describe())
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="SPI reproduction: regenerate the paper's evaluation",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler, description in (
        ("fig6", _cmd_fig6, "actor-D execution time vs sample size"),
        ("fig7", _cmd_fig7, "particle-filter execution time vs N"),
        ("table1", _cmd_table1, "LPC 4-PE FPGA resource table"),
        ("table2", _cmd_table2, "PF 2-PE FPGA resource table"),
        ("resync", _cmd_resync, "resynchronization savings (figs. 3/5)"),
        ("trace", _cmd_trace, "Gantt trace of a pipelined chain"),
        ("describe", _cmd_describe, "compilation reports of both apps"),
        ("run", _cmd_run, "instrumented run with trace/metrics export"),
        ("conform", _cmd_conform, "differential conformance campaign"),
        ("campaign", _cmd_campaign, "sharded campaign of run operations"),
    ):
        command = sub.add_parser(name, help=description)
        command.add_argument(
            "--clock-mhz", type=float, default=100.0,
            help="simulated clock frequency (default 100)",
        )
        command.add_argument(
            "--iterations", type=int, default=5,
            help="graph iterations to simulate (default 5)",
        )
        command.set_defaults(handler=handler)
        if name == "run":
            command.add_argument(
                "--app", choices=("lpc", "pf", "chain"), required=True,
                help="example application to execute",
            )
            command.add_argument(
                "--pes", type=int, default=3,
                help="parallel units / PEs to map onto (default 3)",
            )
            command.add_argument(
                "--transport",
                choices=("p2p", "shared_bus", "ordered_bus"),
                default="p2p",
                help="data transport model (default p2p)",
            )
            command.add_argument(
                "--trace-out", metavar="PATH", default=None,
                help="write a Chrome/Perfetto trace JSON here",
            )
            command.add_argument(
                "--metrics-out", metavar="PATH", default=None,
                help="write the metrics JSON document here",
            )
            command.add_argument(
                "--steady-state", choices=("on", "off", "auto"),
                default="off",
                help=(
                    "periodic-phase extrapolation: detect the steady "
                    "state and skip whole periods analytically "
                    "(disables the execution trace; default off)"
                ),
            )
        if name == "conform":
            command.add_argument(
                "--seeds", type=int, default=None, metavar="N",
                help="number of seeds to check (default 50)",
            )
            command.add_argument(
                "--seed-start", type=int, default=0, metavar="S",
                help="first seed of the campaign (default 0)",
            )
            command.add_argument(
                "--shape", default=None, metavar="K=V,...",
                help=(
                    "generator shape overrides, e.g. "
                    "'max_actors=5,dynamic_prob=0.5'"
                ),
            )
            command.add_argument(
                "--replay", type=int, default=None, metavar="SEED",
                help="re-run exactly one seed (conflicts with --seeds)",
            )
            command.add_argument(
                "--out", metavar="PATH", default=None,
                help="write the campaign report JSON here",
            )
            command.add_argument(
                "--quick", action="store_true",
                help="skip the no-resync and forced-UBS SPI runs",
            )
            command.add_argument(
                "--no-shrink", action="store_true",
                help="report failures without shrinking them",
            )
            command.add_argument(
                "--workers", type=int, default=1, metavar="N",
                help="shard the campaign across N processes (default 1)",
            )
        if name == "campaign":
            command.add_argument(
                "--list-ops", action="store_true",
                help="list registered operations and their parameters",
            )
            command.add_argument(
                "--op", default=None, metavar="NAME",
                help="operation to run (see --list-ops)",
            )
            command.add_argument(
                "--seeds", type=int, default=None, metavar="N",
                help="conform.seed: number of units (default 50)",
            )
            command.add_argument(
                "--seed-start", type=int, default=0, metavar="S",
                help="conform.seed: first seed (default 0)",
            )
            command.add_argument(
                "--distinct", type=int, default=0, metavar="D",
                help=(
                    "conform.seed: cycle through D distinct seeds "
                    "(repeated-graph workload; 0 = all distinct)"
                ),
            )
            command.add_argument(
                "--shape", default=None, metavar="K=V,...",
                help="conform.seed: generator shape overrides",
            )
            command.add_argument(
                "--quick", action="store_true",
                help="conform.seed: skip the full-mode SPI run matrix",
            )
            command.add_argument(
                "--no-shrink", action="store_true",
                help="conform.seed: report failures without shrinking",
            )
            command.add_argument(
                "--param", action="append", metavar="K=V",
                help="operation parameter (repeatable; non-conform ops)",
            )
            command.add_argument(
                "--count", type=int, default=1, metavar="N",
                help="number of unit replicas for non-conform ops",
            )
            command.add_argument(
                "--workers", type=int, default=1, metavar="N",
                help="shard pool size (default 1 = inline)",
            )
            command.add_argument(
                "--no-cache", action="store_true",
                help="disable the content-addressed analysis cache",
            )
            command.add_argument(
                "--cache-dir", metavar="DIR", default=None,
                help="share cache entries across shards via this directory",
            )
            command.add_argument(
                "--runs-dir", metavar="DIR", default=None,
                help="persist one run-lifecycle record JSON per unit here",
            )
            command.add_argument(
                "--out", metavar="PATH", default=None,
                help="write the campaign report JSON here",
            )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.clock_mhz <= 0:
        print("error: --clock-mhz must be positive", file=sys.stderr)
        return 2
    if args.iterations < 1:
        print("error: --iterations must be >= 1", file=sys.stderr)
        return 2
    if getattr(args, "pes", 1) < 1:
        print("error: --pes must be >= 1", file=sys.stderr)
        return 2
    if getattr(args, "workers", 1) < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
