#!/usr/bin/env python
"""Quickstart: build a dataflow app, map it to 2 PEs, run it over SPI.

This walks the whole SPI methodology on a small signal chain:

1. describe the application as a coarse-grain dataflow graph,
2. assign actors to processing elements,
3. compile with :class:`repro.SpiSystem` (SPI actor insertion, self-timed
   scheduling, synchronization analysis, protocol selection,
   resynchronization),
4. simulate it cycle-accurately and inspect the metrics,
5. price it on the Virtex-4 resource model.

Run:  python examples/quickstart.py
"""

from repro import DataflowGraph, Partition, SpiSystem, VIRTEX4_SX35


def build_app() -> DataflowGraph:
    """A 4-stage chain: source -> filter -> scale -> sink.

    Kernels operate on real token values so the simulation is functional
    as well as timed; ``cycles`` is each actor's hardware execution-time
    model.
    """
    graph = DataflowGraph("quickstart")
    state = {"acc": 0.0, "out": []}

    def source(k, inputs):
        return {"o": [float(k)]}

    def smooth(k, inputs):
        state["acc"] = 0.5 * state["acc"] + 0.5 * inputs["i"][0]
        return {"o": [state["acc"]]}

    def scale(k, inputs):
        return {"o": [2.0 * inputs["i"][0]]}

    def sink(k, inputs):
        state["out"].append(inputs["i"][0])
        return {}

    src = graph.actor("source", kernel=source, cycles=20)
    flt = graph.actor("filter", kernel=smooth, cycles=60)
    scl = graph.actor("scale", kernel=scale, cycles=30)
    snk = graph.actor("sink", kernel=sink, cycles=10)
    src.add_output("o")
    flt.add_input("i")
    flt.add_output("o")
    scl.add_input("i")
    scl.add_output("o")
    snk.add_input("i")
    graph.connect((src, "o"), (flt, "i"))
    graph.connect((flt, "o"), (scl, "i"))
    graph.connect((scl, "o"), (snk, "i"))
    graph.validate()
    graph._quickstart_state = state  # keep the collector reachable
    return graph


def main() -> None:
    graph = build_app()

    # Put the heavy filter on its own PE; everything else shares PE 0.
    partition = Partition.manual(
        graph, {"source": 0, "filter": 1, "scale": 0, "sink": 0}
    )
    print(f"interprocessor edges: "
          f"{[e.name for e in partition.interprocessor_edges()]}")

    system = SpiSystem.compile(graph, partition)
    for name, plan in system.channel_plans.items():
        print(
            f"channel {name}: {plan.protocol}, "
            f"capacity {plan.capacity_messages} messages, "
            f"{'SPI_dynamic' if plan.dynamic else 'SPI_static'}"
        )

    result = system.run(iterations=50)
    print(f"\nsimulated {result.iterations} iterations in "
          f"{result.execution_time_us:.2f} us "
          f"({result.iteration_period_cycles:.1f} cycles/iteration)")
    print(f"data messages: {result.data_messages}, "
          f"acks: {result.ack_messages}, "
          f"header overhead: {result.header_bytes} bytes")
    print(f"MCM bound on the period: "
          f"{system.estimated_iteration_period_cycles():.1f} cycles")

    outputs = graph._quickstart_state["out"]
    print(f"\nfirst outputs: {[round(v, 3) for v in outputs[:5]]}")

    print("\n" + system.fpga_report(
        device=VIRTEX4_SX35, title="Resource utilisation"
    ).render())


if __name__ == "__main__":
    main()
