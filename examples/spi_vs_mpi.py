#!/usr/bin/env python
"""Head-to-head: SPI against a generic MPI-like layer (paper §1).

Compiles the same application, partition and platform against both
communication layers and reports where the MPI overheads (envelopes,
matching, eager copies, rendezvous handshakes) go, across message sizes.

Run:  python examples/spi_vs_mpi.py
"""

from repro import DataflowGraph, MpiSystem, Partition, SpiSystem
from repro.analysis import render_table
from repro.spi import SpiConfig


def make_pipeline(rate: int, token_bytes: int = 4):
    """A -> B -> C moving ``rate`` tokens per firing across 2 PEs."""
    graph = DataflowGraph(f"pipe_{rate}")
    a = graph.actor("A", cycles=60)
    b = graph.actor("B", cycles=120)
    c = graph.actor("C", cycles=40)
    a.add_output("o", rate=rate, token_bytes=token_bytes)
    b.add_input("i", rate=rate, token_bytes=token_bytes)
    b.add_output("o", rate=rate, token_bytes=token_bytes)
    c.add_input("i", rate=rate, token_bytes=token_bytes)
    graph.connect((a, "o"), (b, "i"))
    graph.connect((b, "o"), (c, "i"))
    partition = Partition.manual(graph, {"A": 0, "B": 1, "C": 0})
    return graph, partition


def make_fanout(rate: int, n_workers: int = 3, token_bytes: int = 4):
    """One producer broadcasting a frame to ``n_workers`` worker PEs.

    This used to be modeled as ``n_workers`` independent edges carrying
    N copies of the same payload; a first-class broadcast connection
    lets SPI share the wire transfer on a bus and lets the MPI baseline
    amortize the software send path (MPI_Bcast-style).
    """
    graph = DataflowGraph(f"fanout_{rate}")
    src = graph.actor("src", cycles=60)
    src.add_output("o", rate=rate, token_bytes=token_bytes)
    for w in range(n_workers):
        worker = graph.actor(f"w{w}", cycles=120)
        worker.add_input("i", rate=rate, token_bytes=token_bytes)
    graph.add_broadcast(
        "src.o", [f"w{w}.i" for w in range(n_workers)], name="frame"
    )
    assignment = {"src": 0}
    assignment.update({f"w{w}": 1 + w // 2 for w in range(n_workers)})
    partition = Partition.manual(graph, assignment)
    return graph, partition


def broadcast_ablation(iterations: int = 30) -> None:
    """Both layers lower the *same* broadcast connection; the counters
    show where each one wins (or doesn't)."""
    rows = []
    for rate in (8, 64):
        graph, partition = make_fanout(rate)
        spi = SpiSystem.compile(
            graph, partition, SpiConfig(transport="shared_bus")
        ).run(iterations=iterations, metrics=True)
        graph, partition = make_fanout(rate)
        mpi = MpiSystem.compile(graph, partition).run(iterations=iterations)
        wire_msgs = (
            spi.data_messages - spi.fan_out_deliveries
            + spi.collective_messages
        )
        rows.append(
            [
                f"{rate * 4}B x3",
                f"{wire_msgs} / {spi.data_messages}",
                str(spi.wire_bytes - spi.wire_bytes_saved),
                str(mpi.data_messages),
                str(mpi.payload_bytes + mpi.header_bytes),
                f"{mpi.execution_time_us / spi.execution_time_us:.2f}x",
            ]
        )
    print(render_table(
        [
            "broadcast",
            "SPI wire/deliv",
            "SPI wire B",
            "MPI msgs",
            "MPI wire B",
            "SPI speedup",
        ],
        rows,
    ))
    print(
        "\nOne logical broadcast is no longer N independent copies: SPI "
        "puts each payload\non the shared bus once per firing "
        "(collective_messages) and fans it out at the\nreceivers "
        "(fan_out_deliveries); the MPI baseline still injects one "
        "envelope+payload\nper destination rank, only the send-side "
        "software cost is amortized."
    )


def main() -> None:
    iterations = 30
    rows = []
    for rate in (1, 8, 64, 256):
        graph, partition = make_pipeline(rate)
        spi = SpiSystem.compile(graph, partition).run(iterations=iterations)
        graph, partition = make_pipeline(rate)
        mpi_system = MpiSystem.compile(graph, partition)
        mpi = mpi_system.run(iterations=iterations)
        mode = (
            "rendezvous"
            if any(mpi_system.channel_modes.values())
            else "eager"
        )
        rows.append(
            [
                f"{rate * 4}B",
                mode,
                f"{spi.execution_time_us:.1f}",
                f"{mpi.execution_time_us:.1f}",
                f"{mpi.execution_time_us / spi.execution_time_us:.2f}x",
                str(spi.overhead_bytes),
                str(mpi.overhead_bytes),
            ]
        )
    print(render_table(
        [
            "message",
            "MPI mode",
            "SPI us",
            "MPI us",
            "SPI speedup",
            "SPI overhead B",
            "MPI overhead B",
        ],
        rows,
    ))
    print(
        "\nSPI wins twice: tiny compile-time headers (4-8 bytes vs a "
        "24-byte envelope)\nand no run-time matching or handshakes — the "
        "dataflow graph already resolved\nevery endpoint at compile time.\n"
    )
    broadcast_ablation(iterations)


if __name__ == "__main__":
    main()
