#!/usr/bin/env python
"""Head-to-head: SPI against a generic MPI-like layer (paper §1).

Compiles the same application, partition and platform against both
communication layers and reports where the MPI overheads (envelopes,
matching, eager copies, rendezvous handshakes) go, across message sizes.

Run:  python examples/spi_vs_mpi.py
"""

from repro import DataflowGraph, MpiSystem, Partition, SpiSystem
from repro.analysis import render_table


def make_pipeline(rate: int, token_bytes: int = 4):
    """A -> B -> C moving ``rate`` tokens per firing across 2 PEs."""
    graph = DataflowGraph(f"pipe_{rate}")
    a = graph.actor("A", cycles=60)
    b = graph.actor("B", cycles=120)
    c = graph.actor("C", cycles=40)
    a.add_output("o", rate=rate, token_bytes=token_bytes)
    b.add_input("i", rate=rate, token_bytes=token_bytes)
    b.add_output("o", rate=rate, token_bytes=token_bytes)
    c.add_input("i", rate=rate, token_bytes=token_bytes)
    graph.connect((a, "o"), (b, "i"))
    graph.connect((b, "o"), (c, "i"))
    partition = Partition.manual(graph, {"A": 0, "B": 1, "C": 0})
    return graph, partition


def main() -> None:
    iterations = 30
    rows = []
    for rate in (1, 8, 64, 256):
        graph, partition = make_pipeline(rate)
        spi = SpiSystem.compile(graph, partition).run(iterations=iterations)
        graph, partition = make_pipeline(rate)
        mpi_system = MpiSystem.compile(graph, partition)
        mpi = mpi_system.run(iterations=iterations)
        mode = (
            "rendezvous"
            if any(mpi_system.channel_modes.values())
            else "eager"
        )
        rows.append(
            [
                f"{rate * 4}B",
                mode,
                f"{spi.execution_time_us:.1f}",
                f"{mpi.execution_time_us:.1f}",
                f"{mpi.execution_time_us / spi.execution_time_us:.2f}x",
                str(spi.overhead_bytes),
                str(mpi.overhead_bytes),
            ]
        )
    print(render_table(
        [
            "message",
            "MPI mode",
            "SPI us",
            "MPI us",
            "SPI speedup",
            "SPI overhead B",
            "MPI overhead B",
        ],
        rows,
    ))
    print(
        "\nSPI wins twice: tiny compile-time headers (4-8 bytes vs a "
        "24-byte envelope)\nand no run-time matching or handshakes — the "
        "dataflow graph already resolved\nevery endpoint at compile time."
    )


if __name__ == "__main__":
    main()
