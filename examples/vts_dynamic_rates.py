#!/usr/bin/env python
"""VTS walkthrough — the paper's figure 1 and §3 on a live system.

Builds a producer/consumer pair whose data rate varies at run time
(bounded by 10 raw tokens per firing, the paper's example), converts it
with VTS, inspects the eq. 1 / eq. 2 bounds, and runs it across two PEs
over an SPI_dynamic channel while watching the message sizes on the
wire.

Run:  python examples/vts_dynamic_rates.py
"""

from repro import (
    DataflowGraph,
    DynamicRate,
    Partition,
    SpiSystem,
    vts_convert,
)
from repro.analysis import render_table

PRODUCER_BOUND = 10
CONSUMER_BOUND = 8
RAW_BYTES = 2


def build_graph() -> DataflowGraph:
    """Figure 1's A -> B with run-time varying rates."""
    graph = DataflowGraph("fig1_live")
    received = []

    def produce(k, inputs):
        # a data-dependent burst: 1..10 raw tokens per firing
        burst = (3 * k) % PRODUCER_BOUND + 1
        return {"o": [f"t{k}.{i}" for i in range(burst)]}

    def consume(k, inputs):
        received.append(list(inputs["i"]))
        return {}

    a = graph.actor("A", kernel=produce, cycles=6)
    b = graph.actor("B", kernel=consume, cycles=6)
    a.add_output("o", rate=DynamicRate(PRODUCER_BOUND), token_bytes=RAW_BYTES)
    b.add_input("i", rate=DynamicRate(CONSUMER_BOUND), token_bytes=RAW_BYTES)
    graph.connect((a, "o"), (b, "i"))
    graph._received = received
    return graph


def main() -> None:
    graph = build_graph()
    print("before conversion:")
    for edge in graph.edges:
        print(f"  {edge.name}: production {edge.source.rate!r}, "
              f"consumption {edge.sink.rate!r}")

    conversion = vts_convert(graph)
    edge = conversion.graph.edges[0]
    info = conversion.edge_info[edge.name]
    print("\nafter VTS conversion:")
    print(render_table(
        ["quantity", "value"],
        [
            ["production rate", str(edge.source.rate)],
            ["consumption rate", str(edge.sink.rate)],
            ["b_max(e) bytes/packed token", str(info.b_max_bytes)],
            ["c_sdf(e) packed tokens", str(info.c_sdf)],
            ["c(e) bytes (eq. 1)", str(info.c_bytes)],
            ["B(e) bytes (eq. 2)",
             str(conversion.ipc_buffer_bound_bytes(edge) or
                 "no feedback path -> UBS")],
        ],
    ))

    # Run the *original* dynamic graph through the full SPI stack (the
    # runtime applies the conversion internally).
    partition = Partition(graph, 2, {"A": 0, "B": 1})
    system = SpiSystem.compile(graph, partition)
    plan = next(iter(system.channel_plans.values()))
    print(f"\nchannel: {plan.protocol}, "
          f"{'SPI_dynamic' if plan.dynamic else 'SPI_static'} "
          f"(header carries the size field)")

    iterations = 12
    result = system.run(iterations=iterations)
    print(f"\n{iterations} firings simulated in "
          f"{result.execution_time_us:.2f} us")
    print(f"payload bytes: {result.payload_bytes} "
          f"(varying message sizes), header bytes: {result.header_bytes} "
          f"(8 per dynamic message)")

    sizes = [len(burst) for burst in graph._received]
    print(f"burst sizes received, in order: {sizes}")
    assert all(1 <= s <= PRODUCER_BOUND for s in sizes)
    high = max(result.buffer_high_water.values())
    print(f"receive-buffer high water: {high} bytes "
          f"(plan: {(plan.capacity_messages + 1) * plan.message_payload_bytes})")


if __name__ == "__main__":
    main()
