#!/usr/bin/env python
"""Application 1 — LPC speech compression on SPI (paper §5.2).

Runs both systems of the paper:

* the full five-actor ADC pipeline (figure 2), compressing synthetic
  speech frames and verifying the decode round-trip, and
* the parallelised error-generation subsystem (figure 3) on 1..4
  hardware PEs with SPI_dynamic channels, reporting the figure-6 style
  scaling numbers and the resynchronization effect.

Run:  python examples/speech_compression.py
"""

import numpy as np

from repro import Partition, SpiSystem, SpiConfig, VIRTEX4_SX35
from repro.analysis import render_table
from repro.apps.lpc import (
    build_adc_graph,
    build_parallel_error_graph,
    frame_stream,
    lpc_coefficients,
    prediction_error,
    reconstruct,
)
from repro.apps.lpc.huffman import HuffmanCode

FRAME_SIZE = 256
ORDER = 8
CLOCK_MHZ = 100.0


def run_adc_pipeline(frames) -> None:
    print("== Full ADC pipeline (figure 2) ==")
    adc = build_adc_graph(frames, order=ORDER)
    system = SpiSystem.compile(
        adc.graph, Partition.single_processor(adc.graph)
    )
    result = system.run(iterations=len(frames))
    print(f"compressed {len(adc.encoder.compressed)} frames in "
          f"{result.execution_time_us:.1f} us simulated")

    total_bits = sum(len(r["bits"]) for r in adc.encoder.compressed)
    raw_bits = sum(f.shape[0] * 8 for f in frames)
    print(f"compression: {raw_bits} -> {total_bits} bits "
          f"({raw_bits / total_bits:.2f}x vs 8-bit PCM)")

    # decode the first frame to prove the stream is usable
    record = adc.encoder.compressed[0]
    code = HuffmanCode(record["codebook"])
    errors = adc.encoder.quantizer.dequantize(code.decode(record["bits"]))
    coefs = lpc_coefficients(frames[0], ORDER)
    rebuilt = reconstruct(np.asarray(errors), coefs)
    snr = 10 * np.log10(
        np.var(frames[0]) / max(np.mean((rebuilt - frames[0]) ** 2), 1e-12)
    )
    print(f"decoded frame 0: reconstruction SNR {snr:.1f} dB\n")


def run_parallel_error(frames) -> None:
    print("== Parallel error generation, actor D (figures 3 and 6) ==")
    rows = []
    base_time = None
    for n_units in (1, 2, 3, 4):
        system = build_parallel_error_graph(
            frames, order=ORDER, n_units=n_units
        )
        spi = SpiSystem.compile(system.graph, system.partition)
        result = spi.run(iterations=4)
        time_us = result.iteration_period_cycles / CLOCK_MHZ
        if base_time is None:
            base_time = time_us
        rows.append(
            [
                str(n_units),
                f"{time_us:.2f}",
                f"{base_time / time_us:.2f}x",
                str(result.data_messages),
                str(len(spi.channel_plans)),
            ]
        )
        # check functional equivalence on the first frame
        reference = prediction_error(
            frames[0], lpc_coefficients(frames[0], ORDER)
        )
        assembled = system.assembled_errors(0, frames[0].shape[0])
        assert np.allclose(assembled, reference, atol=1e-9)
    print(render_table(
        ["error PEs", "us/frame", "speedup", "messages", "channels"], rows
    ))
    print("(all PE counts verified bit-identical to the sequential "
          "residual)\n")


def show_resynchronization(frames) -> None:
    print("== Resynchronization (figure 3) ==")
    system = build_parallel_error_graph(frames, order=ORDER, n_units=3)
    raw = SpiSystem.compile(
        system.graph, system.partition,
        SpiConfig(protocol_policy="always_ubs", resynchronize=False),
    ).run(iterations=4)
    optimised = SpiSystem.compile(
        system.graph, system.partition,
        SpiConfig(protocol_policy="always_ubs", resynchronize=True),
    ).run(iterations=4)
    print(f"acknowledgment messages over 4 iterations: "
          f"{raw.ack_messages} -> {optimised.ack_messages}")
    print(f"wire bytes: {raw.wire_bytes} -> {optimised.wire_bytes}\n")


def show_resources(frames) -> None:
    print("== FPGA resources (table 1) ==")
    system = build_parallel_error_graph(frames, order=ORDER, n_units=4)
    spi = SpiSystem.compile(system.graph, system.partition)
    print(spi.fpga_report(
        device=VIRTEX4_SX35,
        title="4-PE implementation of actor D",
    ).render())


def main() -> None:
    frames = frame_stream(
        total_samples=4 * FRAME_SIZE, frame_size=FRAME_SIZE
    )
    run_adc_pipeline(frames)
    run_parallel_error(frames)
    show_resynchronization(frames)
    show_resources(frames)


if __name__ == "__main__":
    main()
