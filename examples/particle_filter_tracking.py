#!/usr/bin/env python
"""Application 2 — particle-filter crack prognosis on SPI (paper §5.3).

Simulates a turbine-blade crack-growth history (Paris law), tracks it
with the sequential reference filter and with the distributed 2-PE SPI
implementation, and reports estimate quality, figure-7 style timing, and
the SPI_static / SPI_dynamic channel split of the 3-phase distributed
resampling.

Run:  python examples/particle_filter_tracking.py
"""

import numpy as np

from repro import SpiSystem, VIRTEX4_SX35
from repro.analysis import render_table
from repro.apps.particle_filter import (
    CrackGrowthModel,
    ParticleFilter,
    build_particle_filter_graph,
    simulate_crack_history,
)

N_PARTICLES = 200
STEPS = 12
CLOCK_MHZ = 100.0


def main() -> None:
    model = CrackGrowthModel()
    truth, observations = simulate_crack_history(model, steps=STEPS, seed=7)
    print(f"simulated {STEPS} inspection intervals; crack grows "
          f"{truth[0]:.2f} -> {truth[-1]:.2f} mm")

    # -- sequential reference ------------------------------------------------
    reference = ParticleFilter(model, n_particles=N_PARTICLES, seed=11)
    trace = reference.run(observations)
    print(f"sequential filter RMSE: {trace.rmse_against(truth):.3f} mm "
          f"(obs noise sigma = {model.measurement_noise} mm)")

    # -- distributed over SPI -----------------------------------------------
    rows = []
    for n_pes in (1, 2):
        system = build_particle_filter_graph(
            model, observations, n_particles=N_PARTICLES, n_pes=n_pes
        )
        spi = SpiSystem.compile(system.graph, system.partition)
        result = spi.run(iterations=STEPS)
        estimates = np.asarray(system.estimates())
        rmse = float(np.sqrt(np.mean((estimates - truth) ** 2)))
        rows.append(
            [
                str(n_pes),
                f"{result.iteration_period_cycles / CLOCK_MHZ:.2f}",
                f"{rmse:.3f}",
                str(result.data_messages),
                str(result.ack_messages),
            ]
        )
        if n_pes == 2:
            print("\nchannels of the 2-PE system:")
            for name, plan in spi.channel_plans.items():
                flavour = "SPI_dynamic" if plan.dynamic else "SPI_static"
                print(f"  {name:24s} {plan.protocol}  {flavour}")
    print("\n" + render_table(
        ["PEs", "us/iteration", "RMSE mm", "data msgs", "acks"], rows
    ))

    # -- estimate trajectory --------------------------------------------------
    system = build_particle_filter_graph(
        model, observations, n_particles=N_PARTICLES, n_pes=2
    )
    SpiSystem.compile(system.graph, system.partition).run(iterations=STEPS)
    estimates = system.estimates()
    print("\nstep  truth   observed  estimated")
    for k in range(STEPS):
        print(f"{k:4d}  {truth[k]:6.3f}  {observations[k]:8.3f}  "
              f"{estimates[k]:9.3f}")

    # -- resources (table 2) ---------------------------------------------------
    spi = SpiSystem.compile(system.graph, system.partition)
    print("\n" + spi.fpga_report(
        device=VIRTEX4_SX35, title="2-PE particle filter"
    ).render())
    print("(the PF datapath fills the device: a third PE does not fit, "
          "as in the paper)")


if __name__ == "__main__":
    main()
