#!/usr/bin/env python
"""Multichannel adaptive noise cancellation over SPI (third domain app).

Eight sensor channels, each carrying a sinusoid buried in filtered
broadband noise, are cleaned by per-channel NLMS cancellers distributed
over a bank of hardware PEs.  Block sizes are fixed, so every channel
compiles to **SPI_static** — the one-word-header fast path — and the
BBS protocol (the I/O round trip bounds every buffer).

Run:  python examples/adaptive_noise_canceller.py
"""

import numpy as np

from repro import SpiSystem
from repro.analysis import render_table
from repro.apps.adaptive import build_multichannel_canceller

N_CHANNELS = 6
BLOCK = 32
TAPS = 8
ITERATIONS = 20
CLOCK_MHZ = 100.0


def main() -> None:
    # -- scaling over PE counts ----------------------------------------------
    rows = []
    base = None
    for n_pes in (1, 2, 3, 5):
        system = build_multichannel_canceller(
            n_channels=N_CHANNELS, n_pes=n_pes, block=BLOCK, taps=TAPS,
            samples=1024,
        )
        spi = SpiSystem.compile(system.graph, system.partition)
        result = spi.run(iterations=ITERATIONS)
        us = result.iteration_period_cycles / CLOCK_MHZ
        if base is None:
            base = us
        rows.append(
            [
                str(n_pes),
                f"{us:.2f}",
                f"{base / us:.2f}x",
                str(len(spi.channel_plans)),
            ]
        )
        last_system, last_spi = system, spi
    print(render_table(
        ["PEs", "us per block round", "speedup", "SPI channels"], rows
    ))

    # -- channel plan of the largest configuration -----------------------------
    plan = next(iter(last_spi.channel_plans.values()))
    print(f"\nall channels: "
          f"{'SPI_dynamic' if plan.dynamic else 'SPI_static'} / "
          f"{plan.protocol} (static block sizes need no VTS)")

    # -- cancellation quality ---------------------------------------------------
    print("\nnoise attenuation per channel (steady state):")
    for channel in range(N_CHANNELS):
        before, after = last_system.residual_noise_power(channel)
        attenuation = 10 * np.log10(before / max(after, 1e-12))
        print(f"  channel {channel}: {before:.4f} -> {after:.5f}  "
              f"({attenuation:.1f} dB)")


if __name__ == "__main__":
    main()
