#!/usr/bin/env python
"""Pipelining + execution tracing: watching resynchronization work.

A heavy 3-stage chain mapped across 3 PEs is pipelined with one delay
token per stage boundary (the classic SDF retiming), compiled through
SPI and traced cycle-by-cycle.  The Gantt chart makes the paper's
machinery visible: the stages overlap, the steady-state period sits on
the MCM bound, and resynchronization has replaced every UBS
acknowledgment with a single added synchronization edge implemented as
one zero-payload message per iteration.

Run:  python examples/pipelined_chain.py
"""

from repro import DataflowGraph, Partition, SpiSystem
from repro.mapping import auto_pipeline


def heavy_chain() -> DataflowGraph:
    graph = DataflowGraph("chain")
    stages = [("load", 400), ("transform", 500), ("store", 300)]
    actors = [graph.actor(name, cycles=c) for name, c in stages]
    for left, right in zip(actors, actors[1:]):
        out = left.add_output(f"to_{right.name}")
        inp = right.add_input(f"from_{left.name}")
        graph.connect(out, inp)
    return graph


def main() -> None:
    # -- baseline: everything on one PE ------------------------------------
    flat = heavy_chain()
    base = SpiSystem.compile(
        flat, Partition.single_processor(flat)
    ).run(iterations=10)
    print(f"single PE: {base.iteration_period_cycles:.0f} cycles/iteration")

    # -- pipeline into 3 stages ---------------------------------------------
    result = auto_pipeline(heavy_chain(), stages=3)
    print(f"stage assignment: {result.stages}")
    print(f"delays inserted:  {result.added_delays} "
          f"(+{result.latency_iterations} iteration of latency)")

    partition = Partition.manual(result.graph, result.stages)
    system = SpiSystem.compile(result.graph, partition)

    if system.resync_result is not None:
        added = [
            f"{e.src} -> {e.snk}" for e in system.resync_result.added
        ]
        removed = len(system.resync_result.removed)
        print(f"resynchronization: removed {removed} ack edges, "
              f"added {added or 'nothing'}")

    run = system.run(iterations=10, trace=True)
    print(f"\npipelined 3 PEs: {run.iteration_period_cycles:.0f} "
          f"cycles/iteration "
          f"(MCM bound {system.estimated_iteration_period_cycles():.0f})")
    print(f"speedup: {base.iteration_period_cycles / run.iteration_period_cycles:.2f}x")
    print(f"sync messages per iteration: "
          f"{run.resync_messages / run.iterations:.0f} "
          f"(acks: {run.ack_messages})")

    print("\nexecution trace (first ~3000 cycles):")
    print(run.trace.gantt(width=72, upto=3000))

    stats = run.trace.task_statistics()
    busiest = max(stats.items(), key=lambda kv: kv[1]["total"])
    print(f"\nbusiest task: {busiest[0]} "
          f"({busiest[1]['total']:.0f} cycles total)")
    run.trace.validate_pe_exclusivity()
    print("trace validated: no overlapping executions on any PE")


if __name__ == "__main__":
    main()
