#!/usr/bin/env python
"""Restricted Kahn process networks over SPI — the paper's future work.

The paper (§3.1) singles out "integration of SPI with KPN — especially
restricted versions of KPN that are more amenable to formal analysis"
as a promising direction.  This example builds a classic KPN
(source -> splitter -> merger with data-dependent message sizes),
converts it to a bounded-dynamic dataflow graph, and runs it through
the complete SPI stack on three different mappings — demonstrating
Kahn's determinism property end to end: the output stream is identical
on every mapping, while the timing and message traffic differ.

Run:  python examples/kpn_split_merge.py
"""

from repro import Partition, SpiSystem
from repro.analysis import render_table
from repro.dataflow.kpn import KpnChannelSpec, KpnNetwork, KpnProcess

CHANNEL = KpnChannelSpec(max_tokens_per_step=6, token_bytes=4,
                         min_tokens_per_step=0)


def build_network(collect):
    network = KpnNetwork("split_merge")

    def source_step(k, inputs):
        # a data-dependent burst of 1..6 values
        burst = (k * 5) % 6 + 1
        return {"out": [k * 10 + i for i in range(burst)]}

    def splitter_step(k, inputs):
        values = inputs["in"]
        return {
            "low": [v for v in values if v % 10 < 3],
            "high": [v for v in values if v % 10 >= 3],
        }

    def merger_step(k, inputs):
        collect.append(sorted(inputs["low"] + inputs["high"]))
        return {}

    network.add(
        KpnProcess("source", source_step, work_cycles=10).writes(
            "out", CHANNEL
        )
    )
    network.add(
        KpnProcess("splitter", splitter_step, work_cycles=25)
        .reads("in", CHANNEL)
        .writes("low", CHANNEL)
        .writes("high", CHANNEL)
    )
    network.add(
        KpnProcess("merger", merger_step, work_cycles=15)
        .reads("low", CHANNEL)
        .reads("high", CHANNEL)
    )
    network.connect("source", "out", "splitter", "in")
    network.connect("splitter", "low", "merger", "low")
    network.connect("splitter", "high", "merger", "high")
    return network


def main() -> None:
    mappings = {
        "1 PE (sequential)": {"source": 0, "splitter": 0, "merger": 0},
        "2 PEs": {"source": 0, "splitter": 1, "merger": 0},
        "3 PEs": {"source": 0, "splitter": 1, "merger": 2},
    }
    iterations = 10
    streams = {}
    rows = []
    for label, assignment in mappings.items():
        collect = []
        graph = build_network(collect).to_dataflow_graph()
        n_pes = max(assignment.values()) + 1
        partition = Partition(graph, n_pes, assignment)
        system = SpiSystem.compile(graph, partition)
        result = system.run(iterations=iterations)
        streams[label] = collect
        rows.append(
            [
                label,
                f"{result.iteration_period_cycles:.0f}",
                str(result.data_messages),
                str(len(system.channel_plans)),
            ]
        )
    print(render_table(
        ["mapping", "cycles/step", "messages", "SPI channels"], rows
    ))

    reference = streams["1 PE (sequential)"]
    assert all(stream == reference for stream in streams.values())
    print("\nKahn determinism verified: identical output streams on all "
          "mappings.")
    print("first steps of the merged stream:")
    for k, merged in enumerate(reference[:5]):
        print(f"  step {k}: {merged}")


if __name__ == "__main__":
    main()
