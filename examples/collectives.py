#!/usr/bin/env python
"""Walkthrough: first-class collective connections vs manual fan-out.

A broadcast used to be modeled as N independent FIFO edges carrying N
copies of one payload — N sends, N ack windows, N resync edges.  With a
``Connection`` hyperedge the graph states the intent once and every
layer below exploits it: one send actor, one wire transfer per link (or
per bus transaction), per-consumer delivery bookkeeping, and three new
transport counters that make the saving measurable:

* ``collective_messages``  — transfers actually put on the wire,
* ``fan_out_deliveries``   — consumer copies delivered from them,
* ``wire_bytes_saved``     — logical minus wire bytes (shared payload).

Run:  python examples/collectives.py
"""

from repro import DataflowGraph, Partition, SpiSystem
from repro.analysis import render_table
from repro.spi import SpiConfig

RATE = 8          # tokens per firing
N_CONSUMERS = 3   # fan-out of the broadcast
ITERATIONS = 20


def manual_fanout_graph():
    """The old idiom: one output port (and one copy) per consumer."""
    graph = DataflowGraph("manual")
    src = graph.actor("src", cycles=50)
    for j in range(N_CONSUMERS):
        src.add_output(f"o{j}", rate=RATE)
        snk = graph.actor(f"snk{j}", cycles=80)
        snk.add_input("i", rate=RATE)
        graph.connect((src, f"o{j}"), (graph.get_actor(f"snk{j}"), "i"))
    return graph


def broadcast_graph():
    """The collective idiom: one port, one hyperedge, N branches."""
    graph = DataflowGraph("collective")
    src = graph.actor("src", cycles=50)
    src.add_output("o", rate=RATE)
    for j in range(N_CONSUMERS):
        snk = graph.actor(f"snk{j}", cycles=80)
        snk.add_input("i", rate=RATE)
    graph.add_broadcast(
        "src.o", [f"snk{j}.i" for j in range(N_CONSUMERS)], name="frame"
    )
    return graph


def run(graph, transport="shared_bus"):
    assignment = {
        actor.name: 0 if actor.name == "src" else 1 + int(actor.name[3:]) % 2
        for actor in graph.actors
    }
    partition = Partition.manual(graph, assignment)
    system = SpiSystem.compile(
        graph, partition, SpiConfig(transport=transport)
    )
    return system.run(iterations=ITERATIONS, metrics=True)


def main() -> None:
    rows = []
    for label, graph in (
        ("manual fan-out", manual_fanout_graph()),
        ("broadcast", broadcast_graph()),
    ):
        result = run(graph)
        wire_msgs = (
            result.data_messages
            - result.fan_out_deliveries
            + result.collective_messages
        )
        rows.append(
            [
                label,
                str(result.data_messages),
                str(wire_msgs),
                str(result.wire_bytes - result.wire_bytes_saved),
                str(result.wire_bytes_saved),
                f"{result.execution_time_us:.1f}",
            ]
        )
    print(
        f"{N_CONSUMERS}-way fan-out of {RATE * 4}B per firing, "
        f"{ITERATIONS} iterations, shared bus:\n"
    )
    print(render_table(
        [
            "idiom",
            "deliveries",
            "wire msgs",
            "wire bytes",
            "bytes saved",
            "time us",
        ],
        rows,
    ))

    # the degenerate case: one consumer is just a FIFO edge again
    graph = DataflowGraph("degenerate")
    src = graph.actor("src", cycles=50)
    src.add_output("o", rate=RATE)
    snk = graph.actor("snk0", cycles=80)
    snk.add_input("i", rate=RATE)
    graph.add_broadcast("src.o", ["snk0.i"])
    degenerate = run(graph)
    print(
        f"\n1-consumer broadcast degenerates to a plain FIFO: "
        f"{degenerate.collective_messages} collective transfers, "
        f"{degenerate.wire_bytes_saved}B saved — identical to a "
        f"point-to-point edge by construction."
    )


if __name__ == "__main__":
    main()
