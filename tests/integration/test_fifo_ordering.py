"""FIFO ordering and token conservation across the SPI stack.

Every SPI channel is a FIFO: tokens arrive at the consumer exactly in
production order, with none lost or duplicated, on any mapping and
under any protocol.  Sequence-numbered tokens make the property
directly observable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import DataflowGraph
from repro.mapping import Partition
from repro.spi import SpiConfig, SpiSystem
from tests.conftest import build_sequenced_pipeline as sequenced_pipeline


class TestFifoOrdering:
    @given(
        n_hops=st.integers(1, 4),
        data=st.data(),
        policy=st.sampled_from(["auto", "always_ubs"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_sequence_preserved_on_random_mappings(self, n_hops, data, policy):
        collect = []
        graph = sequenced_pipeline(n_hops, collect)
        n_pes = data.draw(st.integers(1, 3))
        assignment = {
            actor.name: data.draw(
                st.integers(0, n_pes - 1), label=f"pe_{actor.name}"
            )
            for actor in graph
        }
        partition = Partition(graph, n_pes, assignment)
        iterations = 12
        system = SpiSystem.compile(
            graph, partition, SpiConfig(protocol_policy=policy)
        )
        system.run(iterations=iterations, max_cycles=10_000_000)
        assert collect == list(range(iterations))

    def test_parallel_channels_independent(self):
        """Two channels between the same PE pair keep their own order."""
        left, right = [], []
        graph = DataflowGraph("dual")

        def src(k, inputs):
            return {"a": [("a", k)], "b": [("b", k)]}

        def snk(k, inputs):
            left.append(inputs["a"][0])
            right.append(inputs["b"][0])
            return {}

        a = graph.actor("src", kernel=src, cycles=3)
        b = graph.actor("snk", kernel=snk, cycles=3)
        a.add_output("a")
        a.add_output("b")
        b.add_input("a")
        b.add_input("b")
        graph.connect((a, "a"), (b, "a"))
        graph.connect((a, "b"), (b, "b"))
        partition = Partition(graph, 2, {"src": 0, "snk": 1})
        SpiSystem.compile(graph, partition).run(iterations=8)
        assert left == [("a", k) for k in range(8)]
        assert right == [("b", k) for k in range(8)]
