"""End-to-end integration: the distributed particle filter through SPI."""

import numpy as np
import pytest

from repro.apps.particle_filter import ParticleFilter, build_particle_filter_graph
from repro.spi import SpiSystem


class TestDistributedFilter:
    @pytest.mark.parametrize("n_pes", [1, 2])
    def test_tracks_truth(self, crack_setup, n_pes):
        model, truth, observations = crack_setup
        system = build_particle_filter_graph(
            model, observations, n_particles=100, n_pes=n_pes
        )
        spi = SpiSystem.compile(system.graph, system.partition)
        spi.run(iterations=len(observations))
        estimates = np.asarray(system.estimates())
        rmse = float(np.sqrt(np.mean((estimates - truth) ** 2)))
        assert rmse < 3 * model.measurement_noise

    def test_estimate_quality_matches_sequential(self, crack_setup):
        """The distributed filter is statistically equivalent to the
        sequential reference (same model, same particle budget)."""
        model, truth, observations = crack_setup
        sequential = ParticleFilter(model, n_particles=100, seed=11)
        seq_rmse = sequential.run(observations).rmse_against(truth)

        system = build_particle_filter_graph(
            model, observations, n_particles=100, n_pes=2
        )
        SpiSystem.compile(system.graph, system.partition).run(
            iterations=len(observations)
        )
        estimates = np.asarray(system.estimates())
        dist_rmse = float(np.sqrt(np.mean((estimates - truth) ** 2)))
        assert dist_rmse < max(2.5 * seq_rmse, model.measurement_noise)

    def test_static_and_dynamic_channels(self, crack_setup):
        """Weight-sum channels use SPI_static headers, particle-exchange
        channels SPI_dynamic (paper §5.3)."""
        model, _, observations = crack_setup
        system = build_particle_filter_graph(
            model, observations, n_particles=40, n_pes=2
        )
        spi = SpiSystem.compile(system.graph, system.partition)
        for name, plan in spi.channel_plans.items():
            if name.startswith("wsum"):
                assert not plan.dynamic
            else:
                assert plan.dynamic

    def test_particle_conservation(self, crack_setup):
        """Every iteration re-enters with exactly N/n particles per PE:
        the assembler raises otherwise, so completing the run proves it."""
        model, _, observations = crack_setup
        system = build_particle_filter_graph(
            model, observations, n_particles=60, n_pes=2
        )
        result = SpiSystem.compile(system.graph, system.partition).run(
            iterations=len(observations)
        )
        assert result.iterations == len(observations)

    def test_two_pes_faster_than_one(self, crack_setup):
        model, _, observations = crack_setup
        times = {}
        for n_pes in (1, 2):
            system = build_particle_filter_graph(
                model, observations, n_particles=200, n_pes=n_pes
            )
            result = SpiSystem.compile(system.graph, system.partition).run(
                iterations=8
            )
            times[n_pes] = result.iteration_period_cycles
        assert times[2] < times[1]
        # but less than perfect scaling: resampling exchange serialises
        assert times[2] > times[1] / 2

    def test_exchange_message_counts(self, crack_setup):
        """Per iteration and per direction: one weight-sum message and
        one particle message (fig. 5's two messages between the PEs)."""
        model, _, observations = crack_setup
        system = build_particle_filter_graph(
            model, observations, n_particles=40, n_pes=2
        )
        iterations = 6
        result = SpiSystem.compile(system.graph, system.partition).run(
            iterations=iterations
        )
        assert result.data_messages == 4 * iterations  # 2 channels x 2 dirs
