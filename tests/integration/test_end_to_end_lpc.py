"""End-to-end integration: the LPC application through the full SPI stack."""

import numpy as np
import pytest

from repro.apps.lpc import (
    build_adc_graph,
    build_parallel_error_graph,
    lpc_coefficients,
    prediction_error,
    reconstruct,
)
from repro.apps.lpc.huffman import HuffmanCode
from repro.mapping import Partition
from repro.spi import SpiSystem


class TestAdcEndToEnd:
    def test_compress_decode_roundtrip(self, speech_frames):
        """Compress via the simulated pipeline, then decode offline and
        check the reconstruction error is quantiser-bounded."""
        adc = build_adc_graph(speech_frames, order=8)
        system = SpiSystem.compile(
            adc.graph, Partition.single_processor(adc.graph)
        )
        system.run(iterations=len(speech_frames))
        assert len(adc.encoder.compressed) == len(speech_frames)

        quantizer = adc.encoder.quantizer
        for frame, record in zip(speech_frames, adc.encoder.compressed):
            code = HuffmanCode(record["codebook"])
            symbols = code.decode(record["bits"])
            assert len(symbols) == record["n_samples"] == frame.shape[0]
            errors = quantizer.dequantize(symbols)
            coefs = lpc_coefficients(frame, 8)
            rebuilt = reconstruct(errors, coefs)
            # error accumulates through the predictor; allow a few steps
            assert np.max(np.abs(rebuilt - frame)) < 20 * quantizer.step

    def test_compression_actually_compresses(self, speech_frames):
        """Huffman on the residual beats raw 8-bit PCM."""
        adc = build_adc_graph(speech_frames, order=8)
        system = SpiSystem.compile(
            adc.graph, Partition.single_processor(adc.graph)
        )
        system.run(iterations=len(speech_frames))
        total_bits = sum(len(r["bits"]) for r in adc.encoder.compressed)
        raw_bits = sum(f.shape[0] * 8 for f in speech_frames)
        assert total_bits < raw_bits


class TestParallelErrorEndToEnd:
    @pytest.mark.parametrize("n_units", [1, 2, 3, 4])
    def test_functional_equivalence_all_pe_counts(self, speech_frames, n_units):
        """The distributed error computation must equal the sequential
        residual exactly, for every PE count (paper fig. 3 system)."""
        system = build_parallel_error_graph(
            speech_frames, order=8, n_units=n_units
        )
        spi = SpiSystem.compile(system.graph, system.partition)
        spi.run(iterations=2)
        for iteration in range(2):
            frame = speech_frames[iteration]
            reference = prediction_error(frame, lpc_coefficients(frame, 8))
            assembled = system.assembled_errors(iteration, frame.shape[0])
            assert np.allclose(assembled, reference, atol=1e-9)

    def test_channels_use_spi_dynamic(self, speech_frames):
        system = build_parallel_error_graph(speech_frames, order=8, n_units=2)
        spi = SpiSystem.compile(system.graph, system.partition)
        assert all(plan.dynamic for plan in spi.channel_plans.values())

    def test_dynamic_frame_sizes_at_runtime(self):
        """Frames of different sizes flow through the same compiled
        system — the run-time variability SPI_dynamic exists for."""
        from repro.apps.lpc.signal_gen import SpeechLikeSource

        source = SpeechLikeSource(seed=5)
        frames = [source.samples(n) for n in (192, 256, 224, 160)]
        system = build_parallel_error_graph(
            frames, order=8, n_units=2, max_frame_size=256
        )
        spi = SpiSystem.compile(system.graph, system.partition)
        spi.run(iterations=4)
        for iteration, frame in enumerate(frames):
            reference = prediction_error(frame, lpc_coefficients(frame, 8))
            assembled = system.assembled_errors(iteration, frame.shape[0])
            assert np.allclose(assembled, reference, atol=1e-9)

    def test_more_pes_reduce_time(self, speech_frames):
        times = []
        for n_units in (1, 2, 4):
            system = build_parallel_error_graph(
                speech_frames, order=8, n_units=n_units
            )
            result = SpiSystem.compile(system.graph, system.partition).run(
                iterations=4
            )
            times.append(result.iteration_period_cycles)
        assert times[1] < times[0]
        assert times[2] < times[1]

    def test_buffer_bounds_respected(self, speech_frames):
        """No channel buffer ever exceeds its planned capacity — the VTS
        eq. 1/2 soundness check on a real application."""
        system = build_parallel_error_graph(speech_frames, order=8, n_units=3)
        spi = SpiSystem.compile(system.graph, system.partition)
        result = spi.run(iterations=4)
        for name, plan in spi.channel_plans.items():
            assert result.buffer_high_water[name] <= (
                (plan.capacity_messages + 1) * plan.message_payload_bytes
            )
