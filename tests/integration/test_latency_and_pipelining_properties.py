"""Latency analysis helpers + property tests for auto-pipelining."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import first_output_latency, pipeline_fill_latency
from repro.dataflow import DataflowGraph, repetitions_vector
from repro.mapping import Partition, auto_pipeline
from repro.spi import SpiSystem


def chain(cycle_list):
    graph = DataflowGraph("chain")
    actors = [
        graph.actor(f"s{i}", cycles=c) for i, c in enumerate(cycle_list)
    ]
    for left, right in zip(actors, actors[1:]):
        out = left.add_output(f"to_{right.name}")
        inp = right.add_input(f"from_{left.name}")
        graph.connect(out, inp)
    return graph


class TestLatencyHelpers:
    def compiled(self, pipelined):
        if pipelined:
            result = auto_pipeline(chain([100, 200, 100]), stages=3)
            partition = Partition.manual(result.graph, result.stages)
            return SpiSystem.compile(result.graph, partition)
        graph = chain([100, 200, 100])
        partition = Partition.manual(graph, {"s0": 0, "s1": 1, "s2": 2})
        return SpiSystem.compile(graph, partition)

    def test_first_output_latency(self):
        run = self.compiled(pipelined=False).run(iterations=5, trace=True)
        latency = first_output_latency(run.trace, "fire:s2")
        # at least the chain's compute time
        assert latency >= 400

    def test_pipelining_trades_latency_for_throughput(self):
        graph = chain([100, 200, 100])
        sequential = SpiSystem.compile(
            graph, Partition.single_processor(graph)
        ).run(iterations=30, trace=True)
        piped = self.compiled(pipelined=True).run(iterations=30, trace=True)
        seq_latency = pipeline_fill_latency(
            sequential.trace, "fire:s0", "fire:s2"
        )
        piped_sink = (
            "fire:s2" if piped.trace.events_of("fire:s2") else "sync:fire:s2"
        )
        piped_latency = first_output_latency(piped.trace, piped_sink)
        # the pipelined system answers its first *settled* result
        # result.latency_iterations periods later than its own period…
        assert piped_latency >= 0
        assert seq_latency >= 400  # full chain before the first output
        # …but streams strictly faster than the sequential baseline
        assert (
            piped.iteration_period_cycles
            < sequential.iteration_period_cycles
        )

    def test_unknown_task_rejected(self):
        run = self.compiled(pipelined=False).run(iterations=3, trace=True)
        with pytest.raises(ValueError, match="no executions"):
            first_output_latency(run.trace, "ghost")


class TestAutoPipelineProperties:
    @given(
        cycles=st.lists(st.integers(50, 500), min_size=3, max_size=6),
        data=st.data(),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_chains_reach_near_mcm(self, cycles, data):
        stages = data.draw(st.integers(2, len(cycles)))
        result = auto_pipeline(chain(cycles), stages=stages)
        # structural invariants
        repetitions_vector(result.graph)
        result.graph.validate()
        assert set(result.stages.values()) == set(range(stages))
        # stage indices monotone along the chain
        order = [result.stages[f"s{i}"] for i in range(len(cycles))]
        assert order == sorted(order)

        partition = Partition.manual(result.graph, result.stages)
        system = SpiSystem.compile(result.graph, partition)
        run = system.run(iterations=25, max_cycles=10_000_000)
        mcm = system.estimated_iteration_period_cycles()
        # the self-timed execution settles onto (or near) the MCM bound;
        # the additive slack covers link transfer latency, which the
        # synchronization-graph MCM does not model (task times only)
        assert run.iteration_period_cycles <= mcm * 1.10 + 40
        # and never exceeds the sequential period
        assert run.iteration_period_cycles <= sum(cycles) + 50

    @given(cycles=st.lists(st.integers(50, 500), min_size=3, max_size=6))
    @settings(max_examples=10, deadline=None)
    def test_pipelining_never_slower_than_sequential(self, cycles):
        graph = chain(cycles)
        sequential = SpiSystem.compile(
            graph, Partition.single_processor(graph)
        ).run(iterations=8)
        result = auto_pipeline(chain(cycles), stages=min(3, len(cycles)))
        partition = Partition.manual(result.graph, result.stages)
        piped = SpiSystem.compile(result.graph, partition).run(iterations=20)
        assert (
            piped.iteration_period_cycles
            <= sequential.iteration_period_cycles * 1.02
        )
