"""The paper's evaluation *shapes*, as assertions.

Absolute numbers depend on the substrate (our simulator vs the authors'
Virtex-4 board); these tests pin down the qualitative results every
figure and table reports, so a regression that flips a conclusion fails
loudly.
"""

import pytest

from repro.apps.lpc import build_parallel_error_graph, frame_stream
from repro.apps.particle_filter import (
    CrackGrowthModel,
    build_particle_filter_graph,
    simulate_crack_history,
)
from repro.mapping import EdgeKind
from repro.platform import VIRTEX4_SX35
from repro.spi import SpiConfig, SpiSystem


class TestFigure6Shapes:
    """Execution time of actor D vs sample size, n = 1..4."""

    @pytest.fixture(scope="class")
    def sweep(self):
        times = {}
        for size in (128, 256, 512):
            frames = frame_stream(total_samples=2 * size, frame_size=size)
            for n in (1, 2, 4):
                system = build_parallel_error_graph(frames, order=8, n_units=n)
                result = SpiSystem.compile(
                    system.graph, system.partition
                ).run(iterations=4)
                times[(size, n)] = result.iteration_period_cycles
        return times

    def test_time_grows_with_sample_size(self, sweep):
        for n in (1, 2, 4):
            assert sweep[(128, n)] < sweep[(256, n)] < sweep[(512, n)]

    def test_more_pes_win_at_every_size(self, sweep):
        for size in (128, 256, 512):
            assert sweep[(size, 1)] > sweep[(size, 2)] > sweep[(size, 4)]

    def test_speedup_sublinear(self, sweep):
        """The serialized I/O interface bounds the gain below n."""
        for size in (128, 256, 512):
            assert sweep[(size, 1)] / sweep[(size, 4)] < 4.0

    def test_speedup_improves_with_problem_size(self, sweep):
        """Bigger frames amortise communication better (fig. 6's curves
        diverge as sample size grows)."""
        small_gain = sweep[(128, 1)] / sweep[(128, 4)]
        large_gain = sweep[(512, 1)] / sweep[(512, 4)]
        assert large_gain > small_gain


class TestFigure7Shapes:
    """Execution time of the PF vs particle count, n = 1, 2."""

    @pytest.fixture(scope="class")
    def sweep(self):
        model = CrackGrowthModel()
        _, observations = simulate_crack_history(model, steps=6, seed=7)
        times = {}
        for particles in (50, 100, 200, 300):
            for n in (1, 2):
                system = build_particle_filter_graph(
                    model, observations, n_particles=particles, n_pes=n
                )
                result = SpiSystem.compile(
                    system.graph, system.partition
                ).run(iterations=6)
                times[(particles, n)] = result.iteration_period_cycles
        return times

    def test_time_grows_with_particles(self, sweep):
        for n in (1, 2):
            series = [sweep[(p, n)] for p in (50, 100, 200, 300)]
            assert series == sorted(series)

    def test_two_pes_win_everywhere(self, sweep):
        for particles in (50, 100, 200, 300):
            assert sweep[(particles, 2)] < sweep[(particles, 1)]

    def test_speedup_below_two_and_grows_with_n(self, sweep):
        gains = [
            sweep[(p, 1)] / sweep[(p, 2)] for p in (50, 100, 200, 300)
        ]
        assert all(1.0 < g < 2.0 for g in gains)
        assert gains[-1] > gains[0]  # communication amortised


class TestTableShapes:
    """Tables 1 and 2: the SPI library is a small part of the system."""

    def test_table1_lpc_spi_share_small(self, speech_frames):
        system = build_parallel_error_graph(speech_frames, order=8, n_units=4)
        spi = SpiSystem.compile(system.graph, system.partition)
        report = spi.fpga_report(device=VIRTEX4_SX35)
        relative = report.spi_relative_percent()
        # communication-light system: SPI noticeable but minor
        assert 0 < relative["slices"] < 40
        assert relative["dsp48"] == 0.0
        assert VIRTEX4_SX35.fits(report.full_system)

    def test_table2_pf_spi_share_tiny(self, crack_setup):
        model, _, observations = crack_setup
        system = build_particle_filter_graph(
            model, observations, n_particles=200, n_pes=2
        )
        spi = SpiSystem.compile(system.graph, system.partition)
        report = spi.fpga_report(device=VIRTEX4_SX35)
        relative = report.spi_relative_percent()
        # compute-dominated system: SPI slice share below a few percent
        assert relative["slices"] < 5.0
        assert relative["dsp48"] == 0.0

    def test_pf_per_pe_cost_high(self, crack_setup):
        """Why the paper could only fit 2 PF PEs: each PE is expensive."""
        from repro.apps.particle_filter import pf_pe_resources

        per_pe = pf_pe_resources(100)
        four_pe_dsp = 4 * per_pe.dsp48
        assert four_pe_dsp > VIRTEX4_SX35.capacity.dsp48 / 3


class TestResynchronizationShapes:
    """Figures 3 and 5: resynchronization removes acknowledgment traffic."""

    def _ack_edges(self, system):
        reference = (
            system.resync_result.graph
            if system.resync_result is not None
            else system.sync_graph
        )
        return reference.edges_of_kind(EdgeKind.ACK)

    def test_lpc_acks_all_redundant(self, speech_frames):
        system = build_parallel_error_graph(speech_frames, order=8, n_units=3)
        no_resync = SpiSystem.compile(
            system.graph,
            system.partition,
            SpiConfig(protocol_policy="always_ubs", resynchronize=False),
        )
        with_resync = SpiSystem.compile(
            system.graph,
            system.partition,
            SpiConfig(protocol_policy="always_ubs", resynchronize=True),
        )
        before = len(no_resync.sync_graph.edges_of_kind(EdgeKind.ACK))
        after = len(self._ack_edges(with_resync))
        assert before == 9  # 3 channels x 3 PEs
        assert after == 0  # the closed I/O loop implies every ack

    def test_pf_acks_all_redundant(self, crack_setup):
        model, _, observations = crack_setup
        system = build_particle_filter_graph(
            model, observations, n_particles=40, n_pes=2
        )
        with_resync = SpiSystem.compile(
            system.graph,
            system.partition,
            SpiConfig(protocol_policy="always_ubs", resynchronize=True),
        )
        assert len(self._ack_edges(with_resync)) == 0

    def test_resync_reduces_measured_traffic(self, speech_frames):
        system = build_parallel_error_graph(speech_frames, order=8, n_units=2)
        base = SpiSystem.compile(
            system.graph,
            system.partition,
            SpiConfig(protocol_policy="always_ubs", resynchronize=False),
        ).run(iterations=4)
        optimized = SpiSystem.compile(
            system.graph,
            system.partition,
            SpiConfig(protocol_policy="always_ubs", resynchronize=True),
        ).run(iterations=4)
        assert base.ack_messages > 0
        assert optimized.ack_messages == 0
        assert optimized.execution_time_us <= base.execution_time_us
