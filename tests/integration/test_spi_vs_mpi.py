"""Integration: SPI against the MPI baseline on the paper applications."""


from repro.apps.lpc import build_parallel_error_graph
from repro.apps.particle_filter import build_particle_filter_graph
from repro.mpi import MpiSystem
from repro.spi import SpiSystem


class TestLpcComparison:
    def test_spi_faster_on_parallel_error(self, speech_frames):
        system = build_parallel_error_graph(speech_frames, order=8, n_units=2)
        spi = SpiSystem.compile(system.graph, system.partition).run(
            iterations=4
        )
        system2 = build_parallel_error_graph(speech_frames, order=8, n_units=2)
        mpi = MpiSystem.compile(system2.graph, system2.partition).run(
            iterations=4
        )
        assert spi.execution_time_us < mpi.execution_time_us

    def test_spi_less_overhead_bytes(self, speech_frames):
        system = build_parallel_error_graph(speech_frames, order=8, n_units=2)
        spi = SpiSystem.compile(system.graph, system.partition).run(
            iterations=4
        )
        system2 = build_parallel_error_graph(speech_frames, order=8, n_units=2)
        mpi = MpiSystem.compile(system2.graph, system2.partition).run(
            iterations=4
        )
        assert spi.overhead_bytes < mpi.overhead_bytes
        # same application data moved either way
        assert spi.payload_bytes == mpi.payload_bytes

    def test_mpi_functionally_correct_too(self, speech_frames):
        """The baseline must be a *fair* baseline: same results."""
        import numpy as np

        from repro.apps.lpc import lpc_coefficients, prediction_error

        system = build_parallel_error_graph(speech_frames, order=8, n_units=2)
        MpiSystem.compile(system.graph, system.partition).run(iterations=2)
        frame = speech_frames[0]
        reference = prediction_error(frame, lpc_coefficients(frame, 8))
        assembled = system.assembled_errors(0, frame.shape[0])
        assert np.allclose(assembled, reference, atol=1e-9)


class TestPfComparison:
    def test_spi_faster_on_particle_filter(self, crack_setup):
        model, _, observations = crack_setup
        system = build_particle_filter_graph(
            model, observations, n_particles=100, n_pes=2
        )
        spi = SpiSystem.compile(system.graph, system.partition).run(
            iterations=6
        )
        system2 = build_particle_filter_graph(
            model, observations, n_particles=100, n_pes=2
        )
        mpi = MpiSystem.compile(system2.graph, system2.partition).run(
            iterations=6
        )
        assert spi.execution_time_us < mpi.execution_time_us

    def test_ablation_runs_with_collectives_on_both_sides(self, crack_setup):
        """The apples-to-apples ablation: both layers lower the same
        S1 weight-sum broadcasts as collectives (SPI shares the wire,
        MPI amortizes the software send path a la MPI_Bcast)."""
        import numpy as np

        model, _, observations = crack_setup
        system = build_particle_filter_graph(
            model, observations, n_particles=80, n_pes=4, collectives=True
        )
        spi = SpiSystem.compile(system.graph, system.partition).run(
            iterations=6
        )
        system2 = build_particle_filter_graph(
            model, observations, n_particles=80, n_pes=4, collectives=True
        )
        mpi = MpiSystem.compile(system2.graph, system2.partition).run(
            iterations=6
        )
        assert spi.execution_time_us < mpi.execution_time_us
        np.testing.assert_allclose(system.estimates(), system2.estimates())
    def test_spi_fabric_smaller_than_mpi(self, speech_frames):
        system = build_parallel_error_graph(speech_frames, order=8, n_units=2)
        spi = SpiSystem.compile(system.graph, system.partition)
        mpi = MpiSystem.compile(system.graph, system.partition)
        assert (
            spi.spi_library_resources().slices
            < mpi.library_resources().slices
        )
