"""A/B integration tests: the particle filter's S1 weight-sum exchange
as collective broadcasts vs. the legacy point-to-point fan-out.

Two statements are pinned here:

* at 2 PEs every broadcast has exactly one consumer, so the collective
  build degenerates to the p2p build — bit-identical cycle count,
  traffic and estimates;
* at 4 PEs the collective build moves strictly fewer wire messages and
  strictly fewer wire bytes (the paper's motivation for first-class
  collectives), while producing the same estimates.
"""

import numpy as np
import pytest

from repro.apps.particle_filter import build_particle_filter_graph
from repro.spi import SpiConfig, SpiSystem


def _run_pf(crack_setup, n_pes, collectives, transport="shared_bus",
            n_particles=80, iterations=6):
    model, _, observations = crack_setup
    system = build_particle_filter_graph(
        model, observations, n_particles=n_particles, n_pes=n_pes,
        collectives=collectives,
    )
    compiled = SpiSystem.compile(
        system.graph, system.partition, SpiConfig(transport=transport)
    )
    result = compiled.run(iterations=iterations, metrics=True)
    return system, result


def _wire_messages(result):
    """Transfers actually on the wire: each collective transfer counts
    once, not once per delivered consumer copy."""
    return (
        result.data_messages
        - result.fan_out_deliveries
        + result.collective_messages
    )


class TestDegenerateAtTwoPes:
    def test_bit_identical_run(self, crack_setup):
        sys_a, res_a = _run_pf(crack_setup, n_pes=2, collectives=True)
        sys_b, res_b = _run_pf(crack_setup, n_pes=2, collectives=False)
        assert res_a.cycles == res_b.cycles
        assert res_a.data_messages == res_b.data_messages
        assert res_a.wire_bytes == res_b.wire_bytes
        assert res_a.collective_messages == 0
        assert res_b.collective_messages == 0
        np.testing.assert_allclose(sys_a.estimates(), sys_b.estimates())


class TestCollectiveWinAtFourPes:
    def test_fewer_wire_messages_and_bytes(self, crack_setup):
        """The ISSUE's acceptance criterion: at p >= 4 the resampling
        exchange moves strictly fewer messages AND wire bytes."""
        sys_a, coll = _run_pf(crack_setup, n_pes=4, collectives=True)
        sys_b, p2p = _run_pf(crack_setup, n_pes=4, collectives=False)
        assert coll.collective_messages > 0
        assert p2p.collective_messages == 0
        assert _wire_messages(coll) < _wire_messages(p2p)
        assert (coll.wire_bytes - coll.wire_bytes_saved) < p2p.wire_bytes
        np.testing.assert_allclose(sys_a.estimates(), sys_b.estimates())

    # on p2p links every consumer sits behind its own wire, so there is
    # nothing to share; the win is a shared-medium property
    @pytest.mark.parametrize("transport", ["shared_bus", "ordered_bus"])
    def test_win_holds_per_transport(self, crack_setup, transport):
        _, coll = _run_pf(crack_setup, 4, True, transport=transport)
        _, p2p = _run_pf(crack_setup, 4, False, transport=transport)
        assert _wire_messages(coll) < _wire_messages(p2p)
        assert (coll.wire_bytes - coll.wire_bytes_saved) < p2p.wire_bytes

    def test_collective_graph_still_tracks_truth(self, crack_setup):
        model, truth, observations = crack_setup
        system = build_particle_filter_graph(
            model, observations, n_particles=100, n_pes=4, collectives=True
        )
        SpiSystem.compile(system.graph, system.partition).run(
            iterations=len(observations)
        )
        estimates = np.asarray(system.estimates())
        rmse = float(np.sqrt(np.mean((estimates - truth) ** 2)))
        assert rmse < 3 * model.measurement_noise
