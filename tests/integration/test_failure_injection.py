"""Failure injection: mis-configured systems must fail loudly.

Errors should never pass silently: wrong capacities overflow with a
named buffer, miswired protocols raise protocol violations, deadlocks
report the blocked tasks, and corrupted dynamic headers are caught at
the receiver.
"""

import pytest

from repro.dataflow import (
    DataflowGraph,
    DynamicRate,
    GraphError,
    InconsistentGraphError,
)
from repro.mapping import Partition
from repro.platform import BufferOverflowError, SimulationDeadlock
from repro.spi import Protocol, ProtocolConfig, SpiChannel, SpiConfig, SpiSystem


def two_actor_graph(prod_cycles=5, cons_cycles=50):
    graph = DataflowGraph("two")
    a = graph.actor("A", cycles=prod_cycles)
    b = graph.actor("B", cycles=cons_cycles)
    a.add_output("o")
    b.add_input("i")
    graph.connect((a, "o"), (b, "i"))
    return graph, Partition(graph, 2, {"A": 0, "B": 1})


class TestCompileTimeRejection:
    def test_inconsistent_graph_rejected_at_compile(self):
        graph = DataflowGraph("bad")
        a = graph.actor("A")
        b = graph.actor("B")
        a.add_output("o1", rate=2)
        a.add_output("o2", rate=3)
        b.add_input("i1", rate=1)
        b.add_input("i2", rate=1)
        graph.connect((a, "o1"), (b, "i1"))
        graph.connect((a, "o2"), (b, "i2"))
        partition = Partition(graph, 2, {"A": 0, "B": 1})
        with pytest.raises(InconsistentGraphError):
            SpiSystem.compile(graph, partition)

    def test_unvalidated_graph_rejected(self):
        graph = DataflowGraph("dangling")
        a = graph.actor("A")
        a.add_output("o")  # never connected, not an interface
        partition = Partition(graph, 1, {"A": 0})
        with pytest.raises(GraphError, match="unconnected"):
            SpiSystem.compile(graph, partition)

    def test_zero_delay_cycle_rejected(self):
        graph = DataflowGraph("dead")
        a = graph.actor("A")
        b = graph.actor("B")
        a.add_input("i")
        a.add_output("o")
        b.add_input("i")
        b.add_output("o")
        graph.connect((a, "o"), (b, "i"))
        graph.connect((b, "o"), (a, "i"))  # no delay anywhere
        partition = Partition(graph, 2, {"A": 0, "B": 1})
        with pytest.raises(GraphError):
            SpiSystem.compile(graph, partition)


class TestRunTimeViolations:
    def test_dynamic_header_size_mismatch_detected(self):
        """A message whose size field disagrees with its payload is a
        transport corruption; SPI_receive refuses it."""
        graph = DataflowGraph("ch")
        a = graph.actor("A")
        b = graph.actor("B")
        a.add_output("o")
        b.add_input("i")
        edge = graph.connect((a, "o"), (b, "i"))
        channel = SpiChannel(
            edge=edge,
            src_pe=0,
            dst_pe=1,
            config=ProtocolConfig(Protocol.BBS, 2, False),
            dynamic=True,
            token_bytes=4,
            recv_capacity_bytes=64,
        )
        from repro.spi.message import Message, MessageKind

        corrupt = Message(
            kind=MessageKind.DATA,
            edge_id=edge.edge_id,
            payload=(1, 2, 3),
            payload_bytes=12,
            size_field=7,  # lies about the payload length
        )
        channel.deliver(corrupt)
        from repro.platform import Simulator, Interconnect
        from repro.spi.actors import LocalFifo, SpiReceiveTask

        sim = Simulator()
        recv_actor = DataflowGraph("x").actor("recv", cycles=1)
        recv_actor.add_output("out")
        out_graph = DataflowGraph("fifo_holder")
        fa = out_graph.actor("fa")
        fb = out_graph.actor("fb")
        fa.add_output("o")
        fb.add_input("i")
        fifo = LocalFifo(out_graph.connect((fa, "o"), (fb, "i")))
        task = SpiReceiveTask(recv_actor, channel, fifo, sim, Interconnect())
        task.start(0)
        with pytest.raises(RuntimeError, match="size"):
            task.finish(0)

    def test_undersized_buffer_overflows_loudly(self):
        """If the user hand-shrinks a channel buffer below the bound,
        the violation is an exception naming the buffer, never silent
        data loss."""
        graph, partition = two_actor_graph(prod_cycles=5, cons_cycles=500)
        system = SpiSystem.compile(
            graph,
            partition,
            SpiConfig(protocol_policy="always_ubs", resynchronize=False),
        )
        # sabotage: shrink the planned window below what flow control
        # was configured for by disabling acks but keeping the window
        for plan in system.channel_plans.values():
            plan.acks_enabled = False
            plan.capacity_messages = 1
        with pytest.raises(BufferOverflowError, match="recv"):
            system.run(iterations=50)

    def test_deadlock_diagnostic_names_blocked_task(self):
        """A consumer waiting on data that never comes reports itself."""
        from repro.platform import PESequencer, ProcessingElement, Simulator

        class NeverReady:
            name = "starved"

            def ready(self, now):
                return False

            def start(self, now):
                return 1

            def finish(self, now):
                pass

        sim = Simulator()
        seq = PESequencer(
            sim, ProcessingElement(0), [NeverReady()], iterations=1
        )
        seq.begin()
        with pytest.raises(SimulationDeadlock, match="starved"):
            sim.run()


class TestDeterminism:
    def test_identical_runs(self):
        """Two runs of the same compiled system are cycle-identical."""
        graph, partition = two_actor_graph()
        system = SpiSystem.compile(graph, partition)
        first = system.run(iterations=20)
        second = system.run(iterations=20)
        assert first.cycles == second.cycles
        assert first.data_messages == second.data_messages
        assert first.buffer_high_water == second.buffer_high_water

    def test_recompile_deterministic(self):
        graph, partition = two_actor_graph()
        a = SpiSystem.compile(graph, partition).run(iterations=10)
        b = SpiSystem.compile(graph, partition).run(iterations=10)
        assert a.cycles == b.cycles

    def test_vts_run_deterministic(self):
        graph = DataflowGraph("dyn")

        def burst(k, inputs):
            return {"o": list(range(k % 5 + 1))}

        a = graph.actor("A", kernel=burst, cycles=4)
        b = graph.actor("B", cycles=4)
        a.add_output("o", rate=DynamicRate(5))
        b.add_input("i", rate=DynamicRate(5))
        graph.connect((a, "o"), (b, "i"))
        partition = Partition(graph, 2, {"A": 0, "B": 1})
        system = SpiSystem.compile(graph, partition)
        runs = [system.run(iterations=10) for _ in range(2)]
        assert runs[0].payload_bytes == runs[1].payload_bytes
        assert runs[0].cycles == runs[1].cycles
