"""Property-based fuzzing of the whole stack on random SDF graphs.

Graph generation is delegated to the conformance subsystem's seeded
generator (:mod:`repro.conformance.generator`): hypothesis draws seeds
and shape knobs, the generator turns them into replayable specs, and
the invariants below must hold for every materialised case:

* the repetitions vector satisfies the balance equations,
* the PASS is admissible and restores the initial token state,
* HSDF expansion has sum-of-repetitions many vertices and is itself
  consistent and schedulable,
* SPI compilation + self-timed simulation completes (no deadlock) with
  exactly the statically-predicted number of data messages,
* no channel buffer ever exceeds its planned capacity,
* the measured steady-state period is never below the MCM bound of the
  synchronization graph.

Any failure here reproduces from its seed alone:
``repro conform --replay <seed>`` (with matching ``--shape``) re-runs
the exact same case under the full oracle stack.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance import GraphShape, build_case, generate_spec
from repro.dataflow import build_pass, repetitions_vector
from repro.dataflow.hsdf import hsdf_expand
from repro.spi import SpiConfig, SpiSystem

SEEDS = st.integers(min_value=0, max_value=100_000)

#: static-only shape: the SDF/HSDF analyses reject dynamic rates
STATIC_SHAPE = GraphShape(dynamic_prob=0.0)


@st.composite
def conformance_cases(draw, shape=None):
    """A generator-produced case, replayable from its printed seed."""
    return build_case(generate_spec(draw(SEEDS), shape or GraphShape()))


class TestSdfInvariants:
    @given(seed=SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_balance_and_pass(self, seed):
        graph = build_case(generate_spec(seed, STATIC_SHAPE)).graph
        reps = repetitions_vector(graph)
        for edge in graph.edges:
            assert (
                reps[edge.src_actor.name] * edge.source.rate
                == reps[edge.snk_actor.name] * edge.sink.rate
            )
        schedule = build_pass(graph)  # generated delays keep cycles live
        assert len(schedule) == sum(reps.values())

    @given(seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_hsdf_expansion_invariants(self, seed):
        graph = build_case(generate_spec(seed, STATIC_SHAPE)).graph
        reps = repetitions_vector(graph)
        expanded = hsdf_expand(graph)
        assert len(expanded) == sum(reps.values())
        expanded_reps = repetitions_vector(expanded)
        assert all(count == 1 for count in expanded_reps.values())
        assert len(build_pass(expanded)) == len(expanded)

    @given(seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_generation_is_deterministic(self, seed):
        assert generate_spec(seed) == generate_spec(seed)


class TestSpiStackInvariants:
    @given(case=conformance_cases())
    @settings(max_examples=20, deadline=None)
    def test_compile_run_completes_with_predicted_traffic(self, case):
        # resynchronization off: this test isolates the traffic contract
        system = SpiSystem.compile(
            case.graph, case.partition, SpiConfig(resynchronize=False)
        )
        iterations = 3
        result = system.run(iterations=iterations, max_cycles=10_000_000)

        reps = repetitions_vector(system.insertion.graph)
        expected_messages = sum(
            reps[plan.send_actor] for plan in system.channel_plans.values()
        ) * iterations
        assert result.data_messages == expected_messages

        for name, plan in system.channel_plans.items():
            bound = (plan.capacity_messages + 1) * plan.message_payload_bytes
            assert result.buffer_high_water[name] <= bound

    @given(case=conformance_cases())
    @settings(max_examples=10, deadline=None)
    def test_makespan_never_beats_mcm(self, case):
        """MCM is an asymptotic lower bound; initial delay tokens allow a
        bounded transient run-ahead, so compare total makespan against
        ``MCM * (iterations - total_delays)`` — the provable form."""
        system = SpiSystem.compile(case.graph, case.partition)
        iterations = 12
        result = system.run(iterations=iterations, max_cycles=10_000_000)
        mcm = system.estimated_iteration_period_cycles()
        slack_iterations = sum(
            e.delay for e in system.insertion.graph.edges
        ) + 1
        floor = mcm * max(0, iterations - slack_iterations)
        assert result.cycles >= floor - 1e-6

    @given(case=conformance_cases())
    @settings(max_examples=10, deadline=None)
    def test_ubs_policy_also_completes(self, case):
        """Forced UBS with a small window must still be deadlock-free,
        with and without resynchronization (whose added sync edges are
        enforced at run time)."""
        for resync in (False, True):
            system = SpiSystem.compile(
                case.graph,
                case.partition,
                SpiConfig(
                    protocol_policy="always_ubs",
                    ubs_window=2,
                    resynchronize=resync,
                ),
            )
            result = system.run(iterations=6, max_cycles=10_000_000)
            assert result.iterations == 6
