"""Property-based fuzzing of the whole stack on random SDF graphs.

Hypothesis generates random consistent multirate DAGs with random
delays, execution times and partitions; the invariants below must hold
for every one of them:

* the repetitions vector satisfies the balance equations,
* the PASS is admissible and restores the initial token state,
* HSDF expansion has sum-of-repetitions many vertices and is itself
  consistent and schedulable,
* SPI compilation + self-timed simulation completes (no deadlock) with
  exactly the statically-predicted number of data messages,
* no channel buffer ever exceeds its planned capacity,
* the measured steady-state period is never below the MCM bound of the
  synchronization graph.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import (
    DataflowGraph,
    build_pass,
    repetitions_vector,
)
from repro.dataflow.hsdf import hsdf_expand
from repro.mapping import Partition
from repro.spi import SpiConfig, SpiSystem


@st.composite
def random_sdf_graph(draw):
    """A random *consistent* SDF DAG.

    Consistency by construction: draw the repetitions vector ``q``
    first, then give every edge rates ``prod = k * lcm / q_src`` and
    ``cons = k * lcm / q_snk`` so the balance equation holds regardless
    of the DAG shape (reconvergent paths included).
    """
    import math

    n_actors = draw(st.integers(2, 6))
    graph = DataflowGraph("fuzz")
    actors = []
    reps = []
    for index in range(n_actors):
        cycles = draw(st.integers(1, 50))
        actors.append(graph.actor(f"a{index}", cycles=cycles))
        reps.append(draw(st.integers(1, 4)))
    edges = 0
    for index in range(1, n_actors):
        # each actor consumes from >=1 earlier actor: graph stays a DAG
        n_inputs = draw(st.integers(1, min(2, index)))
        sources = draw(
            st.lists(
                st.integers(0, index - 1),
                min_size=n_inputs,
                max_size=n_inputs,
                unique=True,
            )
        )
        for src_index in sources:
            q_src, q_snk = reps[src_index], reps[index]
            lcm = q_src * q_snk // math.gcd(q_src, q_snk)
            k = draw(st.integers(1, 2))
            prod = k * lcm // q_src
            cons = k * lcm // q_snk
            delay = draw(st.integers(0, 2))
            src = actors[src_index]
            snk = actors[index]
            out_port = src.add_output(f"o{edges}", rate=prod)
            in_port = snk.add_input(f"i{edges}", rate=cons)
            graph.connect(out_port, in_port, delay=delay)
            edges += 1
    graph.validate()
    return graph


@st.composite
def graph_with_partition(draw):
    graph = draw(random_sdf_graph())
    n_pes = draw(st.integers(1, 3))
    assignment = {
        actor.name: draw(st.integers(0, n_pes - 1)) for actor in graph
    }
    return graph, Partition(graph, n_pes, assignment)


class TestSdfInvariants:
    @given(graph=random_sdf_graph())
    @settings(max_examples=40, deadline=None)
    def test_balance_and_pass(self, graph):
        reps = repetitions_vector(graph)
        for edge in graph.edges:
            assert (
                reps[edge.src_actor.name] * edge.source.rate
                == reps[edge.snk_actor.name] * edge.sink.rate
            )
        schedule = build_pass(graph)  # DAGs never deadlock
        assert len(schedule) == sum(reps.values())

    @given(graph=random_sdf_graph())
    @settings(max_examples=30, deadline=None)
    def test_hsdf_expansion_invariants(self, graph):
        reps = repetitions_vector(graph)
        expanded = hsdf_expand(graph)
        assert len(expanded) == sum(reps.values())
        expanded_reps = repetitions_vector(expanded)
        assert all(count == 1 for count in expanded_reps.values())
        assert len(build_pass(expanded)) == len(expanded)


class TestSpiStackInvariants:
    @given(case=graph_with_partition())
    @settings(max_examples=20, deadline=None)
    def test_compile_run_completes_with_predicted_traffic(self, case):
        graph, partition = case
        # resynchronization off: this test isolates the traffic contract
        system = SpiSystem.compile(
            graph, partition, SpiConfig(resynchronize=False)
        )
        iterations = 3
        result = system.run(iterations=iterations, max_cycles=10_000_000)

        reps = repetitions_vector(system.insertion.graph)
        expected_messages = sum(
            reps[plan.send_actor] for plan in system.channel_plans.values()
        ) * iterations
        assert result.data_messages == expected_messages

        for name, plan in system.channel_plans.items():
            bound = (plan.capacity_messages + 1) * plan.message_payload_bytes
            assert result.buffer_high_water[name] <= bound

    @given(case=graph_with_partition())
    @settings(max_examples=10, deadline=None)
    def test_makespan_never_beats_mcm(self, case):
        """MCM is an asymptotic lower bound; initial delay tokens allow a
        bounded transient run-ahead, so compare total makespan against
        ``MCM * (iterations - total_delays)`` — the provable form."""
        graph, partition = case
        system = SpiSystem.compile(graph, partition)
        iterations = 12
        result = system.run(iterations=iterations, max_cycles=10_000_000)
        mcm = system.estimated_iteration_period_cycles()
        slack_iterations = sum(
            e.delay for e in system.insertion.graph.edges
        ) + 1
        floor = mcm * max(0, iterations - slack_iterations)
        assert result.cycles >= floor - 1e-6

    @given(case=graph_with_partition())
    @settings(max_examples=10, deadline=None)
    def test_ubs_policy_also_completes(self, case):
        """Forced UBS with a small window must still be deadlock-free,
        with and without resynchronization (whose added sync edges are
        enforced at run time)."""
        graph, partition = case
        for resync in (False, True):
            system = SpiSystem.compile(
                graph,
                partition,
                SpiConfig(
                    protocol_policy="always_ubs",
                    ubs_window=2,
                    resynchronize=resync,
                ),
            )
            result = system.run(iterations=6, max_cycles=10_000_000)
            assert result.iterations == 6
