"""Shrinker tests: minimisation, replay artefacts, pytest repro."""

import pytest

from repro.conformance import (
    build_case,
    generate_spec,
    load_replay_file,
    oracle_failure_predicate,
    render_pytest_repro,
    run_oracle_stack,
    shrink,
    write_replay_file,
)
from repro.conformance.spec import SpecError


def _mutated_bound(plan):
    """Occupancy bound one message too small — the injected defect."""
    return max(0, plan.capacity_messages - 1) * plan.message_payload_bytes


def _first_caught_seed():
    for seed in range(40):
        case = build_case(generate_spec(seed))
        report = run_oracle_stack(case, occupancy_bound_fn=_mutated_bound)
        if any(v.oracle == "occupancy" for v in report.violations):
            return seed
    raise AssertionError("no seed tripped the mutated occupancy bound")


class TestMutationShrinks:
    def test_injected_bound_off_by_one_shrinks_small(self):
        """ISSUE acceptance: the occupancy-vs-B(e) oracle catches an
        intentionally injected off-by-one and the shrinker reduces the
        counterexample to at most 4 actors."""
        seed = _first_caught_seed()
        predicate = oracle_failure_predicate(
            "occupancy", occupancy_bound_fn=_mutated_bound
        )
        spec = generate_spec(seed)
        assert predicate(spec)
        result = shrink(spec, predicate)
        assert len(result.spec.actors) <= 4
        assert predicate(result.spec)  # the minimum still fails
        assert result.steps > 0

    def test_shrink_is_a_fixpoint_wrt_candidates(self):
        seed = _first_caught_seed()
        predicate = oracle_failure_predicate(
            "occupancy", occupancy_bound_fn=_mutated_bound
        )
        result = shrink(generate_spec(seed), predicate)
        from repro.conformance.shrinker import _candidates

        assert not any(
            predicate(candidate) for candidate in _candidates(result.spec)
        )


class TestCandidateSafety:
    def test_invalid_candidates_are_skipped(self):
        """Candidate specs that fail to build count as not-failing."""
        predicate = oracle_failure_predicate("occupancy")
        spec = generate_spec(0)
        # predicate on a valid, passing spec is simply False
        assert predicate(spec) is False

    def test_shrink_requires_nothing_when_already_minimal(self):
        spec = generate_spec(0)
        result = shrink(spec, lambda s: True, max_attempts=200)
        assert len(result.spec.actors) == 1
        assert result.spec.n_pes == 1


class TestArtefacts:
    def test_replay_file_roundtrip(self, tmp_path):
        spec = generate_spec(7)
        path = write_replay_file(spec, tmp_path / "replay_7.json")
        assert load_replay_file(path) == spec

    def test_replay_file_rejects_other_schemas(self, tmp_path):
        target = tmp_path / "bogus.json"
        target.write_text('{"schema": "other/1"}')
        with pytest.raises(SpecError, match="replay"):
            load_replay_file(target)

    def test_pytest_repro_is_executable_source(self):
        spec = generate_spec(3)
        source = render_pytest_repro(spec, "occupancy")
        namespace = {}
        exec(compile(source, "<repro>", "exec"), namespace)  # noqa: S102
        test_fn = namespace[f"test_seed_{spec.seed}_conforms"]
        test_fn()  # seed 3 conforms, so the generated test passes
