"""Unit tests for the seeded graph generator and its shape knobs."""

import pytest

from repro.conformance import GraphShape, build_case, generate_spec
from repro.dataflow import repetitions_vector


class TestDeterminism:
    def test_same_seed_same_spec(self):
        assert generate_spec(42) == generate_spec(42)

    def test_different_seeds_differ_somewhere(self):
        specs = {generate_spec(seed).to_json().__str__() for seed in range(20)}
        assert len(specs) > 1

    def test_shape_changes_distribution(self):
        small = GraphShape(min_actors=3, max_actors=3)
        assert all(
            len(generate_spec(seed, small).actors) == 3 for seed in range(10)
        )


class TestGeneratedGraphsAreValid:
    @pytest.mark.parametrize("seed", range(25))
    def test_builds_and_is_consistent(self, seed):
        spec = generate_spec(seed)
        case = build_case(spec)
        if not case.graph.is_dynamic:
            reps = repetitions_vector(case.graph)
            assert reps == spec.repetitions()

    def test_dynamic_edges_respect_restrictions(self):
        shape = GraphShape(dynamic_prob=1.0, max_repetition=1)
        for seed in range(10):
            spec = generate_spec(seed, shape)
            for edge in spec.edges:
                if edge.dynamic:
                    assert edge.delay_tokens == 0
                    assert all(
                        1 <= r <= edge.dyn_bound for r in edge.rate_sequence
                    )

    def test_static_only_shape(self):
        shape = GraphShape(dynamic_prob=0.0)
        for seed in range(10):
            assert not any(e.dynamic for e in generate_spec(seed, shape).edges)

    def test_pe_count_respected(self):
        shape = GraphShape(max_pes=1)
        for seed in range(5):
            spec = generate_spec(seed, shape)
            assert spec.n_pes == 1
            assert all(pe == 0 for _, pe in spec.assignment)


class TestShapeParsing:
    def test_parse_empty_gives_defaults(self):
        assert GraphShape.parse(None) == GraphShape()
        assert GraphShape.parse("") == GraphShape()

    def test_parse_overrides(self):
        shape = GraphShape.parse("max_actors=5, dynamic_prob=0.5")
        assert shape.max_actors == 5
        assert shape.dynamic_prob == 0.5

    def test_parse_rejects_unknown_knob(self):
        with pytest.raises(ValueError, match="unknown shape knob"):
            GraphShape.parse("bogus=1")

    def test_parse_rejects_malformed_item(self):
        with pytest.raises(ValueError, match="k=v"):
            GraphShape.parse("max_actors")

    def test_parse_rejects_bad_value(self):
        with pytest.raises(ValueError):
            GraphShape.parse("max_actors=lots")

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            GraphShape(min_actors=5, max_actors=3)
        with pytest.raises(ValueError):
            GraphShape(dynamic_prob=1.5)
        with pytest.raises(ValueError):
            GraphShape(max_pes=0)


class TestBatchKnob:
    def test_default_draws_no_batch(self):
        for seed in range(15):
            spec = generate_spec(seed)
            assert spec.batch == 1
            assert spec.accelerators == ()

    def test_batch_draw_is_rng_stream_appended(self):
        # the batch draw happens after every other draw, so enabling
        # the knob must leave the rest of the spec untouched — the
        # campaign's seed -> graph mapping stays stable
        from dataclasses import replace

        for seed in range(15):
            batched = generate_spec(seed, GraphShape(batch_prob=1.0))
            assert replace(
                batched, batch=1, accelerators=()
            ) == generate_spec(seed)

    def test_batched_spec_shape(self):
        shape = GraphShape(batch_prob=1.0, max_batch=5)
        for seed in range(15):
            spec = generate_spec(seed, shape)
            assert 2 <= spec.batch <= 5
            assert spec.accelerators  # at least one accelerator PE
            assert spec.accelerators == tuple(sorted(set(spec.accelerators)))
            assert all(0 <= pe < spec.n_pes for pe in spec.accelerators)

    def test_batch_knob_validation(self):
        with pytest.raises(ValueError):
            GraphShape(batch_prob=1.5)
        with pytest.raises(ValueError):
            GraphShape(max_batch=1)
