"""Unit tests for conformance specs: validation, rates, serialisation."""

import pytest

from repro.conformance import (
    ActorSpec,
    EdgeSpec,
    GraphSpec,
    SpecError,
    build_case,
)


def two_actor_spec(**edge_kwargs):
    edge = EdgeSpec(src="a0", snk="a1", **edge_kwargs)
    return GraphSpec(
        seed=1,
        actors=(ActorSpec("a0", 2, 5), ActorSpec("a1", 3, 7)),
        edges=(edge,),
        n_pes=2,
        assignment=(("a0", 0), ("a1", 1)),
    )


class TestValidation:
    def test_rejects_bad_actor(self):
        with pytest.raises(SpecError):
            ActorSpec("", 1, 1)
        with pytest.raises(SpecError):
            ActorSpec("a", 0, 1)
        with pytest.raises(SpecError):
            ActorSpec("a", 1, 0)

    def test_rejects_unknown_edge_endpoint(self):
        with pytest.raises(SpecError, match="unknown"):
            GraphSpec(
                seed=0,
                actors=(ActorSpec("a0", 1, 1),),
                edges=(EdgeSpec(src="a0", snk="ghost"),),
                n_pes=1,
                assignment=(("a0", 0),),
            )

    def test_rejects_unassigned_actor(self):
        with pytest.raises(SpecError, match="no PE assignment"):
            GraphSpec(
                seed=0,
                actors=(ActorSpec("a0", 1, 1),),
                edges=(),
                n_pes=1,
                assignment=(),
            )

    def test_rejects_pe_out_of_range(self):
        with pytest.raises(SpecError, match="out of range"):
            GraphSpec(
                seed=0,
                actors=(ActorSpec("a0", 1, 1),),
                edges=(),
                n_pes=1,
                assignment=(("a0", 3),),
            )

    def test_rejects_dynamic_edge_with_delay(self):
        with pytest.raises(SpecError, match="delay"):
            EdgeSpec(
                src="a",
                snk="b",
                dynamic=True,
                delay_tokens=2,
                dyn_bound=3,
                rate_sequence=(1,),
            )

    def test_rejects_rate_sequence_outside_bound(self):
        with pytest.raises(SpecError, match="outside"):
            EdgeSpec(
                src="a", snk="b", dynamic=True, dyn_bound=2,
                rate_sequence=(3,),
            )

    def test_dynamic_edge_needs_equal_repetitions(self):
        spec = two_actor_spec(dynamic=True, dyn_bound=2, rate_sequence=(1, 2))
        with pytest.raises(SpecError, match="equal"):
            build_case(spec)


class TestDerivedRates:
    def test_rates_satisfy_balance_equation(self):
        spec = two_actor_spec(rate_factor=2)
        prod, cons = spec.resolved_rates(spec.edges[0])
        # q = (2, 3): lcm 6, k = 2 -> prod 6, cons 4; 2*6 == 3*4
        assert (prod, cons) == (6, 4)
        assert 2 * prod == 3 * cons

    def test_build_case_materialises_rates(self):
        spec = two_actor_spec(rate_factor=1)
        case = build_case(spec)
        edge = case.graph.edges[0]
        assert edge.source.rate == 3
        assert edge.sink.rate == 2
        assert case.partition.n_pes == 2


class TestSerialisation:
    def test_json_roundtrip(self):
        spec = two_actor_spec(rate_factor=2, delay_tokens=4)
        assert GraphSpec.from_json(spec.to_json()) == spec

    def test_json_roundtrip_dynamic(self):
        edge = EdgeSpec(
            src="a0", snk="a1", dynamic=True, dyn_bound=3,
            rate_sequence=(1, 3, 2),
        )
        spec = GraphSpec(
            seed=9,
            actors=(ActorSpec("a0", 1, 5), ActorSpec("a1", 1, 7)),
            edges=(edge,),
            n_pes=1,
            assignment=(("a0", 0), ("a1", 0)),
        )
        assert GraphSpec.from_json(spec.to_json()) == spec

    def test_rejects_foreign_schema(self):
        with pytest.raises(SpecError, match="schema"):
            GraphSpec.from_json({"schema": "something/else"})


class TestKernels:
    def test_kernels_are_deterministic(self):
        spec = two_actor_spec()
        streams = []
        for _ in range(2):
            case = build_case(spec)
            case.tap.begin("probe")
            outputs = case.graph.get_actor("a0").fire(0, {})
            streams.append(outputs)
        assert streams[0] == streams[1]
        assert len(streams[0]["o0"]) == 3  # the resolved producer rate

    def test_tap_records_per_run(self):
        case = build_case(two_actor_spec())
        case.tap.begin("first")
        case.graph.get_actor("a0").fire(0, {})
        case.tap.begin("second")
        assert case.tap.streams("first")["a0"]
        assert case.tap.streams("second") == {}
        assert set(case.tap.runs) == {"first", "second"}


class TestBatchFields:
    def test_defaults(self):
        spec = two_actor_spec()
        assert spec.batch == 1
        assert spec.accelerators == ()

    def test_rejects_bad_batch(self):
        edge = EdgeSpec(src="a0", snk="a1")
        with pytest.raises(SpecError, match="batch"):
            GraphSpec(
                seed=1,
                actors=(ActorSpec("a0", 2, 5), ActorSpec("a1", 3, 7)),
                edges=(edge,),
                n_pes=2,
                assignment=(("a0", 0), ("a1", 1)),
                batch=0,
            )

    def test_rejects_bad_accelerators(self):
        edge = EdgeSpec(src="a0", snk="a1")

        def make(accelerators):
            return GraphSpec(
                seed=1,
                actors=(ActorSpec("a0", 2, 5), ActorSpec("a1", 3, 7)),
                edges=(edge,),
                n_pes=2,
                assignment=(("a0", 0), ("a1", 1)),
                accelerators=accelerators,
            )

        with pytest.raises(SpecError):
            make((2,))  # out of range
        with pytest.raises(SpecError):
            make((0, 0))  # duplicate

    def test_json_roundtrip_with_batch(self):
        edge = EdgeSpec(src="a0", snk="a1")
        spec = GraphSpec(
            seed=1,
            actors=(ActorSpec("a0", 2, 5), ActorSpec("a1", 3, 7)),
            edges=(edge,),
            n_pes=2,
            assignment=(("a0", 0), ("a1", 1)),
            batch=4,
            accelerators=(0, 1),
        )
        assert GraphSpec.from_json(spec.to_json()) == spec

    def test_legacy_documents_default_unbatched(self):
        # pre-batching campaign corpora have neither key: they must
        # load as unbatched all-gpp specs, not raise
        document = two_actor_spec().to_json()
        document.pop("batch")
        document.pop("accelerators")
        loaded = GraphSpec.from_json(document)
        assert loaded.batch == 1
        assert loaded.accelerators == ()

    def test_accelerated_case_compiles_with_batch(self):
        from dataclasses import replace

        spec = replace(
            two_actor_spec(), batch=3, accelerators=(0, 1)
        )
        case = build_case(spec)
        assert case.partition.requested_batch == 3
        assert case.partition.has_accelerators
