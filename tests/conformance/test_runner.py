"""Campaign runner tests: report schema, determinism, seed replay."""

import pytest

from repro.conformance import CampaignConfig, replay_seed, run_campaign
from repro.observability.bench import BENCH_SCHEMA


def _scrub_wall_time(report):
    """Strip wall-clock fields; everything else must be deterministic."""
    scrubbed = dict(report)
    bench = dict(scrubbed["bench"])
    bench.pop("wall_seconds")
    bench.pop("cycles_per_wall_second")
    scrubbed["bench"] = bench
    return scrubbed


class TestCampaign:
    def test_report_schema_and_bench_embedding(self):
        report = run_campaign(CampaignConfig(seeds=3, quick=True))
        assert report["schema"] == "repro.conformance/1"
        assert report["checked"] == 3
        assert report["failing_seeds"] == []
        assert report["bench"]["schema"] == BENCH_SCHEMA
        assert report["bench"]["extra"]["seeds"] == 3
        assert len(report["cases"]) == 3

    def test_campaign_is_deterministic(self):
        config = CampaignConfig(seeds=4, quick=True)
        first = _scrub_wall_time(run_campaign(config))
        second = _scrub_wall_time(run_campaign(config))
        assert first == second

    def test_seed_start_offsets_the_range(self):
        report = run_campaign(
            CampaignConfig(seeds=2, seed_start=10, quick=True)
        )
        seeds = [case["seed"] for case in report["cases"]]
        assert seeds == [10, 11]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(seeds=0)
        with pytest.raises(ValueError):
            CampaignConfig(iterations=0)


class TestReplay:
    def test_replay_matches_campaign_member(self):
        """--replay SEED must reproduce the campaign's result for that
        seed exactly (modulo wall time)."""
        campaign = run_campaign(
            CampaignConfig(seeds=3, seed_start=5, quick=True)
        )
        replayed = replay_seed(6, CampaignConfig(seeds=1, quick=True))
        campaign_case = next(
            case for case in campaign["cases"] if case["seed"] == 6
        )
        assert replayed["cases"] == [campaign_case]
        assert replayed["checked"] == 1
        assert replayed["seed_start"] == 6
