"""Oracle-stack tests: clean seeds pass, injected defects are caught."""

import pytest

from repro.conformance import (
    ActorSpec,
    EdgeSpec,
    GraphSpec,
    build_case,
    generate_spec,
    run_oracle_stack,
    run_reference,
)
from repro.conformance.reference import ReferenceError


class TestReferenceExecution:
    def test_reference_streams_cover_every_actor(self):
        case = build_case(generate_spec(0))
        streams = run_reference(case, iterations=2)
        assert set(streams) == {a.name for a in case.spec.actors}
        reps = case.spec.repetitions()
        for name, firings in streams.items():
            assert len(firings) == 2 * reps[name]
            # firing indices are consecutive from zero
            assert [entry[0] for entry in firings] == list(
                range(2 * reps[name])
            )

    def test_reference_validates_iterations(self):
        case = build_case(generate_spec(0))
        with pytest.raises(ReferenceError):
            run_reference(case, iterations=0)


class TestCleanSeedsConform:
    @pytest.mark.parametrize("seed", range(8))
    def test_full_stack_clean(self, seed):
        case = build_case(generate_spec(seed))
        report = run_oracle_stack(case)
        assert report.ok, [v.to_json() for v in report.violations]
        assert "spi" in report.runs
        assert "mpi" in report.runs
        assert "reference" in report.runs

    def test_quick_mode_runs_fewer_configs(self):
        case = build_case(generate_spec(1))
        report = run_oracle_stack(case, quick=True)
        assert report.ok
        assert "spi-noresync" not in report.runs
        assert "spi-ubs" not in report.runs


class TestDefectsAreCaught:
    def test_mutated_occupancy_bound_fires(self):
        """Tightening the bound below real occupancy must raise a
        violation — proof the occupancy oracle actually observes the
        simulated buffers (mutation check, ISSUE acceptance)."""

        def off_by_one(plan):
            return max(0, plan.capacity_messages - 1) * plan.message_payload_bytes

        caught = 0
        for seed in range(10):
            case = build_case(generate_spec(seed))
            report = run_oracle_stack(case, occupancy_bound_fn=off_by_one)
            if any(v.oracle == "occupancy" for v in report.violations):
                caught += 1
        assert caught > 0

    def test_execution_failure_is_reported_not_raised(self):
        """A structurally deadlocked graph (zero-delay cycle) turns into
        an execution violation, not an exception."""
        spec = GraphSpec(
            seed=123,
            actors=(ActorSpec("a0", 1, 5), ActorSpec("a1", 1, 5)),
            edges=(
                EdgeSpec(src="a0", snk="a1"),
                EdgeSpec(src="a1", snk="a0", delay_tokens=0),
            ),
            n_pes=2,
            assignment=(("a0", 0), ("a1", 1)),
        )
        case = build_case(spec)
        report = run_oracle_stack(case, quick=True)
        assert not report.ok
        assert all(v.oracle == "execution" for v in report.violations)

    def test_report_json_shape(self):
        case = build_case(generate_spec(2))
        document = run_oracle_stack(case, quick=True).to_json()
        assert document["ok"] is True
        assert document["seed"] == 2
        assert "spi" in document["runs"]
