"""Batching A/B oracle: blocking factors never change computed data.

Two tiers of the equivalence contract:

* **gpp no-op** — a requested blocking factor on an all-gpp platform is
  discarded at compile time (batching only amortizes accelerator
  dispatch overhead), so for every seed the run must be *bit-identical*
  to batch=1: token streams, makespan, message counts and occupancy
  high-waters alike.
* **heterogeneous** — with accelerator PEs the blocked schedule
  reorders time, not data: token streams and message counts must still
  match batch=1 exactly (each batched send stays B separate wire
  messages in FIFO order); only timing and occupancy may differ.

Token values depend only on per-edge FIFO order, which a macro-batched
sequencer preserves (a burst fires B logical firings in their original
relative order), so any divergence here is a batching bug, not
nondeterminism.
"""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.conformance import GraphShape, build_case, generate_spec
from repro.spi import SpiSystem

SEED_COUNT = 50
ITERATIONS = 6  # not a batch multiple: exercises the tail macro-pass
REQUESTED_BATCH = 4


def _run(spec, label: str):
    """Fresh case per run: stateful actor kernels must not leak across."""
    case = build_case(spec)
    system = SpiSystem.compile(case.graph, case.partition)
    case.tap.begin(label)
    result = system.run(
        iterations=ITERATIONS,
        max_cycles=10_000_000,
        metrics=True,
    )
    return case.tap.streams(label), result, system.batch


def _bit_identical_view(result) -> dict:
    return {
        "cycles": result.cycles,
        "data_messages": result.data_messages,
        "ack_messages": result.ack_messages,
        "buffer_high_water": dict(result.buffer_high_water),
        "fifo_high_water": dict(result.fifo_high_water),
    }


def test_gpp_batch_request_is_bit_identical():
    """Tier 1: any requested B on an all-gpp platform is a no-op."""
    diverged = []
    for seed in range(SEED_COUNT):
        spec = generate_spec(seed)
        plain_streams, plain, _ = _run(spec, "batch1")
        batched_spec = replace(spec, batch=REQUESTED_BATCH)
        batched_streams, batched, effective = _run(batched_spec, "batchB")
        if effective != 1:
            diverged.append(f"seed {seed}: gpp batch not clamped to 1")
        if batched_streams != plain_streams:
            diverged.append(f"seed {seed}: token streams")
        if _bit_identical_view(batched) != _bit_identical_view(plain):
            diverged.append(f"seed {seed}: run metrics")
    assert not diverged, "; ".join(diverged)


def test_hetero_batch_preserves_streams_and_messages():
    """Tier 2: on accelerator platforms batching keeps data identical."""
    diverged = []
    batched_seeds = 0
    for seed in range(SEED_COUNT):
        spec = generate_spec(seed)
        accelerated = replace(
            spec, accelerators=tuple(range(spec.n_pes))
        )
        plain_streams, plain, _ = _run(accelerated, "batch1")
        batched_spec = replace(accelerated, batch=REQUESTED_BATCH)
        batched_streams, batched, effective = _run(batched_spec, "batchB")
        if effective > 1:
            batched_seeds += 1
        if batched_streams != plain_streams:
            diverged.append(f"seed {seed}: token streams")
        if batched.data_messages != plain.data_messages:
            diverged.append(
                f"seed {seed}: data messages {batched.data_messages} "
                f"!= {plain.data_messages}"
            )
    assert not diverged, "; ".join(diverged)
    # feedback/delay/low-slack seeds clamp to 1; keep a floor so the
    # campaign cannot silently degenerate into unbatched-only pairs
    # (20/50 seeds batch at the current generator defaults)
    assert batched_seeds >= SEED_COUNT // 4, (
        f"only {batched_seeds}/{SEED_COUNT} seeds actually batched"
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=9999),
    batch=st.integers(min_value=2, max_value=5),
    accelerate_all=st.booleans(),
)
def test_batching_equivalence_property(seed, batch, accelerate_all):
    """Property form over arbitrary seeds and blocking factors."""
    spec = generate_spec(seed)
    if accelerate_all:
        spec = replace(spec, accelerators=tuple(range(spec.n_pes)))
    plain_streams, plain, _ = _run(spec, "batch1")
    batched_streams, batched, effective = _run(
        replace(spec, batch=batch), "batchB"
    )
    assert batched_streams == plain_streams
    assert batched.data_messages == plain.data_messages
    if not accelerate_all:
        assert effective == 1
        assert _bit_identical_view(batched) == _bit_identical_view(plain)
