"""Steady-state A/B oracle: extrapolation never changes the answer.

For every seed, the SPI stack simulated to completion
(``steady_state="off"``) and the same system with detection armed
(``"auto"``, lost-wakeup audit on) must report bit-identical makespan,
iteration period, per-channel message counts/bytes and occupancy
high-waters, and per-PE busy/blocked/firing totals.  The warp replays
per-iteration counter deltas instead of simulating, so any divergence
is an unsound state hash or a wrong delta — a bug, not noise.

Token *values* are deliberately not compared here: the tap stream ends
where the warp begins (extrapolation replays counters, not tokens), so
the off run simply records more of the same periodic stream.  The
kernel-equivalence tier (``test_kernel_equivalence.py``) owns token
stream identity.

On divergence the auto run's state-hash trace is written next to the
test (or to ``$REPRO_STEADY_TRACE``) so CI can upload it as an
artifact.
"""

import json
import os
from pathlib import Path

from repro.conformance import GraphShape, build_case, generate_spec
from repro.spi import SpiSystem

SEED_COUNT = 50
ITERATIONS = 10
#: static-rate graphs only: the eligibility rule refuses undeclared
#: dynamic actors, so dynamic seeds would never arm (covered separately
#: by test_steady_state.py::test_opaque_actors_refuse)
SHAPE = GraphShape(dynamic_prob=0.0)

#: at this iteration count most seeds reach and confirm a period; keep
#: a floor so the campaign cannot silently degenerate into comparing
#: 50 pairs of identical interpreted runs
MIN_WARPED_SEEDS = 30


def _run(seed: int, steady_state: str):
    """Fresh case per run: stateful actor kernels must not leak across."""
    case = build_case(generate_spec(seed, SHAPE))
    system = SpiSystem.compile(case.graph, case.partition)
    return system.run(
        iterations=ITERATIONS,
        max_cycles=10_000_000,
        check_lost_wakeups=True,
        metrics=True,
        steady_state=steady_state,
    )


def _comparable(result) -> dict:
    """Everything the two modes must agree on, bit for bit."""
    document = result.metrics
    return {
        "cycles": result.cycles,
        "iteration_period_cycles": result.iteration_period_cycles,
        "buffer_high_water": dict(result.buffer_high_water),
        "fifo_high_water": dict(result.fifo_high_water),
        "channels": [
            {
                key: channel[key]
                for key in (
                    "name",
                    "data_messages",
                    "ack_messages",
                    "data_bytes",
                    "header_bytes",
                    "ack_bytes",
                    "occupancy_high_water_messages",
                    "occupancy_high_water_bytes",
                )
            }
            for channel in document["channels"]
        ],
        "pes": [
            {
                key: pe[key]
                for key in (
                    "name",
                    "busy_cycles",
                    "blocked_cycles",
                    "firings",
                )
            }
            for pe in document["pes"]
        ],
    }


def _dump_trace(failures, traces) -> Path:
    target = Path(
        os.environ.get("REPRO_STEADY_TRACE", "steady_state_trace.json")
    )
    target.write_text(
        json.dumps({"failures": failures, "hash_traces": traces}, indent=2)
        + "\n"
    )
    return target


def test_steady_state_equivalence_campaign():
    failures = []
    traces = {}
    warped_seeds = 0
    for seed in range(SEED_COUNT):
        off = _run(seed, "off")
        auto = _run(seed, "auto")
        if auto.extrapolated_iterations > 0:
            warped_seeds += 1
        expected = _comparable(off)
        observed = _comparable(auto)
        if expected != observed:
            mismatched = sorted(
                key for key in expected if expected[key] != observed[key]
            )
            failures.append(
                f"seed {seed}: off/auto mismatch in {mismatched} "
                f"(detected_at={auto.steady_state_detected_at}, "
                f"extrapolated={auto.extrapolated_iterations})"
            )
            if auto.steady_state is not None:
                traces[str(seed)] = [
                    list(entry) for entry in auto.steady_state.hash_trace
                ]
    if failures:
        trace_path = _dump_trace(failures, traces)
        raise AssertionError(
            f"{len(failures)} seed(s) diverged (state-hash trace written "
            f"to {trace_path}): " + "; ".join(failures)
        )
    assert warped_seeds >= MIN_WARPED_SEEDS, (
        f"only {warped_seeds}/{SEED_COUNT} seeds warped; the campaign "
        f"is no longer exercising extrapolation"
    )
