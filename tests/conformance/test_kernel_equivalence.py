"""Kernel A/B oracle: targeted wakeups never change simulated behaviour.

The waitset kernel must be a pure performance change: for every seed,
the SPI stack simulated under ``wakeups="targeted"`` (with the
lost-wakeup audit armed) must produce bit-identical token streams, the
same makespan and the same message counts as the legacy broadcast-retry
kernel.  Token values depend only on per-edge FIFO order — which wakeup
delivery cannot reorder, since wakes go through the event heap at the
current time after the mutating event — so any divergence here is a
kernel bug, not nondeterminism.
"""

from repro.conformance import build_case, generate_spec
from repro.spi import SpiSystem

SEED_COUNT = 50
ITERATIONS = 4


def _run(seed: int, wakeups: str):
    """Fresh case per run: stateful actor kernels must not leak across."""
    case = build_case(generate_spec(seed))
    system = SpiSystem.compile(case.graph, case.partition)
    case.tap.begin(wakeups)
    result = system.run(
        iterations=ITERATIONS,
        max_cycles=10_000_000,
        wakeups=wakeups,
        check_lost_wakeups=(wakeups == "targeted"),
    )
    return case.tap.streams(wakeups), result


def test_token_streams_identical_across_kernels():
    diverged = []
    for seed in range(SEED_COUNT):
        targeted_streams, targeted = _run(seed, "targeted")
        broadcast_streams, broadcast = _run(seed, "broadcast")
        if targeted_streams != broadcast_streams:
            diverged.append(f"seed {seed}: token streams")
        if targeted.cycles != broadcast.cycles:
            diverged.append(
                f"seed {seed}: cycles {targeted.cycles} != {broadcast.cycles}"
            )
        if targeted.data_messages != broadcast.data_messages:
            diverged.append(
                f"seed {seed}: data messages {targeted.data_messages} "
                f"!= {broadcast.data_messages}"
            )
    assert not diverged, "; ".join(diverged)
