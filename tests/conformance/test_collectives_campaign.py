"""Conformance coverage for collective connections.

The generator can place one broadcast/gather connection per graph
(``GraphShape.collective_prob``); the spec layer derives balanced rates
for it from the repetitions vector.  These tests pin the generator
distribution, the rate algebra, and — the actual conformance statement —
a 30-seed campaign over collective-bearing graphs passing the full
oracle stack.
"""

from repro.conformance import CampaignConfig, run_campaign
from repro.conformance.generator import GraphShape, generate_spec
from repro.conformance.spec import GraphSpec, build_case

SHAPE = GraphShape(collective_prob=0.7)


class TestGenerator:
    def test_collective_prob_zero_emits_none(self):
        for seed in range(20):
            assert generate_spec(seed, GraphShape()).connections == ()

    def test_collective_prob_one_emits_on_every_eligible_seed(self):
        shape = GraphShape(collective_prob=1.0)
        specs = [generate_spec(seed, shape) for seed in range(20)]
        with_conn = [s for s in specs if s.connections]
        assert len(with_conn) >= 15  # only graphs with < 3 actors skip
        kinds = {s.connections[0].kind for s in with_conn}
        assert kinds == {"broadcast", "gather"}

    def test_connection_endpoints_keep_the_dag_forward(self):
        """Broadcast hubs precede their branches and gather branches
        precede their hub, so the added edges never close a cycle."""
        shape = GraphShape(collective_prob=1.0)
        for seed in range(30):
            spec = generate_spec(seed, shape)
            for conn in spec.connections:
                order = {a.name: i for i, a in enumerate(spec.actors)}
                if conn.kind == "broadcast":
                    assert all(
                        order[b] > order[conn.hub] for b in conn.branches
                    )
                else:
                    assert all(
                        order[b] < order[conn.hub] for b in conn.branches
                    )

    def test_spec_json_round_trip(self):
        shape = GraphShape(collective_prob=1.0)
        spec = next(
            generate_spec(seed, shape)
            for seed in range(20)
            if generate_spec(seed, shape).connections
        )
        assert GraphSpec.from_json(spec.to_json()) == spec


class TestRates:
    def test_connection_rates_balance_every_branch(self):
        """Every member edge moves the same token count per iteration:
        hub tokens (per branch for gather) == branch tokens."""
        shape = GraphShape(collective_prob=1.0)
        checked = 0
        for seed in range(20):
            spec = generate_spec(seed, shape)
            reps = {a.name: a.repetitions for a in spec.actors}
            for conn in spec.connections:
                hub_rate, branch_rates = spec.resolved_connection_rates(conn)
                factor = len(conn.branches) if conn.kind == "gather" else 1
                hub_tokens = reps[conn.hub] * hub_rate // factor
                for branch, rate in zip(conn.branches, branch_rates):
                    assert reps[branch] * rate == hub_tokens
                checked += 1
        assert checked >= 10

    def test_case_builds_and_validates(self):
        shape = GraphShape(collective_prob=1.0)
        for seed in range(10):
            spec = generate_spec(seed, shape)
            case = build_case(spec)
            case.graph.validate()
            if spec.connections:
                assert case.graph.has_collectives or all(
                    len(c.branches) == 1 for c in spec.connections
                )


class TestCampaign:
    def test_thirty_seed_campaign_with_collectives_passes(self):
        report = run_campaign(CampaignConfig(seeds=30, quick=True, shape=SHAPE))
        assert report["checked"] == 30
        assert report["failing_seeds"] == []
        # the statement is only meaningful if collectives actually occur
        n_with = sum(
            1 for seed in range(30) if generate_spec(seed, SHAPE).connections
        )
        assert n_with >= 10

    def test_collective_campaign_is_deterministic(self):
        config = CampaignConfig(seeds=4, quick=True, shape=SHAPE)
        first = run_campaign(config)
        second = run_campaign(config)
        assert first["cases"] == second["cases"]
