"""Unit tests for the table/figure renderers."""

import pytest

from repro.analysis import Figure, Series, render_table


class TestSeries:
    def test_add_and_validate(self):
        series = Series("n=1")
        series.add(1, 10.0)
        series.add(2, 20.0)
        series.validate()
        assert series.x == [1, 2]

    def test_validate_catches_mismatch(self):
        series = Series("bad", x=[1, 2], y=[1.0])
        with pytest.raises(ValueError, match="x values"):
            series.validate()


class TestFigure:
    def make(self):
        figure = Figure("F", "size", "time")
        a = figure.add_series("n=1")
        a.add(10, 1.0)
        a.add(20, 2.0)
        b = figure.add_series("n=2")
        b.add(10, 0.6)
        b.add(20, 1.1)
        return figure

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "F" in text
        assert "n=1" in text and "n=2" in text
        assert "10" in text and "1.00" in text

    def test_csv_wide_format(self):
        csv = self.make().to_csv()
        lines = csv.splitlines()
        assert lines[0] == "size,n=1,n=2"
        assert lines[1].startswith("10,1.0000,0.6000")

    def test_missing_points_rendered_as_dash(self):
        figure = Figure("F", "x", "y")
        a = figure.add_series("a")
        a.add(1, 1.0)
        b = figure.add_series("b")
        b.add(2, 2.0)
        text = figure.render()
        assert "-" in text
        csv = figure.to_csv()
        assert ",," in csv or csv.splitlines()[1].endswith(",")


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bbbb"], [["x", "y"], ["longer", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[2:])) >= 1

    def test_row_width_checked(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = render_table(["a", "b"], [])
        assert "a" in text
