"""Unit tests for sweep metrics."""

import pytest

from repro.analysis import (
    amdahl_bound,
    crossover_x,
    parallel_efficiency,
    speedups,
)


class TestSpeedups:
    def test_relative_to_first(self):
        assert speedups([100.0, 50.0, 25.0]) == [1.0, 2.0, 4.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            speedups([])

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            speedups([0.0, 1.0])


class TestEfficiency:
    def test_perfect_scaling(self):
        eff = parallel_efficiency([100.0, 50.0, 25.0], [1, 2, 4])
        assert eff == [1.0, 1.0, 1.0]

    def test_sublinear(self):
        eff = parallel_efficiency([100.0, 60.0], [1, 2])
        assert eff[1] < 1.0

    def test_alignment_checked(self):
        with pytest.raises(ValueError):
            parallel_efficiency([1.0], [1, 2])


class TestCrossover:
    def test_found(self):
        xs = [1, 2, 3, 4]
        a = [10, 8, 5, 2]
        b = [6, 6, 6, 6]
        assert crossover_x(xs, a, b) == 3

    def test_not_found(self):
        assert crossover_x([1, 2], [9, 9], [1, 1]) is None

    def test_alignment_checked(self):
        with pytest.raises(ValueError):
            crossover_x([1], [1, 2], [1])


class TestAmdahl:
    def test_no_serial_fraction(self):
        assert amdahl_bound(0.0, 4) == pytest.approx(4.0)

    def test_all_serial(self):
        assert amdahl_bound(1.0, 100) == pytest.approx(1.0)

    def test_classic_value(self):
        assert amdahl_bound(0.5, 2) == pytest.approx(4 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            amdahl_bound(-0.1, 2)
        with pytest.raises(ValueError):
            amdahl_bound(0.5, 0)
