"""Unit tests for the FPGA resource model."""

import pytest

from repro.platform import (
    RESOURCE_FIELDS,
    VIRTEX4_SX35,
    ResourceVector,
    UtilizationReport,
    estimate_datapath,
    estimate_fifo,
)


class TestResourceVector:
    def test_addition(self):
        total = ResourceVector(slices=1, dsp48=2) + ResourceVector(
            slices=3, bram=1
        )
        assert total.slices == 4
        assert total.dsp48 == 2
        assert total.bram == 1

    def test_scale(self):
        scaled = ResourceVector(slices=3, lut4=7).scale(4)
        assert scaled.slices == 12
        assert scaled.lut4 == 28

    def test_sum(self):
        vectors = [ResourceVector(slices=1)] * 5
        assert ResourceVector.sum(vectors).slices == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector(slices=-1)

    def test_is_zero(self):
        assert ResourceVector().is_zero
        assert not ResourceVector(bram=1).is_zero

    def test_as_dict_covers_all_fields(self):
        d = ResourceVector(1, 2, 3, 4, 5).as_dict()
        assert set(d) == set(RESOURCE_FIELDS)


class TestFpgaDevice:
    def test_utilization_percentages(self):
        used = ResourceVector(slices=1536, slice_ffs=3072, lut4=3072)
        util = VIRTEX4_SX35.utilization(used)
        assert util["slices"] == pytest.approx(10.0)
        assert util["dsp48"] == 0.0

    def test_fits(self):
        assert VIRTEX4_SX35.fits(ResourceVector(slices=15360))
        assert not VIRTEX4_SX35.fits(ResourceVector(slices=15361))


class TestEstimators:
    def test_multipliers_become_dsp48(self):
        vector = estimate_datapath(multipliers=3)
        assert vector.dsp48 == 3

    def test_large_state_becomes_bram(self):
        vector = estimate_datapath(state_bytes=4096)
        assert vector.bram == 2  # 4096 / 2048

    def test_small_state_stays_distributed(self):
        vector = estimate_datapath(state_bytes=64)
        assert vector.bram == 0
        assert vector.lut4 > 0

    def test_adders_cost_luts(self):
        vector = estimate_datapath(adders=2, adder_width=16)
        assert vector.lut4 == 32

    def test_slices_track_max_of_luts_and_ffs(self):
        lut_heavy = estimate_datapath(logic_lut4=100)
        ff_heavy = estimate_datapath(registers_bits=100)
        assert lut_heavy.slices == ff_heavy.slices

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            estimate_datapath(multipliers=-1)

    def test_fifo_storage_scales(self):
        small = estimate_fifo(depth_bytes=256)
        large = estimate_fifo(depth_bytes=8192)
        assert large.bram > small.bram

    def test_fifo_has_control_logic(self):
        vector = estimate_fifo(depth_bytes=1024)
        assert vector.slice_ffs > 0
        assert vector.lut4 > 0


class TestUtilizationReport:
    def test_relative_percentages(self):
        report = UtilizationReport(
            device=VIRTEX4_SX35,
            full_system=ResourceVector(slices=1000, bram=10),
            spi_library=ResourceVector(slices=100, bram=5),
        )
        rel = report.spi_relative_percent()
        assert rel["slices"] == pytest.approx(10.0)
        assert rel["bram"] == pytest.approx(50.0)
        assert rel["dsp48"] == 0.0

    def test_render_has_both_rows(self):
        report = UtilizationReport(
            device=VIRTEX4_SX35,
            full_system=ResourceVector(slices=1000),
            spi_library=ResourceVector(slices=120),
            title="Table X",
        )
        text = report.render()
        assert "Table X" in text
        assert "Full system" in text
        assert "SPI library" in text
        assert "12.00%" in text
