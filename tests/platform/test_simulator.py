"""Unit tests for the discrete-event kernel and PE sequencers."""

import pytest

from repro.platform import (
    PESequencer,
    ProcessingElement,
    SimulationDeadlock,
    Simulator,
)


class StubTask:
    """Configurable task: guard flag, fixed duration, completion log."""

    def __init__(self, name, duration=5, gate=None):
        self.name = name
        self.duration = duration
        self.gate = gate  # None = always ready, else a mutable [bool]
        self.finishes = []

    def ready(self, now):
        return True if self.gate is None else self.gate[0]

    def start(self, now):
        return self.duration

    def finish(self, now):
        self.finishes.append(now)


class AsyncTask:
    """Event-completed task: finishes when an external event fires."""

    def __init__(self, name, sim, complete_at):
        self.name = name
        self.sim = sim
        self.complete_at = complete_at
        self.complete_async = None
        self.finishes = []

    def ready(self, now):
        return True

    def start(self, now):
        self.sim.at(self.complete_at, lambda: self.complete_async())
        return None

    def finish(self, now):
        self.finishes.append(now)


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(10, lambda: log.append("b"))
        sim.at(5, lambda: log.append("a"))
        sim.at(10, lambda: log.append("c"))
        final = sim.run()
        assert log == ["a", "b", "c"]
        assert final == 10

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.at(5, lambda: sim.at(3, lambda: None))
        with pytest.raises(ValueError, match="past"):
            sim.run()

    def test_max_cycles_guard(self):
        sim = Simulator()
        def reschedule():
            sim.after(10, reschedule)
        sim.at(0, reschedule)
        with pytest.raises(RuntimeError, match="max_cycles"):
            sim.run(max_cycles=100)


class TestPESequencer:
    def test_serial_execution_on_one_pe(self):
        sim = Simulator()
        pe = ProcessingElement(0)
        tasks = [StubTask("t1", 5), StubTask("t2", 7)]
        seq = PESequencer(sim, pe, tasks, iterations=2)
        seq.begin()
        sim.run()
        assert tasks[0].finishes == [5, 17]
        assert tasks[1].finishes == [12, 24]
        assert seq.done
        assert seq.finish_times == [12, 24]
        assert pe.busy_cycles == 24
        assert pe.firings == 4

    def test_blocked_task_deadlocks_alone(self):
        sim = Simulator()
        pe = ProcessingElement(0)
        gate = [False]
        seq = PESequencer(sim, pe, [StubTask("t", gate=gate)], iterations=1)
        seq.begin()
        with pytest.raises(SimulationDeadlock) as excinfo:
            sim.run()
        # the message names the PE and the parked task
        assert "PE0" in str(excinfo.value)
        assert "blocked on task 't'" in str(excinfo.value)

    def test_deadlock_message_includes_task_reason(self):
        """Tasks exposing ``blocked_reason`` get it appended — the
        mechanism the SPI/MPI tasks use to name the starved channel."""

        class ChannelTask(StubTask):
            def blocked_reason(self, now):
                return "waiting for a message on channel 'A.o->B.i'"

        sim = Simulator()
        pe = ProcessingElement(1)
        task = ChannelTask("recv", gate=[False])
        seq = PESequencer(sim, pe, [task], iterations=1)
        seq.begin()
        with pytest.raises(SimulationDeadlock) as excinfo:
            sim.run()
        message = str(excinfo.value)
        assert "PE1" in message
        assert "waiting for a message on channel 'A.o->B.i'" in message

    def test_deadlock_message_tolerates_broken_reason(self):
        """A faulty ``blocked_reason`` must not mask the deadlock."""

        class BadReasonTask(StubTask):
            def blocked_reason(self, now):
                raise RuntimeError("diagnosis failed")

        sim = Simulator()
        pe = ProcessingElement(0)
        seq = PESequencer(
            sim, pe, [BadReasonTask("t", gate=[False])], iterations=1
        )
        seq.begin()
        with pytest.raises(SimulationDeadlock, match="blocked on task"):
            sim.run()

    def test_spi_deadlock_names_pe_and_channel(self):
        """End to end: an SPI receiver whose producer never sends tokens
        deadlocks with a message naming its PE and the starved channel."""
        from repro.dataflow import DataflowGraph
        from repro.mapping import Partition
        from repro.spi import SpiSystem

        graph = DataflowGraph("starved")

        def silent(k, inputs):
            return {"o": []}  # violates its declared rate: B starves

        def sink(k, inputs):
            return {}

        a = graph.actor("A", kernel=silent, cycles=5)
        b = graph.actor("B", kernel=sink, cycles=5)
        a.add_output("o")
        b.add_input("i")
        graph.connect((a, "o"), (b, "i"))
        partition = Partition.manual(graph, {"A": 0, "B": 1})
        system = SpiSystem.compile(graph, partition)
        with pytest.raises(SimulationDeadlock) as excinfo:
            system.run(iterations=2)
        message = str(excinfo.value)
        assert "PE1" in message
        assert "A.o->B.i" in message  # the channel it is blocked on

    def test_notify_unblocks(self):
        sim = Simulator()
        pe = ProcessingElement(0)
        gate = [False]
        blocked = StubTask("blocked", duration=3, gate=gate)
        seq = PESequencer(sim, pe, [blocked], iterations=1)
        seq.begin()

        def open_gate():
            gate[0] = True
            sim.notify()

        sim.at(20, open_gate)
        sim.run()
        assert blocked.finishes == [23]
        assert pe.blocked_events >= 1

    def test_two_pes_run_concurrently(self):
        sim = Simulator()
        pe0, pe1 = ProcessingElement(0), ProcessingElement(1)
        t0, t1 = StubTask("t0", 10), StubTask("t1", 10)
        seq0 = PESequencer(sim, pe0, [t0], iterations=1)
        seq1 = PESequencer(sim, pe1, [t1], iterations=1)
        seq0.begin()
        seq1.begin()
        final = sim.run()
        assert final == 10  # parallel, not 20

    def test_async_completion(self):
        sim = Simulator()
        pe = ProcessingElement(0)
        task = AsyncTask("rendezvous", sim, complete_at=42)
        seq = PESequencer(sim, pe, [task], iterations=1)
        seq.begin()
        sim.run()
        assert task.finishes == [42]
        assert pe.busy_cycles == 42  # blocked the PE the whole time

    def test_iterations_validated(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PESequencer(sim, ProcessingElement(0), [], iterations=0)

    def test_utilization(self):
        pe = ProcessingElement(3)
        pe.record_execution(30)
        assert pe.utilization(60) == pytest.approx(0.5)
        assert pe.utilization(0) == 0.0
        assert pe.name == "PE3"
